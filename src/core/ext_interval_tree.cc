#include "core/ext_interval_tree.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <tuple>

#include "core/persist.h"
#include "kernels/search.h"
#include "util/mathutil.h"

namespace pathcache {

namespace {

struct MemNode {
  int64_t center = 0;
  int32_t left = -1;
  int32_t right = -1;
  int32_t parent = -1;
  bool is_leaf = false;
  std::vector<Interval> ivs;  // crossing set (internal) or pool (leaf)
};

void Bump(QueryStats* stats, uint64_t QueryStats::* role, uint64_t n = 1) {
  if (stats != nullptr) stats->*role += n;
}

void Classify(QueryStats* stats, uint64_t qualifying, uint64_t capacity) {
  if (stats == nullptr) return;
  if (qualifying >= capacity) {
    ++stats->useful;
  } else {
    ++stats->wasteful;
  }
}

}  // namespace

ExtIntervalTree::ExtIntervalTree(PageDevice* dev, ExtIntervalTreeOptions opts)
    : dev_(dev), opts_(opts) {}

Status ExtIntervalTree::Build(std::vector<Interval> intervals) {
  if (root_.valid()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = intervals.size();
  const uint32_t B = RecordsPerPage<Interval>(dev_->page_size());
  if (B == 0) return Status::InvalidArgument("page too small");
  if (n_ == 0) return Status::OK();

  std::vector<int64_t> values;
  values.reserve(n_ * 2);
  for (const auto& iv : intervals) {
    values.push_back(iv.lo);
    values.push_back(iv.hi);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  // Fat-leaf threshold: ~B endpoint values per leaf.
  const size_t fat_cap = std::max<uint32_t>(2, B);

  std::vector<MemNode> nodes;
  struct BuildFrame {
    size_t lo, hi;  // value index range [lo, hi)
    int32_t parent;
    bool right_child;
  };
  std::vector<BuildFrame> stack{{0, values.size(), -1, false}};
  int32_t root_idx = -1;
  while (!stack.empty()) {
    BuildFrame f = stack.back();
    stack.pop_back();
    int32_t idx = static_cast<int32_t>(nodes.size());
    nodes.push_back(MemNode{});
    nodes[idx].parent = f.parent;
    if (f.parent >= 0) {
      (f.right_child ? nodes[f.parent].right : nodes[f.parent].left) = idx;
    } else {
      root_idx = idx;
    }
    if (f.hi - f.lo <= fat_cap) {
      nodes[idx].is_leaf = true;
      nodes[idx].center = values[(f.lo + f.hi) / 2];
      continue;
    }
    size_t mid = (f.lo + f.hi) / 2;
    nodes[idx].center = values[mid];
    stack.push_back({mid + 1, f.hi, idx, true});
    stack.push_back({f.lo, mid, idx, false});
  }

  // Allocate each interval to the first node whose center it contains, or
  // to the fat leaf it falls inside.
  for (const auto& iv : intervals) {
    int32_t cur = root_idx;
    for (;;) {
      MemNode& nd = nodes[cur];
      if (nd.is_leaf || iv.Contains(nd.center)) {
        nd.ivs.push_back(iv);
        break;
      }
      cur = (iv.hi < nd.center) ? nd.left : nd.right;
    }
  }

  // Lists / pools to disk.
  std::vector<IntNodeRec> recs(nodes.size());
  std::vector<int32_t> lefts(nodes.size()), rights(nodes.size());
  // Keep L-page directories for the cache continuations.
  std::vector<std::vector<PageId>> l_pages(nodes.size()), r_pages(nodes.size());
  std::vector<std::vector<Interval>> l_sorted(nodes.size()),
      r_sorted(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    IntNodeRec& r = recs[i];
    r.center = nodes[i].center;
    r.count = static_cast<uint32_t>(nodes[i].ivs.size());
    r.is_leaf = nodes[i].is_leaf ? 1 : 0;
    lefts[i] = nodes[i].left;
    rights[i] = nodes[i].right;
    if (nodes[i].is_leaf) {
      auto pl = BuildBlockList<Interval>(
          dev_, std::span<const Interval>(nodes[i].ivs),
          offsetof(Interval, lo));
      if (!pl.ok()) return pl.status();
      for (PageId p : pl.value().pages) owned_pages_.push_back(p);
      storage_.points += pl.value().pages.size();
      r.pool_page = pl.value().ref.head;
      continue;
    }
    l_sorted[i] = nodes[i].ivs;
    std::sort(l_sorted[i].begin(), l_sorted[i].end(),
              [](const Interval& a, const Interval& b) {
                if (a.lo != b.lo) return a.lo < b.lo;
                return a.id < b.id;
              });
    r_sorted[i] = nodes[i].ivs;
    std::sort(r_sorted[i].begin(), r_sorted[i].end(),
              [](const Interval& a, const Interval& b) {
                if (a.hi != b.hi) return a.hi > b.hi;
                return a.id < b.id;
              });
    // L-lists scan ascending lo, R-lists descending hi: pack each on its
    // scan key (format v3).
    auto li = BuildBlockList<Interval>(
        dev_, std::span<const Interval>(l_sorted[i]), offsetof(Interval, lo));
    if (!li.ok()) return li.status();
    auto ri = BuildBlockList<Interval>(
        dev_, std::span<const Interval>(r_sorted[i]), offsetof(Interval, hi));
    if (!ri.ok()) return ri.status();
    for (PageId p : li.value().pages) owned_pages_.push_back(p);
    for (PageId p : ri.value().pages) owned_pages_.push_back(p);
    storage_.points += li.value().pages.size() + ri.value().pages.size();
    r.l_head = li.value().ref.head;
    r.r_head = ri.value().ref.head;
    l_pages[i] = li.value().pages;
    r_pages[i] = ri.value().pages;
  }

  auto tree =
      WriteSkeletalTree<IntNodeRec>(dev_, recs, lefts, rights, root_idx);
  if (!tree.ok()) return tree.status();
  const SkeletalTreeInfo& info = tree.value();
  root_ = info.root;
  storage_.skeletal = info.pages;
  for (PageId p : info.page_ids) owned_pages_.push_back(p);
  if (!opts_.enable_path_caching) return Status::OK();

  // Direction-split caches at page roots and fat leaves.
  auto is_page_root = [&](int32_t idx) { return info.refs[idx].slot == 0; };
  for (size_t i = 0; i < nodes.size(); ++i) {
    const bool boundary = is_page_root(static_cast<int32_t>(i)) ||
                          nodes[i].is_leaf;
    if (!boundary) continue;

    NodeCache cache;
    std::vector<SrcInterval> cl, cr;
    int32_t child = static_cast<int32_t>(i);
    for (int32_t u = nodes[i].parent; u >= 0 && !is_page_root(u);
         u = nodes[u].parent) {
      const bool went_left = (nodes[u].left == child);
      child = u;
      const auto& lst = went_left ? l_sorted[u] : r_sorted[u];
      const auto& pages = went_left ? l_pages[u] : r_pages[u];
      const uint32_t contributed =
          std::min<uint32_t>(B, static_cast<uint32_t>(lst.size()));
      if (went_left) {
        const uint32_t ord = static_cast<uint32_t>(cache.ancs.size());
        for (uint32_t k = 0; k < contributed; ++k) {
          cl.push_back(SrcInterval::From(lst[k], ord));
        }
        cache.ancs.push_back(
            AncInfo{pages.size() > 1 ? pages[1] : kInvalidPageId, contributed,
                    static_cast<uint32_t>(lst.size())});
      } else {
        const uint32_t ord = static_cast<uint32_t>(cache.sibs.size());
        for (uint32_t k = 0; k < contributed; ++k) {
          cr.push_back(SrcInterval::From(lst[k], ord));
        }
        cache.sibs.push_back(
            SibInfo{kNullNodeRef, kNullNodeRef,
                    pages.size() > 1 ? pages[1] : kInvalidPageId, contributed,
                    static_cast<uint32_t>(lst.size())});
      }
    }
    if (cache.ancs.empty() && cache.sibs.empty()) continue;
    std::sort(cl.begin(), cl.end(), [](const SrcInterval& a,
                                       const SrcInterval& b) {
      if (a.lo != b.lo) return a.lo < b.lo;
      return a.id < b.id;
    });
    std::sort(cr.begin(), cr.end(), [](const SrcInterval& a,
                                       const SrcInterval& b) {
      if (a.hi != b.hi) return a.hi > b.hi;
      return a.id < b.id;
    });
    auto cli = BuildBlockList<SrcInterval>(
        dev_, std::span<const SrcInterval>(cl), offsetof(SrcInterval, lo));
    if (!cli.ok()) return cli.status();
    auto cri = BuildBlockList<SrcInterval>(
        dev_, std::span<const SrcInterval>(cr), offsetof(SrcInterval, hi));
    if (!cri.ok()) return cri.status();
    cache.a_pages = cli.value().pages;
    cache.s_pages = cri.value().pages;
    cache.a_count = cl.size();
    cache.s_count = cr.size();
    // Tail keys for exact-prefix batching: CL scans ascending lo and stops
    // past q, CR scans descending hi and stops below q, so each page's last
    // record key bounds where the stop can land (see NodeCache).
    {
      const uint32_t src_cap = RecordsPerPage<SrcInterval>(dev_->page_size());
      for (size_t pg = 0; pg < cache.a_pages.size(); ++pg) {
        const size_t last =
            std::min(cl.size(), (pg + 1) * static_cast<size_t>(src_cap));
        cache.a_tails.push_back(cl[last - 1].lo);
      }
      for (size_t pg = 0; pg < cache.s_pages.size(); ++pg) {
        const size_t last =
            std::min(cr.size(), (pg + 1) * static_cast<size_t>(src_cap));
        cache.s_tails.push_back(cr[last - 1].hi);
      }
    }
    for (PageId p : cache.a_pages) owned_pages_.push_back(p);
    for (PageId p : cache.s_pages) owned_pages_.push_back(p);
    auto hp = dev_->Allocate();
    if (!hp.ok()) return hp.status();
    owned_pages_.push_back(hp.value());
    PC_RETURN_IF_ERROR(WriteCacheHeader(dev_, hp.value(), cache));
    storage_.cache_headers += 1;
    storage_.cache_blocks += cache.a_pages.size() + cache.s_pages.size();
    recs[i].cache_page = hp.value();
  }
  return RewriteSkeletalPages(dev_, info, recs, lefts, rights);
}

Status ExtIntervalTree::ScanList(int64_t q, PageId page, bool is_l_list,
                                 uint64_t QueryStats::* role,
                                 std::vector<Interval>* out,
                                 QueryStats* stats,
                                 uint64_t* consumed) const {
  const uint32_t cap = RecordsPerPage<Interval>(dev_->page_size());
  if (consumed != nullptr) *consumed = 0;
  // Early-stopping scan, filtered in place via a pinned frame: one counted
  // read per page either way.
  BlockPageView<Interval> view;
  PageId cur = page;
  uint64_t walked = 0;
  while (cur != kInvalidPageId) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
    PC_RETURN_IF_ERROR(view.Load(dev_, cur));
    Bump(stats, role);
    uint64_t qual = 0;
    const size_t key_off =
        is_l_list ? offsetof(Interval, lo) : offsetof(Interval, hi);
    if (view.is_packed() && view.key_offset() == key_off) {
      // v3 packed page: the scan key (lo on L-lists, hi on R-lists) is the
      // dense key array; qualifying records reassemble field-wise.
      const PackedPageView<Interval> v = view.packed();
      const size_t lim =
          is_l_list
              ? kernels::FindFirstAbove(v.keys, sizeof(int64_t), v.count, q)
              : kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q);
      for (size_t i = 0; i < lim; ++i) {
        if (consumed != nullptr) ++*consumed;
        const Interval iv{
            is_l_list ? v.keys[i] : v.I64Field(i, offsetof(Interval, lo)),
            is_l_list ? v.I64Field(i, offsetof(Interval, hi)) : v.keys[i],
            v.U64Field(i, offsetof(Interval, id))};
        if (iv.Contains(q)) {
          out->push_back(iv);
          ++qual;
        }
      }
      Classify(stats, qual, cap);
      if (lim < v.count) return Status::OK();
      cur = view.next();
      continue;
    }
    const auto recs = view.records();
    // The stop record (first lo > q on L-lists, first hi < q on R-lists)
    // is found in one vectorized pass over the key column.
    const size_t lim =
        recs.empty()
            ? 0
            : (is_l_list ? kernels::FindFirstAbove(&recs[0].lo,
                                                   sizeof(Interval),
                                                   recs.size(), q)
                         : kernels::FindFirstBelow(&recs[0].hi,
                                                   sizeof(Interval),
                                                   recs.size(), q));
    for (const auto& iv : recs.first(lim)) {
      if (consumed != nullptr) ++*consumed;
      if (iv.Contains(q)) {
        out->push_back(iv);
        ++qual;
      }
    }
    Classify(stats, qual, cap);
    if (lim < recs.size()) return Status::OK();
    cur = view.next();
  }
  return Status::OK();
}

Status ExtIntervalTree::ProcessCache(int64_t q, PageId cache_page,
                                     std::vector<Interval>* out,
                                     QueryStats* stats) const {
  if (cache_page == kInvalidPageId) return Status::OK();
  const uint32_t src_cap = RecordsPerPage<SrcInterval>(dev_->page_size());
  NodeCache cache;
  PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, cache_page, &cache));
  Bump(stats, &QueryStats::cache);
  Bump(stats, &QueryStats::wasteful);

  // CL: left-direction ancestors, ascending lo, scan while lo <= q.  With
  // tail keys the stop page — the first whose last lo exceeds q — is known
  // up front, so the exact prefix is fetched batched.
  std::vector<uint32_t> cl_consumed(cache.ancs.size(), 0);
  bool stop = false;
  bool bad_src = false;
  auto scan_cl_page = [&](std::span<const SrcInterval> recs) {
    Bump(stats, &QueryStats::cache);
    uint64_t qual = 0;
    // Hoisted stop (first lo > q), then the unchanged per-record tally and
    // containment filter over the prefix before it.
    const size_t limit =
        recs.empty() ? 0
                     : kernels::FindFirstAbove(&recs[0].lo,
                                               sizeof(SrcInterval),
                                               recs.size(), q);
    if (limit < recs.size()) stop = true;
    for (const SrcInterval& si : recs.first(limit)) {
      if (si.src >= cl_consumed.size()) {
        bad_src = true;
        stop = true;
        break;
      }
      ++cl_consumed[si.src];
      if (si.ToInterval().Contains(q)) {
        out->push_back(si.ToInterval());
        ++qual;
      }
    }
    Classify(stats, qual, src_cap);
  };
  auto scan_cl_packed = [&](const PackedPageView<SrcInterval>& v) {
    Bump(stats, &QueryStats::cache);
    uint64_t qual = 0;
    const size_t limit =
        kernels::FindFirstAbove(v.keys, sizeof(int64_t), v.count, q);
    if (limit < v.count) stop = true;
    for (size_t i = 0; i < limit; ++i) {
      const uint32_t src = v.U32Field(i, offsetof(SrcInterval, src));
      if (src >= cl_consumed.size()) {
        bad_src = true;
        stop = true;
        break;
      }
      ++cl_consumed[src];
      const Interval iv{v.keys[i], v.I64Field(i, offsetof(SrcInterval, hi)),
                        v.U64Field(i, offsetof(SrcInterval, id))};
      if (iv.Contains(q)) {
        out->push_back(iv);
        ++qual;
      }
    }
    Classify(stats, qual, src_cap);
  };
  if (opts_.enable_readahead &&
      cache.a_tails.size() == cache.a_pages.size()) {
    const size_t n_tails = cache.a_tails.size();
    const size_t hit = kernels::FindFirstAbove(cache.a_tails.data(),
                                               sizeof(int64_t), n_tails, q);
    const size_t prefix = hit == n_tails ? n_tails : hit + 1;
    BlockListCursor<SrcInterval> cur(
        dev_, std::span<const PageId>(cache.a_pages.data(), prefix));
    std::vector<SrcInterval> recs;
    while (!cur.done()) {
      const std::byte* page = nullptr;
      BlockPageHeader bh;
      PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
      if (codec::IsPacked(bh.count) &&
          codec::KeyOffset(bh.count) == offsetof(SrcInterval, lo)) {
        scan_cl_packed(PackedPageView<SrcInterval>::From(page, bh));
      } else {
        recs.clear();
        AppendBlockRecords(page, bh, &recs);
        scan_cl_page(recs);
      }
    }
  } else {
    BlockPageView<SrcInterval> view;
    for (PageId p : cache.a_pages) {
      if (stop) break;
      PC_RETURN_IF_ERROR(view.Load(dev_, p));
      if (view.is_packed() &&
          view.key_offset() == offsetof(SrcInterval, lo)) {
        scan_cl_packed(view.packed());
      } else {
        scan_cl_page(view.records());
      }
    }
  }
  if (bad_src) {
    return Status::Corruption(
        "CL cache record names a source ordinal beyond the cache's ancestor "
        "table");
  }
  for (size_t k = 0; k < cache.ancs.size(); ++k) {
    const AncInfo& a = cache.ancs[k];
    if (cl_consumed[k] == a.contributed && a.contributed < a.total &&
        a.x_next != kInvalidPageId) {
      PC_RETURN_IF_ERROR(ScanList(q, a.x_next, /*is_l_list=*/true,
                                  &QueryStats::ancestor, out, stats,
                                  nullptr));
    }
  }

  // CR: right-direction ancestors, descending hi, scan while hi >= q.
  std::vector<uint32_t> cr_consumed(cache.sibs.size(), 0);
  stop = false;
  bad_src = false;
  auto scan_cr_page = [&](std::span<const SrcInterval> recs) {
    Bump(stats, &QueryStats::cache);
    uint64_t qual = 0;
    const size_t limit =
        recs.empty() ? 0
                     : kernels::FindFirstBelow(&recs[0].hi,
                                               sizeof(SrcInterval),
                                               recs.size(), q);
    if (limit < recs.size()) stop = true;
    for (const SrcInterval& si : recs.first(limit)) {
      if (si.src >= cr_consumed.size()) {
        bad_src = true;
        stop = true;
        break;
      }
      ++cr_consumed[si.src];
      if (si.ToInterval().Contains(q)) {
        out->push_back(si.ToInterval());
        ++qual;
      }
    }
    Classify(stats, qual, src_cap);
  };
  auto scan_cr_packed = [&](const PackedPageView<SrcInterval>& v) {
    Bump(stats, &QueryStats::cache);
    uint64_t qual = 0;
    const size_t limit =
        kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q);
    if (limit < v.count) stop = true;
    for (size_t i = 0; i < limit; ++i) {
      const uint32_t src = v.U32Field(i, offsetof(SrcInterval, src));
      if (src >= cr_consumed.size()) {
        bad_src = true;
        stop = true;
        break;
      }
      ++cr_consumed[src];
      const Interval iv{v.I64Field(i, offsetof(SrcInterval, lo)), v.keys[i],
                        v.U64Field(i, offsetof(SrcInterval, id))};
      if (iv.Contains(q)) {
        out->push_back(iv);
        ++qual;
      }
    }
    Classify(stats, qual, src_cap);
  };
  if (opts_.enable_readahead &&
      cache.s_tails.size() == cache.s_pages.size()) {
    const size_t n_tails = cache.s_tails.size();
    const size_t hit = kernels::FindFirstBelow(cache.s_tails.data(),
                                               sizeof(int64_t), n_tails, q);
    const size_t prefix = hit == n_tails ? n_tails : hit + 1;
    BlockListCursor<SrcInterval> cur(
        dev_, std::span<const PageId>(cache.s_pages.data(), prefix));
    std::vector<SrcInterval> recs;
    while (!cur.done()) {
      const std::byte* page = nullptr;
      BlockPageHeader bh;
      PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
      if (codec::IsPacked(bh.count) &&
          codec::KeyOffset(bh.count) == offsetof(SrcInterval, hi)) {
        scan_cr_packed(PackedPageView<SrcInterval>::From(page, bh));
      } else {
        recs.clear();
        AppendBlockRecords(page, bh, &recs);
        scan_cr_page(recs);
      }
    }
  } else {
    BlockPageView<SrcInterval> view;
    for (PageId p : cache.s_pages) {
      if (stop) break;
      PC_RETURN_IF_ERROR(view.Load(dev_, p));
      if (view.is_packed() &&
          view.key_offset() == offsetof(SrcInterval, hi)) {
        scan_cr_packed(view.packed());
      } else {
        scan_cr_page(view.records());
      }
    }
  }
  if (bad_src) {
    return Status::Corruption(
        "CR cache record names a source ordinal beyond the cache's sibling "
        "table");
  }
  for (size_t k = 0; k < cache.sibs.size(); ++k) {
    const SibInfo& s = cache.sibs[k];
    if (cr_consumed[k] == s.contributed && s.contributed < s.total &&
        s.y_next != kInvalidPageId) {
      PC_RETURN_IF_ERROR(ScanList(q, s.y_next, /*is_l_list=*/false,
                                  &QueryStats::ancestor, out, stats,
                                  nullptr));
    }
  }
  return Status::OK();
}

Status ExtIntervalTree::Stab(int64_t q, std::vector<Interval>* out,
                             QueryStats* stats) const {
  if (!root_.valid()) return Status::OK();
  SkeletalTreeReader<IntNodeRec> reader(dev_);
  NodeRef cur = root_;
  uint64_t nav_before = reader.pages_read();
  const uint64_t limit = SkeletalWalkLimit<IntNodeRec>(dev_);
  uint64_t steps = 0;
  for (;;) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    IntNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(cur, &rec));
    if (rec.is_leaf != 0) {
      if (stats != nullptr) {
        stats->navigation += reader.pages_read() - nav_before;
        stats->wasteful += reader.pages_read() - nav_before;
      }
      if (opts_.enable_path_caching) {
        PC_RETURN_IF_ERROR(ProcessCache(q, rec.cache_page, out, stats));
      }
      if (rec.pool_page != kInvalidPageId) {
        // Pool: O(1) blocks, filtered in memory; always a full-chain read,
        // so chain readahead is exact.
        const uint32_t cap = RecordsPerPage<Interval>(dev_->page_size());
        BlockListCursor<Interval> pool(dev_, rec.pool_page);
        if (opts_.enable_readahead) pool.EnableChainReadahead();
        std::vector<Interval> ivs;
        while (!pool.done()) {
          const std::byte* page = nullptr;
          BlockPageHeader bh;
          PC_RETURN_IF_ERROR(pool.NextBlockRaw(&page, &bh));
          Bump(stats, &QueryStats::descendant);
          uint64_t qual = 0;
          if (codec::IsPacked(bh.count) &&
              codec::KeyOffset(bh.count) == offsetof(Interval, lo)) {
            const PackedPageView<Interval> v =
                PackedPageView<Interval>::From(page, bh);
            for (size_t i = 0; i < v.count; ++i) {
              const Interval iv{v.keys[i],
                                v.I64Field(i, offsetof(Interval, hi)),
                                v.U64Field(i, offsetof(Interval, id))};
              if (iv.Contains(q)) {
                out->push_back(iv);
                ++qual;
              }
            }
          } else {
            ivs.clear();
            AppendBlockRecords(page, bh, &ivs);
            for (const auto& iv : ivs) {
              if (iv.Contains(q)) {
                out->push_back(iv);
                ++qual;
              }
            }
          }
          Classify(stats, qual, cap);
        }
      }
      break;
    }

    const bool boundary = (cur.slot == 0);
    if (boundary && opts_.enable_path_caching) {
      PC_RETURN_IF_ERROR(ProcessCache(q, rec.cache_page, out, stats));
    }
    if ((boundary || !opts_.enable_path_caching) && rec.count > 0) {
      // Own list read directly: L when the stab is left of the center.
      const bool left_dir = q < rec.center;
      PC_RETURN_IF_ERROR(ScanList(q, left_dir ? rec.l_head : rec.r_head,
                                  left_dir, &QueryStats::ancestor, out, stats,
                                  nullptr));
    }
    cur = (q < rec.center) ? rec.left : rec.right;
    if (!cur.valid()) break;  // defensive; internals always have children
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return Status::OK();
}

Status ExtIntervalTree::Destroy() {
  for (PageId p : owned_pages_) PC_RETURN_IF_ERROR(dev_->Free(p));
  owned_pages_.clear();
  root_ = kNullNodeRef;
  n_ = 0;
  storage_ = StorageBreakdown{};
  return Status::OK();
}

Result<PageId> ExtIntervalTree::Save() {
  auto list =
      BuildBlockList<PageId>(dev_, std::span<const PageId>(owned_pages_));
  if (!list.ok()) return list.status();
  auto mp = dev_->Allocate();
  if (!mp.ok()) return mp.status();

  PstManifestHeader hdr;
  hdr.magic = kExtIntTreeMagic;
  hdr.n = n_;
  hdr.root = root_;
  hdr.caching = opts_.enable_path_caching ? 1 : 0;
  hdr.skeletal = storage_.skeletal;
  hdr.points_pages = storage_.points;
  hdr.cache_headers = storage_.cache_headers;
  hdr.cache_blocks = storage_.cache_blocks;
  hdr.owned_head = list.value().ref.head;
  hdr.owned_count = owned_pages_.size();
  PC_RETURN_IF_ERROR(internal::WriteManifestHeader(dev_, mp.value(), hdr));

  owned_pages_.push_back(mp.value());
  for (PageId p : list.value().pages) owned_pages_.push_back(p);
  return mp.value();
}

Status ExtIntervalTree::Open(PageId manifest) {
  if (root_.valid() || !owned_pages_.empty()) {
    return Status::FailedPrecondition("Open on a non-empty structure");
  }
  PstManifestHeader hdr;
  std::vector<PageId> owned, chain;
  PC_RETURN_IF_ERROR(internal::ReadManifest(
      dev_, manifest, kExtIntTreeMagic, &hdr, &owned, nullptr, &chain));
  n_ = hdr.n;
  root_ = hdr.root;
  opts_.enable_path_caching = hdr.caching != 0;
  storage_ = StorageBreakdown{};
  storage_.skeletal = hdr.skeletal;
  storage_.points = hdr.points_pages;
  storage_.cache_headers = hdr.cache_headers;
  storage_.cache_blocks = hdr.cache_blocks;
  owned_pages_ = std::move(owned);
  for (PageId p : chain) owned_pages_.push_back(p);
  return Status::OK();
}

Status ExtIntervalTree::CheckStructure() const {
  if (!root_.valid()) {
    return n_ == 0 ? Status::OK()
                   : Status::Corruption("no root for non-empty structure");
  }
  const uint32_t B = RecordsPerPage<Interval>(dev_->page_size());
  const uint32_t src_cap = RecordsPerPage<SrcInterval>(dev_->page_size());
  SkeletalTreeReader<IntNodeRec> reader(dev_);
  const uint64_t walk_limit = SkeletalWalkLimit<IntNodeRec>(dev_);
  uint64_t walk_steps = 0;

  auto lt_lo = [](const SrcInterval& a, const SrcInterval& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.id < b.id;
  };
  auto lt_hi = [](const SrcInterval& a, const SrcInterval& b) {
    if (a.hi != b.hi) return a.hi > b.hi;
    return a.id < b.id;
  };
  // Ties under the build's sort keys are stored in unspecified order, so
  // cache contents are compared as multisets under a total order.
  auto lt_full = [](const SrcInterval& a, const SrcInterval& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    if (a.hi != b.hi) return a.hi < b.hi;
    if (a.id != b.id) return a.id < b.id;
    return a.src < b.src;
  };

  // DFS with an explicit unwind marker: the caches replicate the first
  // blocks of the strictly-in-page ancestors' L/R lists, so those blocks
  // (and the lists' continuation pages) ride along on the chain.
  struct ChainEnt {
    bool page_root;
    int8_t side;  // 0 = left child of its parent, 1 = right, -1 = root
    uint32_t count = 0;
    std::vector<Interval> l_first, r_first;  // first list block each
    PageId l_next = kInvalidPageId, r_next = kInvalidPageId;
  };
  struct Item {
    NodeRef ref;
    int8_t side = -1;
    bool has_lo = false, has_hi = false;
    int64_t lo = 0, hi = 0;  // open bounds on centers and interval spans
    bool unwind = false;
  };
  std::vector<ChainEnt> chain;
  std::vector<Item> stack;
  stack.push_back(Item{root_});
  uint64_t total = 0;

  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.unwind) {
      chain.pop_back();
      continue;
    }
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(walk_steps++, walk_limit));

    IntNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(it.ref, &rec));
    if (it.has_lo && rec.center <= it.lo) {
      return Status::Corruption("center below subtree bound");
    }
    if (it.has_hi && rec.center >= it.hi) {
      return Status::Corruption("center above subtree bound");
    }
    const bool leaf = rec.is_leaf != 0;
    total += rec.count;

    auto in_bounds = [&](const Interval& iv) {
      if (it.has_lo && iv.lo <= it.lo) return false;
      if (it.has_hi && iv.hi >= it.hi) return false;
      return true;
    };

    ChainEnt ent;
    ent.page_root = it.ref.slot == 0;
    ent.side = it.side;
    ent.count = rec.count;

    if (leaf) {
      if (rec.left.valid() || rec.right.valid()) {
        return Status::Corruption("fat leaf with children");
      }
      if (rec.l_head != kInvalidPageId || rec.r_head != kInvalidPageId) {
        return Status::Corruption("L/R lists on a fat leaf");
      }
      std::vector<Interval> pool;
      PC_RETURN_IF_ERROR(ReadBlockChain<Interval>(dev_, rec.pool_page,
                                                  &pool));
      if (pool.size() != rec.count) {
        return Status::Corruption("leaf pool count mismatch");
      }
      for (const Interval& iv : pool) {
        if (!in_bounds(iv)) {
          return Status::Corruption("leaf pool interval escapes its span");
        }
      }
    } else {
      if (!rec.left.valid() || !rec.right.valid()) {
        return Status::Corruption("internal node missing a child");
      }
      if (rec.pool_page != kInvalidPageId) {
        return Status::Corruption("pool on an internal node");
      }
      if (rec.count == 0) {
        if (rec.l_head != kInvalidPageId || rec.r_head != kInvalidPageId) {
          return Status::Corruption("lists on an empty crossing set");
        }
      } else if (rec.l_head == kInvalidPageId ||
                 rec.r_head == kInvalidPageId) {
        return Status::Corruption("missing L/R list");
      }
      std::vector<Interval> l, r;
      PC_RETURN_IF_ERROR(ReadBlockChain<Interval>(dev_, rec.l_head, &l,
                                                  &ent.l_next));
      PC_RETURN_IF_ERROR(ReadBlockChain<Interval>(dev_, rec.r_head, &r,
                                                  &ent.r_next));
      if (l.size() != rec.count || r.size() != rec.count) {
        return Status::Corruption("L/R list count mismatch");
      }
      for (size_t i = 0; i < l.size(); ++i) {
        if (i > 0 && (l[i].lo < l[i - 1].lo ||
                      (l[i].lo == l[i - 1].lo && l[i].id < l[i - 1].id))) {
          return Status::Corruption("L-list not ascending by lo");
        }
        if (i > 0 && (r[i].hi > r[i - 1].hi ||
                      (r[i].hi == r[i - 1].hi && r[i].id < r[i - 1].id))) {
          return Status::Corruption("R-list not descending by hi");
        }
        if (!l[i].Contains(rec.center) || !r[i].Contains(rec.center)) {
          return Status::Corruption(
              "crossing-set interval misses its center");
        }
        if (!in_bounds(l[i])) {
          return Status::Corruption("crossing-set interval escapes bounds");
        }
      }
      auto key = [](const Interval& iv) {
        return std::tuple<uint64_t, int64_t, int64_t>(iv.id, iv.lo, iv.hi);
      };
      std::vector<std::tuple<uint64_t, int64_t, int64_t>> lk, rk;
      for (const Interval& iv : l) lk.push_back(key(iv));
      for (const Interval& iv : r) rk.push_back(key(iv));
      std::sort(lk.begin(), lk.end());
      std::sort(rk.begin(), rk.end());
      if (lk != rk) {
        return Status::Corruption("L and R lists hold different intervals");
      }
      ent.l_first.assign(l.begin(),
                         l.begin() + std::min<size_t>(l.size(), B));
      ent.r_first.assign(r.begin(),
                         r.begin() + std::min<size_t>(r.size(), B));
    }

    chain.push_back(std::move(ent));
    {
      Item unwind;
      unwind.unwind = true;
      stack.push_back(unwind);
    }

    // Cache: page roots and fat leaves carry a direction-split copy of the
    // first L- or R-blocks of the strictly-in-page ancestor path.
    const bool boundary = (it.ref.slot == 0) || leaf;
    if (!opts_.enable_path_caching || !boundary) {
      if (rec.cache_page != kInvalidPageId) {
        return Status::Corruption("cache on a non-boundary node");
      }
    } else {
      struct ExpectEnt {
        PageId next;
        uint32_t contributed, total;
      };
      std::vector<ExpectEnt> expect_ancs, expect_sibs;
      std::vector<SrcInterval> expect_cl, expect_cr;
      for (size_t j = chain.size() - 1; j-- > 0;) {
        if (chain[j].page_root) break;
        const ChainEnt& u = chain[j];
        const bool went_left = chain[j + 1].side == 0;
        const uint32_t contributed =
            std::min<uint32_t>(B, u.count);
        if (went_left) {
          const uint32_t ord = static_cast<uint32_t>(expect_ancs.size());
          for (uint32_t k = 0; k < contributed; ++k) {
            expect_cl.push_back(SrcInterval::From(u.l_first[k], ord));
          }
          expect_ancs.push_back(ExpectEnt{u.l_next, contributed, u.count});
        } else {
          const uint32_t ord = static_cast<uint32_t>(expect_sibs.size());
          for (uint32_t k = 0; k < contributed; ++k) {
            expect_cr.push_back(SrcInterval::From(u.r_first[k], ord));
          }
          expect_sibs.push_back(ExpectEnt{u.r_next, contributed, u.count});
        }
      }
      if (expect_ancs.empty() && expect_sibs.empty()) {
        if (rec.cache_page != kInvalidPageId) {
          return Status::Corruption("cache present with no in-page ancestors");
        }
      } else {
        if (rec.cache_page == kInvalidPageId) {
          return Status::Corruption("missing cache");
        }
        NodeCache cache;
        PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, rec.cache_page, &cache));
        if (cache.ancs.size() != expect_ancs.size() ||
            cache.sibs.size() != expect_sibs.size()) {
          return Status::Corruption("cache directory size mismatch");
        }
        uint64_t cl_sum = 0, cr_sum = 0;
        for (size_t ord = 0; ord < expect_ancs.size(); ++ord) {
          const AncInfo& a = cache.ancs[ord];
          if (a.x_next != expect_ancs[ord].next ||
              a.contributed != expect_ancs[ord].contributed ||
              a.total != expect_ancs[ord].total) {
            return Status::Corruption("CL directory entry stale");
          }
          cl_sum += a.contributed;
        }
        for (size_t ord = 0; ord < expect_sibs.size(); ++ord) {
          const SibInfo& s = cache.sibs[ord];
          if (s.left != kNullNodeRef || s.right != kNullNodeRef ||
              s.y_next != expect_sibs[ord].next ||
              s.contributed != expect_sibs[ord].contributed ||
              s.total != expect_sibs[ord].total) {
            return Status::Corruption("CR directory entry stale");
          }
          cr_sum += s.contributed;
        }
        if (cache.a_count != cl_sum || cache.s_count != cr_sum) {
          return Status::Corruption("cache contributed sums mismatch");
        }
        std::vector<SrcInterval> cl, cr;
        {
          BlockListCursor<SrcInterval> cur(
              dev_, std::span<const PageId>(cache.a_pages));
          while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(&cl));
          BlockListCursor<SrcInterval> cur2(
              dev_, std::span<const PageId>(cache.s_pages));
          while (!cur2.done()) PC_RETURN_IF_ERROR(cur2.NextBlock(&cr));
        }
        if (cl.size() != cache.a_count || cr.size() != cache.s_count) {
          return Status::Corruption("cache record count mismatch");
        }
        for (size_t i = 1; i < cl.size(); ++i) {
          if (lt_lo(cl[i], cl[i - 1])) {
            return Status::Corruption("CL not ascending by lo");
          }
        }
        for (size_t i = 1; i < cr.size(); ++i) {
          if (lt_hi(cr[i], cr[i - 1])) {
            return Status::Corruption("CR not descending by hi");
          }
        }
        // Tail keys against the stored order (what the query batches on).
        if (!cache.a_tails.empty()) {
          if (cache.a_tails.size() != cache.a_pages.size()) {
            return Status::Corruption("CL tail directory size mismatch");
          }
          for (size_t pg = 0; pg < cache.a_pages.size(); ++pg) {
            const size_t last = std::min<size_t>(
                cl.size(), (pg + 1) * static_cast<size_t>(src_cap));
            if (cache.a_tails[pg] != cl[last - 1].lo) {
              return Status::Corruption("CL tail key stale");
            }
          }
        }
        if (!cache.s_tails.empty()) {
          if (cache.s_tails.size() != cache.s_pages.size()) {
            return Status::Corruption("CR tail directory size mismatch");
          }
          for (size_t pg = 0; pg < cache.s_pages.size(); ++pg) {
            const size_t last = std::min<size_t>(
                cr.size(), (pg + 1) * static_cast<size_t>(src_cap));
            if (cache.s_tails[pg] != cr[last - 1].hi) {
              return Status::Corruption("CR tail key stale");
            }
          }
        }
        std::sort(cl.begin(), cl.end(), lt_full);
        std::sort(cr.begin(), cr.end(), lt_full);
        std::sort(expect_cl.begin(), expect_cl.end(), lt_full);
        std::sort(expect_cr.begin(), expect_cr.end(), lt_full);
        auto same = [](const std::vector<SrcInterval>& a,
                       const std::vector<SrcInterval>& b) {
          for (size_t i = 0; i < a.size(); ++i) {
            if (a[i].lo != b[i].lo || a[i].hi != b[i].hi ||
                a[i].id != b[i].id || a[i].src != b[i].src) {
              return false;
            }
          }
          return true;
        };
        if (!same(cl, expect_cl) || !same(cr, expect_cr)) {
          return Status::Corruption(
              "cache contents diverge from the ancestor lists");
        }
      }
    }

    if (!leaf) {
      Item right = it;
      right.ref = rec.right;
      right.side = 1;
      right.has_lo = true;
      right.lo = rec.center;
      stack.push_back(right);
      Item left = it;
      left.ref = rec.left;
      left.side = 0;
      left.has_hi = true;
      left.hi = rec.center;
      stack.push_back(left);
    }
  }
  if (total != n_) return Status::Corruption("total interval count mismatch");
  return Status::OK();
}

Status ExtIntervalTree::Cluster() {
  if (!root_.valid()) return Status::OK();

  std::vector<PageTreeNode> ptree;
  PC_RETURN_IF_ERROR(
      CollectSkeletalPageTree<IntNodeRec>(dev_, root_, &ptree));
  const std::vector<uint32_t> veb = VanEmdeBoasOrder(ptree, 0);

  // Pass 1: skeletal pages in van Emde Boas order with every stored PageId
  // slot registered for rewrite.
  LayoutPlan plan;
  std::vector<std::byte> buf(dev_->page_size());
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    plan.Add(pid);
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      const uint32_t base =
          static_cast<uint32_t>(sizeof(hdr) + s * sizeof(IntNodeRec));
      plan.AddRef(pid, base + offsetof(IntNodeRec, left) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(IntNodeRec, right) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(IntNodeRec, l_head));
      plan.AddRef(pid, base + offsetof(IntNodeRec, r_head));
      plan.AddRef(pid, base + offsetof(IntNodeRec, pool_page));
      plan.AddRef(pid, base + offsetof(IntNodeRec, cache_page));
    }
  }

  // Pass 2: each node's cluster — direction-split cache (header + CL/CR
  // chains; its continuation pointers into ancestors' lists are registered
  // by AppendCachePagesToPlan and remapped with those lists), then the L/R
  // lists or the leaf pool — in descent order.
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      IntNodeRec rec;
      std::memcpy(&rec, buf.data() + sizeof(hdr) + s * sizeof(IntNodeRec),
                  sizeof(rec));
      if (rec.cache_page != kInvalidPageId) {
        NodeCache cache;
        PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, rec.cache_page, &cache));
        AppendCachePagesToPlan(rec.cache_page, cache, &plan);
      }
      for (PageId head : {rec.l_head, rec.r_head, rec.pool_page}) {
        if (head == kInvalidPageId) continue;
        std::vector<PageId> chain;
        PC_RETURN_IF_ERROR(CollectChainPages(dev_, head, &chain));
        plan.AddChain(chain);
      }
    }
  }

  if (plan.page_count() != owned_pages_.size()) {
    return Status::FailedPrecondition(
        "layout plan covers " + std::to_string(plan.page_count()) +
        " pages but the structure owns " +
        std::to_string(owned_pages_.size()) +
        " — Cluster() must run on a finished build before Save()");
  }
  auto remap = ComputeRemap(plan);
  if (!remap.ok()) return remap.status();
  PC_RETURN_IF_ERROR(ApplyLayout(dev_, plan, remap.value()));
  root_.page = remap.value().Of(root_.page);
  for (PageId& p : owned_pages_) p = remap.value().Of(p);
  return Status::OK();
}

}  // namespace pathcache
