// Per-query accounting shared by every external structure.
//
// The paper's proofs hinge on classifying each block read as useful
// (returned a full block of B qualifying records) or wasteful (anything
// else), and on attributing reads to the structural role of the node
// (Figure 4: corner / ancestor / sibling / descendant, plus navigation and
// caches).  QueryStats captures both classifications so tests and the
// accounting benchmark (E10) can verify the "every wasteful I/O is paid for
// by a useful one" argument directly.

#ifndef PATHCACHE_CORE_QUERY_STATS_H_
#define PATHCACHE_CORE_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace pathcache {

struct QueryStats {
  // Role breakdown (block reads).
  uint64_t navigation = 0;   // skeletal-tree descent
  uint64_t cache = 0;        // A/S-list (or coalesced path cache) reads
  uint64_t corner = 0;       // the corner region's own block(s)
  uint64_t ancestor = 0;     // X-list / cover-list reads for ancestors
  uint64_t sibling = 0;      // Y-list reads for siblings
  uint64_t descendant = 0;   // descendant-of-sibling reads
  uint64_t buffer = 0;       // update-buffer reads (dynamic structures)

  // Usefulness breakdown (same reads, classified by payload).
  uint64_t useful = 0;    // full block of qualifying records
  uint64_t wasteful = 0;  // partial or empty payoff

  uint64_t records_reported = 0;

  uint64_t total_reads() const {
    return navigation + cache + corner + ancestor + sibling + descendant +
           buffer;
  }

  void Reset() { *this = QueryStats{}; }

  QueryStats& operator+=(const QueryStats& o) {
    navigation += o.navigation;
    cache += o.cache;
    corner += o.corner;
    ancestor += o.ancestor;
    sibling += o.sibling;
    descendant += o.descendant;
    buffer += o.buffer;
    useful += o.useful;
    wasteful += o.wasteful;
    records_reported += o.records_reported;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_QUERY_STATS_H_
