#include "core/pst_dynamic.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "core/region_tree.h"
#include "util/mathutil.h"

namespace pathcache {

namespace {

Status ReadPointBlockPage(PageDevice* dev, PageId page,
                          std::vector<Point>* out, PageId* next) {
  std::vector<std::byte> buf(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(page, buf.data()));
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  PC_RETURN_IF_ERROR(
      CheckBlockPageHeader(hdr, RecordsPerPage<Point>(dev->page_size()),
                           sizeof(Point), dev->page_size()));
  AppendBlockRecords(buf.data(), hdr, out);
  if (next != nullptr) *next = hdr.next;
  return Status::OK();
}

Status ReadSrcBlockPage(PageDevice* dev, PageId page,
                        std::vector<SrcPoint>* out) {
  std::vector<std::byte> buf(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(page, buf.data()));
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  PC_RETURN_IF_ERROR(
      CheckBlockPageHeader(hdr, RecordsPerPage<SrcPoint>(dev->page_size()),
                           sizeof(SrcPoint), dev->page_size()));
  AppendBlockRecords(buf.data(), hdr, out);
  return Status::OK();
}

void Bump(QueryStats* stats, uint64_t QueryStats::* role, uint64_t n = 1) {
  if (stats != nullptr) stats->*role += n;
}

void Classify(QueryStats* stats, uint64_t qualifying, uint64_t capacity) {
  if (stats == nullptr) return;
  if (qualifying >= capacity) {
    ++stats->useful;
  } else {
    ++stats->wasteful;
  }
}

// Composite heap key: (y, id) lexicographic.
bool CompositeGe(int64_t y, uint64_t id, int64_t min_y, uint64_t min_id) {
  if (y != min_y) return y > min_y;
  return id >= min_id;
}

}  // namespace

DynamicPst::DynamicPst(PageDevice* dev, DynamicPstOptions opts)
    : dev_(dev), opts_(opts) {
  B_ = RecordsPerPage<Point>(dev_->page_size());
  buf_cap_ = RecordsPerPage<UpdateRec>(dev_->page_size());
  const uint32_t s = std::max<uint32_t>(2, FloorLog2(std::max<uint32_t>(2, B_)));
  seg_len_ = opts_.segment_len != 0
                 ? opts_.segment_len
                 : std::max<uint32_t>(1, s - FloorLog2(s));
  seg_len_ = FitSegmentLen(dev_->page_size(), seg_len_, B_);
}

DynamicPst::~DynamicPst() = default;

Status DynamicPst::Build(std::vector<Point> points) {
  if (!meta_.empty()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  live_count_ = points.size();
  return BuildInternal(std::move(points));
}

Status DynamicPst::BuildInternal(std::vector<Point> points) {
  built_count_ = points.size();
  updates_since_build_ = 0;
  const uint32_t region_size = B_ * std::max<uint32_t>(2, FloorLog2(B_));

  std::vector<RegionNode> nodes;
  if (!points.empty()) {
    nodes = BuildRegionTree(std::move(points), region_size);
  } else {
    // A single empty region keeps buffers and queries uniform.
    nodes.push_back(RegionNode{});
  }

  meta_.assign(nodes.size(), Meta{});
  second_.clear();
  second_.reserve(nodes.size());
  region_u_counts_.assign(nodes.size(), 0);

  std::vector<DynNodeRec> recs(nodes.size());
  std::vector<int32_t> lefts(nodes.size()), rights(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    Meta& m = meta_[i];
    m.split_x = nodes[i].split_x;
    m.split_id = nodes[i].split_id;
    m.left = nodes[i].left;
    m.right = nodes[i].right;
    m.depth = nodes[i].depth;
    m.count = static_cast<uint32_t>(nodes[i].pts.size());
    if (!nodes[i].pts.empty()) {
      m.y_min = nodes[i].pts.back().y;
      m.y_min_id = nodes[i].pts.back().id;
    }
    lefts[i] = nodes[i].left;
    rights[i] = nodes[i].right;

    std::vector<Point> xs = nodes[i].pts;
    std::sort(xs.begin(), xs.end(), GreaterByX);
    auto xi = BuildBlockList<Point>(dev_, std::span<const Point>(xs));
    if (!xi.ok()) return xi.status();
    m.x_pages = xi.value().pages;
    auto yi = BuildBlockList<Point>(dev_, std::span<const Point>(nodes[i].pts));
    if (!yi.ok()) return yi.status();
    m.y_pages = yi.value().pages;

    auto cp = dev_->Allocate();
    if (!cp.ok()) return cp.status();
    m.cache_page = cp.value();
    auto ru = dev_->Allocate();
    if (!ru.ok()) return ru.status();
    m.region_u = ru.value();
    PC_RETURN_IF_ERROR(WriteBuffer(m.region_u, {}));
    if (m.depth % seg_len_ == 0) {
      auto su = dev_->Allocate();
      if (!su.ok()) return su.status();
      m.snode_u = su.value();
      PC_RETURN_IF_ERROR(WriteBuffer(m.snode_u, {}));
    }

    auto child = std::make_unique<ExternalPst>(dev_, ExternalPstOptions{});
    PC_RETURN_IF_ERROR(child->Build(nodes[i].pts));
    second_.push_back(std::move(child));
  }
  // Parent links.
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (meta_[i].left >= 0) meta_[meta_[i].left].parent = static_cast<int32_t>(i);
    if (meta_[i].right >= 0) {
      meta_[meta_[i].right].parent = static_cast<int32_t>(i);
    }
  }

  for (size_t i = 0; i < nodes.size(); ++i) {
    DynNodeRec& r = recs[i];
    const Meta& m = meta_[i];
    r.split_x = m.split_x;
    r.split_id = m.split_id;
    r.y_min = m.y_min;
    r.y_min_id = m.y_min_id;
    r.x_head = m.x_pages.empty() ? kInvalidPageId : m.x_pages[0];
    r.y_head = m.y_pages.empty() ? kInvalidPageId : m.y_pages[0];
    r.cache_page = m.cache_page;
    r.snode_u = m.snode_u;
    r.region_u = m.region_u;
    r.count = m.count;
    r.depth = m.depth;
    r.region_ord = static_cast<uint32_t>(i);
  }

  auto tree = WriteSkeletalTree<DynNodeRec>(dev_, recs, lefts, rights, 0);
  if (!tree.ok()) return tree.status();
  tree_ = std::move(tree).value();

  // Caches for every node (reads the first X/Y blocks back from disk; build
  // cost is not part of the amortized update bound).
  for (size_t i = 0; i < meta_.size(); ++i) {
    const uint32_t d = meta_[i].depth;
    const uint32_t seg_start = (d / seg_len_) * seg_len_;
    std::vector<int32_t> chain(d - seg_start + 1);
    int32_t u = static_cast<int32_t>(i);
    for (size_t k = chain.size(); k-- > 0;) {
      chain[k] = u;
      u = meta_[u].parent;
    }
    PC_RETURN_IF_ERROR(RebuildCacheOf(static_cast<int32_t>(i), chain));
  }
  return Status::OK();
}

Status DynamicPst::ReadBuffer(PageId buffer,
                              std::vector<UpdateRec>* out) const {
  std::vector<std::byte> buf(dev_->page_size());
  PC_RETURN_IF_ERROR(dev_->Read(buffer, buf.data()));
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  size_t old = out->size();
  out->resize(old + hdr.count);
  std::memcpy(out->data() + old, buf.data() + sizeof(hdr),
              hdr.count * sizeof(UpdateRec));
  return Status::OK();
}

Status DynamicPst::WriteBuffer(PageId buffer,
                               const std::vector<UpdateRec>& recs) {
  std::vector<std::byte> buf(dev_->page_size());
  BlockPageHeader hdr;
  hdr.count = static_cast<uint32_t>(recs.size());
  std::memcpy(buf.data(), &hdr, sizeof(hdr));
  std::memcpy(buf.data() + sizeof(hdr), recs.data(),
              recs.size() * sizeof(UpdateRec));
  return dev_->Write(buffer, buf.data());
}

Status DynamicPst::AppendToBuffer(PageId buffer, const UpdateRec& rec,
                                  bool* overflow) {
  std::vector<UpdateRec> recs;
  PC_RETURN_IF_ERROR(ReadBuffer(buffer, &recs));
  recs.push_back(rec);
  PC_RETURN_IF_ERROR(WriteBuffer(buffer, recs));
  *overflow = recs.size() >= buf_cap_;
  return Status::OK();
}

Status DynamicPst::Insert(const Point& p) { return Update(p, 0); }
Status DynamicPst::Erase(const Point& p) { return Update(p, 1); }

Status DynamicPst::Update(const Point& p, uint32_t op) {
  if (meta_.empty()) PC_RETURN_IF_ERROR(BuildInternal({}));
  UpdateRec rec{p.x, p.y, p.id, op, next_seq_++};
  bool overflow = false;
  PC_RETURN_IF_ERROR(AppendToBuffer(meta_[0].snode_u, rec, &overflow));
  if (overflow) PC_RETURN_IF_ERROR(FlushSupernode(0));
  live_count_ += (op == 0) ? 1 : -1;
  ++updates_since_build_;
  return MaybeGlobalRebuild();
}

Status DynamicPst::FlushSupernode(int32_t snode_root) {
  ++flushes_;
  std::vector<UpdateRec> recs;
  PC_RETURN_IF_ERROR(ReadBuffer(meta_[snode_root].snode_u, &recs));
  PC_RETURN_IF_ERROR(WriteBuffer(meta_[snode_root].snode_u, {}));

  // Route each record: it belongs to the first node (from the supernode
  // root down) whose heap band contains it; records crossing into a child
  // supernode are forwarded to that supernode's buffer.
  std::unordered_map<int32_t, std::vector<UpdateRec>> apply;
  for (const UpdateRec& rec : recs) {
    int32_t v = snode_root;
    for (;;) {
      const Meta& m = meta_[v];
      if (v != snode_root && IsSupernodeRoot(v)) {
        bool overflow = false;
        PC_RETURN_IF_ERROR(AppendToBuffer(m.snode_u, rec, &overflow));
        if (overflow) PC_RETURN_IF_ERROR(FlushSupernode(v));
        break;
      }
      const bool here =
          CompositeGe(rec.y, rec.id, m.y_min, m.y_min_id) ||
          (m.left < 0 && m.right < 0);
      if (here) {
        apply[v].push_back(rec);
        break;
      }
      // Composite-x routing mirrors the build-time median split.
      const bool go_left =
          (rec.x != m.split_x) ? rec.x < m.split_x : rec.id <= m.split_id;
      int32_t next = go_left ? m.left : m.right;
      if (next < 0) next = go_left ? m.right : m.left;  // lopsided node
      if (next < 0) {
        apply[v].push_back(rec);
        break;
      }
      v = next;
    }
  }

  std::vector<int32_t> changed;
  std::unordered_set<int32_t> affected;
  for (auto& [v, vrecs] : apply) {
    PC_RETURN_IF_ERROR(ApplyToRegion(v, vrecs));
    changed.push_back(v);
    affected.insert(v);
  }
  if (!affected.empty()) {
    PC_RETURN_IF_ERROR(SyncRecsToDisk(changed));
    PC_RETURN_IF_ERROR(RebuildCachesOfSupernode(snode_root));
  }
  return Status::OK();
}

Status DynamicPst::ReadRegionPoints(int32_t v, std::vector<Point>* out) const {
  if (meta_[v].x_pages.empty()) return Status::OK();
  PageId page = meta_[v].x_pages[0];
  while (page != kInvalidPageId) {
    PC_RETURN_IF_ERROR(ReadPointBlockPage(dev_, page, out, &page));
  }
  return Status::OK();
}

Status DynamicPst::ApplyToRegion(int32_t v,
                                 const std::vector<UpdateRec>& recs) {
  Meta& m = meta_[v];
  std::vector<Point> pts;
  PC_RETURN_IF_ERROR(ReadRegionPoints(v, &pts));
  for (const UpdateRec& rec : recs) {
    if (rec.op == 0) {
      pts.push_back(rec.ToPoint());
    } else {
      for (size_t k = 0; k < pts.size(); ++k) {
        if (pts[k].id == rec.id) {
          pts.erase(pts.begin() + k);
          break;
        }
      }
    }
  }

  // Rewrite the X and Y lists.
  for (PageId p : m.x_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
  for (PageId p : m.y_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
  std::sort(pts.begin(), pts.end(), GreaterByX);
  auto xi = BuildBlockList<Point>(dev_, std::span<const Point>(pts));
  if (!xi.ok()) return xi.status();
  m.x_pages = xi.value().pages;
  std::vector<Point> ys = pts;
  std::sort(ys.begin(), ys.end(), GreaterByY);
  auto yi = BuildBlockList<Point>(dev_, std::span<const Point>(ys));
  if (!yi.ok()) return yi.status();
  m.y_pages = yi.value().pages;
  m.count = static_cast<uint32_t>(pts.size());
  if (ys.empty()) {
    m.y_min = INT64_MAX;
    m.y_min_id = 0;
  } else {
    m.y_min = ys.back().y;
    m.y_min_id = ys.back().id;
  }

  // Pending-for-second-level buffer; overflow rebuilds the second level.
  std::vector<UpdateRec> pending;
  PC_RETURN_IF_ERROR(ReadBuffer(m.region_u, &pending));
  pending.insert(pending.end(), recs.begin(), recs.end());
  if (pending.size() >= buf_cap_) {
    PC_RETURN_IF_ERROR(second_[v]->Destroy());
    second_[v] = std::make_unique<ExternalPst>(dev_, ExternalPstOptions{});
    std::sort(pts.begin(), pts.end(), GreaterByY);
    PC_RETURN_IF_ERROR(second_[v]->Build(pts));
    pending.clear();
  }
  PC_RETURN_IF_ERROR(WriteBuffer(m.region_u, pending));
  region_u_counts_[v] = static_cast<uint32_t>(pending.size());
  return Status::OK();
}

Status DynamicPst::RebuildCachesOfSupernode(int32_t snode_root) {
  // Enumerate the supernode's nodes top-down with their segment chains.
  struct Item {
    int32_t idx;
    std::vector<int32_t> chain;  // segment-local root..idx
  };
  std::vector<Item> stack{{snode_root, {snode_root}}};
  const uint32_t top_depth = meta_[snode_root].depth;
  while (!stack.empty()) {
    Item it = std::move(stack.back());
    stack.pop_back();
    PC_RETURN_IF_ERROR(RebuildCacheOf(it.idx, it.chain));
    for (int32_t c : {meta_[it.idx].left, meta_[it.idx].right}) {
      if (c < 0) continue;
      if (meta_[c].depth >= top_depth + seg_len_) continue;  // next supernode
      Item child;
      child.idx = c;
      child.chain = it.chain;
      child.chain.push_back(c);
      stack.push_back(std::move(child));
    }
  }
  return Status::OK();
}

Status DynamicPst::RebuildCacheOf(int32_t v,
                                  const std::vector<int32_t>& chain) {
  Meta& m = meta_[v];
  // Free the previous cache block lists.
  for (PageId p : m.cache_a_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
  for (PageId p : m.cache_s_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
  m.cache_a_pages.clear();
  m.cache_s_pages.clear();

  NodeCache cache;
  std::vector<SrcPoint> a_recs, s_recs;
  for (size_t j = 0; j < chain.size(); ++j) {
    const int32_t u = chain[j];
    const uint32_t ord = static_cast<uint32_t>(cache.ancs.size());
    std::vector<Point> first;
    if (!meta_[u].x_pages.empty()) {
      PC_RETURN_IF_ERROR(
          ReadPointBlockPage(dev_, meta_[u].x_pages[0], &first, nullptr));
    }
    for (const Point& p : first) a_recs.push_back(SrcPoint::From(p, ord));
    cache.ancs.push_back(
        AncInfo{meta_[u].x_pages.size() > 1 ? meta_[u].x_pages[1]
                                            : kInvalidPageId,
                static_cast<uint32_t>(first.size()), meta_[u].count});
  }
  for (size_t j = 1; j < chain.size(); ++j) {
    const int32_t u = chain[j];
    const int32_t parent = chain[j - 1];
    if (meta_[parent].left != u || meta_[parent].right < 0) continue;
    const int32_t sib = meta_[parent].right;
    const uint32_t ord = static_cast<uint32_t>(cache.sibs.size());
    std::vector<Point> first;
    if (!meta_[sib].y_pages.empty()) {
      PC_RETURN_IF_ERROR(
          ReadPointBlockPage(dev_, meta_[sib].y_pages[0], &first, nullptr));
    }
    for (const Point& p : first) s_recs.push_back(SrcPoint::From(p, ord));
    cache.sibs.push_back(SibInfo{
        meta_[sib].left >= 0 ? tree_.refs[meta_[sib].left] : kNullNodeRef,
        meta_[sib].right >= 0 ? tree_.refs[meta_[sib].right] : kNullNodeRef,
        meta_[sib].y_pages.size() > 1 ? meta_[sib].y_pages[1]
                                      : kInvalidPageId,
        static_cast<uint32_t>(first.size()), meta_[sib].count});
  }
  std::sort(a_recs.begin(), a_recs.end(),
            [](const SrcPoint& a, const SrcPoint& b) {
              return GreaterByX(a.ToPoint(), b.ToPoint());
            });
  std::sort(s_recs.begin(), s_recs.end(),
            [](const SrcPoint& a, const SrcPoint& b) {
              return GreaterByY(a.ToPoint(), b.ToPoint());
            });
  auto ai = BuildBlockList<SrcPoint>(dev_, std::span<const SrcPoint>(a_recs));
  if (!ai.ok()) return ai.status();
  auto si = BuildBlockList<SrcPoint>(dev_, std::span<const SrcPoint>(s_recs));
  if (!si.ok()) return si.status();
  cache.a_pages = ai.value().pages;
  cache.s_pages = si.value().pages;
  cache.a_count = a_recs.size();
  cache.s_count = s_recs.size();
  m.cache_a_pages = cache.a_pages;
  m.cache_s_pages = cache.s_pages;
  return WriteCacheHeader(dev_, m.cache_page, cache);
}

Status DynamicPst::SyncRecsToDisk(const std::vector<int32_t>& changed) {
  // Group changed node indices by skeletal page and rewrite those pages.
  std::unordered_set<PageId> pages;
  for (int32_t v : changed) pages.insert(tree_.refs[v].page);
  std::vector<std::byte> buf(dev_->page_size());
  for (size_t pi = 0; pi < tree_.page_ids.size(); ++pi) {
    if (pages.find(tree_.page_ids[pi]) == pages.end()) continue;
    std::memset(buf.data(), 0, buf.size());
    SkeletalPageHeader hdr;
    hdr.count = static_cast<uint32_t>(tree_.page_members[pi].size());
    hdr.rec_size = sizeof(DynNodeRec);
    std::memcpy(buf.data(), &hdr, sizeof(hdr));
    for (uint32_t s = 0; s < tree_.page_members[pi].size(); ++s) {
      const int32_t idx = tree_.page_members[pi][s];
      const Meta& m = meta_[idx];
      DynNodeRec rec;
      rec.split_x = m.split_x;
      rec.split_id = m.split_id;
      rec.y_min = m.y_min;
      rec.y_min_id = m.y_min_id;
      rec.left = m.left >= 0 ? tree_.refs[m.left] : kNullNodeRef;
      rec.right = m.right >= 0 ? tree_.refs[m.right] : kNullNodeRef;
      rec.x_head = m.x_pages.empty() ? kInvalidPageId : m.x_pages[0];
      rec.y_head = m.y_pages.empty() ? kInvalidPageId : m.y_pages[0];
      rec.cache_page = m.cache_page;
      rec.snode_u = m.snode_u;
      rec.region_u = m.region_u;
      rec.count = m.count;
      rec.depth = m.depth;
      rec.region_ord = static_cast<uint32_t>(idx);
      std::memcpy(buf.data() + sizeof(hdr) + s * sizeof(DynNodeRec), &rec,
                  sizeof(DynNodeRec));
    }
    PC_RETURN_IF_ERROR(dev_->Write(tree_.page_ids[pi], buf.data()));
  }
  return Status::OK();
}

Status DynamicPst::CollectAllPoints(std::vector<Point>* out) const {
  std::unordered_map<uint64_t, Point> points;
  for (size_t v = 0; v < meta_.size(); ++v) {
    std::vector<Point> pts;
    PC_RETURN_IF_ERROR(ReadRegionPoints(static_cast<int32_t>(v), &pts));
    for (const Point& p : pts) points[p.id] = p;
  }
  // Apply pending supernode-buffer updates in sequence order.
  std::vector<UpdateRec> pending;
  for (size_t v = 0; v < meta_.size(); ++v) {
    if (meta_[v].snode_u != kInvalidPageId) {
      PC_RETURN_IF_ERROR(ReadBuffer(meta_[v].snode_u, &pending));
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const UpdateRec& a, const UpdateRec& b) { return a.seq < b.seq; });
  for (const UpdateRec& rec : pending) {
    if (rec.op == 0) {
      points[rec.id] = rec.ToPoint();
    } else {
      points.erase(rec.id);
    }
  }
  out->reserve(points.size());
  for (const auto& [id, p] : points) out->push_back(p);
  return Status::OK();
}

Status DynamicPst::MaybeGlobalRebuild() {
  const uint64_t threshold = std::max<uint64_t>(
      buf_cap_, static_cast<uint64_t>(static_cast<double>(built_count_) *
                                      opts_.rebuild_fraction));
  if (updates_since_build_ < threshold) return Status::OK();
  std::vector<Point> points;
  PC_RETURN_IF_ERROR(CollectAllPoints(&points));
  PC_RETURN_IF_ERROR(DestroyInternal());
  ++rebuilds_;
  return BuildInternal(std::move(points));
}

Status DynamicPst::DestroyInternal() {
  for (auto& child : second_) {
    if (child != nullptr) PC_RETURN_IF_ERROR(child->Destroy());
  }
  second_.clear();
  for (const Meta& m : meta_) {
    for (PageId p : m.x_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
    for (PageId p : m.y_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
    for (PageId p : m.cache_a_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
    for (PageId p : m.cache_s_pages) PC_RETURN_IF_ERROR(dev_->Free(p));
    if (m.cache_page != kInvalidPageId) {
      PC_RETURN_IF_ERROR(dev_->Free(m.cache_page));
    }
    if (m.region_u != kInvalidPageId) {
      PC_RETURN_IF_ERROR(dev_->Free(m.region_u));
    }
    if (m.snode_u != kInvalidPageId) {
      PC_RETURN_IF_ERROR(dev_->Free(m.snode_u));
    }
  }
  for (PageId p : tree_.page_ids) PC_RETURN_IF_ERROR(dev_->Free(p));
  meta_.clear();
  tree_ = SkeletalTreeInfo{};
  region_u_counts_.clear();
  return Status::OK();
}

Status DynamicPst::Destroy() {
  PC_RETURN_IF_ERROR(DestroyInternal());
  live_count_ = 0;
  built_count_ = 0;
  return Status::OK();
}

StorageBreakdown DynamicPst::storage() const {
  StorageBreakdown s;
  s.skeletal = tree_.pages;
  for (const Meta& m : meta_) {
    s.points += m.x_pages.size() + m.y_pages.size();
    s.cache_blocks += m.cache_a_pages.size() + m.cache_s_pages.size();
    s.cache_headers += 1;                            // cache header
    s.cache_headers += (m.region_u != kInvalidPageId) ? 1 : 0;
    s.cache_headers += (m.snode_u != kInvalidPageId) ? 1 : 0;
  }
  for (const auto& child : second_) {
    if (child != nullptr) s.second_level += child->storage().total();
  }
  return s;
}

Status DynamicPst::QueryTwoSided(const TwoSidedQuery& q,
                                 std::vector<Point>* out,
                                 QueryStats* stats) const {
  if (meta_.empty()) return Status::OK();
  const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
  const uint32_t pt_cap = B_;
  SkeletalTreeReader<DynNodeRec> reader(dev_);

  struct PathEnt {
    NodeRef ref;
    DynNodeRec rec;
  };
  std::vector<PathEnt> path;
  {
    NodeRef cur = tree_.root;
    for (;;) {
      PathEnt ent;
      ent.ref = cur;
      PC_RETURN_IF_ERROR(reader.Read(cur, &ent.rec));
      path.push_back(ent);
      if (q.y_min > ent.rec.y_min) break;
      NodeRef next =
          (q.x_min <= ent.rec.split_x) ? ent.rec.left : ent.rec.right;
      if (!next.valid()) break;
      cur = next;
    }
  }
  Bump(stats, &QueryStats::navigation, reader.pages_read());
  Bump(stats, &QueryStats::wasteful, reader.pages_read());

  // Buffers to replay: supernode buffers on the path now; descendants add
  // theirs as they are entered.
  std::vector<UpdateRec> pending_ops;
  std::unordered_set<PageId> buffers_read;
  auto read_snode_buffer = [&](PageId page) -> Status {
    if (page == kInvalidPageId || !buffers_read.insert(page).second) {
      return Status::OK();
    }
    Bump(stats, &QueryStats::buffer);
    Bump(stats, &QueryStats::wasteful);
    return ReadBuffer(page, &pending_ops);
  };
  for (const PathEnt& ent : path) {
    PC_RETURN_IF_ERROR(read_snode_buffer(ent.rec.snode_u));
  }

  // Scans a y- or x-ordered point list with the usual stop rule.
  auto scan_list = [&](PageId page, bool by_x, uint64_t QueryStats::* role,
                       uint64_t* qualified) -> Status {
    *qualified = 0;
    PageId cur = page;
    uint64_t walked = 0;
    while (cur != kInvalidPageId) {
      PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
      std::vector<Point> pts;
      PageId next;
      PC_RETURN_IF_ERROR(ReadPointBlockPage(dev_, cur, &pts, &next));
      Bump(stats, role);
      uint64_t block_qual = 0;
      for (const Point& p : pts) {
        if (by_x ? (p.x < q.x_min) : (p.y < q.y_min)) {
          Classify(stats, block_qual, pt_cap);
          return Status::OK();
        }
        if (q.Contains(p)) {
          out->push_back(p);
          ++block_qual;
          ++*qualified;
        }
      }
      Classify(stats, block_qual, pt_cap);
      cur = next;
    }
    return Status::OK();
  };

  const size_t corner = path.size() - 1;
  std::vector<size_t> cache_nodes;
  for (size_t i = 0; i < corner; ++i) {
    if (i % seg_len_ == seg_len_ - 1) cache_nodes.push_back(i);
  }
  cache_nodes.push_back(corner);

  std::vector<NodeRef> descend_todo;

  // Siblings attached at supernode-boundary depths are deliberately NOT in
  // any S-cache (caches never cross supernodes, so they can be rebuilt
  // locally); the query visits them directly — at most one per segment,
  // within the O(log_B n) budget.
  for (size_t i = seg_len_; i <= corner; i += seg_len_) {
    if (!(path[i - 1].rec.left == path[i].ref) ||
        !path[i - 1].rec.right.valid()) {
      continue;
    }
    uint64_t nav_before = reader.pages_read();
    DynNodeRec sib;
    PC_RETURN_IF_ERROR(reader.Read(path[i - 1].rec.right, &sib));
    Bump(stats, &QueryStats::sibling, reader.pages_read() - nav_before);
    Bump(stats, &QueryStats::wasteful, reader.pages_read() - nav_before);
    PC_RETURN_IF_ERROR(read_snode_buffer(sib.snode_u));
    uint64_t qual;
    PC_RETURN_IF_ERROR(
        scan_list(sib.y_head, /*by_x=*/false, &QueryStats::sibling, &qual));
    if (qual == sib.count) {
      if (sib.left.valid()) descend_todo.push_back(sib.left);
      if (sib.right.valid()) descend_todo.push_back(sib.right);
    }
  }
  for (size_t ci : cache_nodes) {
    NodeCache cache;
    PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, path[ci].rec.cache_page, &cache));
    Bump(stats, &QueryStats::cache);
    Bump(stats, &QueryStats::wasteful);
    const uint32_t self_skip =
        (ci == corner) ? static_cast<uint32_t>(cache.ancs.size()) - 1
                       : UINT32_MAX;

    std::vector<uint32_t> anc_qual(cache.ancs.size(), 0);
    bool stop = false;
    for (PageId p : cache.a_pages) {
      if (stop) break;
      std::vector<SrcPoint> recs;
      PC_RETURN_IF_ERROR(ReadSrcBlockPage(dev_, p, &recs));
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      for (const SrcPoint& sp : recs) {
        if (sp.x < q.x_min) {
          stop = true;
          break;
        }
        if (sp.src == self_skip) continue;
        if (sp.src >= anc_qual.size()) {
          return Status::Corruption(
              "A-list record names an ancestor ordinal beyond the cache's "
              "ancestor table");
        }
        if (sp.y >= q.y_min) {
          out->push_back(sp.ToPoint());
          ++qual;
          ++anc_qual[sp.src];
        }
      }
      Classify(stats, qual, src_cap);
    }
    for (size_t k = 0; k < cache.ancs.size(); ++k) {
      const AncInfo& a = cache.ancs[k];
      if (k == self_skip) continue;
      if (anc_qual[k] == a.contributed && a.contributed < a.total &&
          a.x_next != kInvalidPageId) {
        uint64_t qual;
        PC_RETURN_IF_ERROR(
            scan_list(a.x_next, /*by_x=*/true, &QueryStats::ancestor, &qual));
      }
    }

    std::vector<uint32_t> sib_qual(cache.sibs.size(), 0);
    stop = false;
    for (PageId p : cache.s_pages) {
      if (stop) break;
      std::vector<SrcPoint> recs;
      PC_RETURN_IF_ERROR(ReadSrcBlockPage(dev_, p, &recs));
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      for (const SrcPoint& sp : recs) {
        if (sp.y < q.y_min) {
          stop = true;
          break;
        }
        if (sp.src >= sib_qual.size()) {
          return Status::Corruption(
              "S-list record names a sibling ordinal beyond the cache's "
              "sibling table");
        }
        if (sp.x >= q.x_min) {
          out->push_back(sp.ToPoint());
          ++qual;
          ++sib_qual[sp.src];
        }
      }
      Classify(stats, qual, src_cap);
    }
    for (size_t k = 0; k < cache.sibs.size(); ++k) {
      const SibInfo& sb = cache.sibs[k];
      uint64_t qual_total = sib_qual[k];
      if (sib_qual[k] == sb.contributed && sb.contributed < sb.total &&
          sb.y_next != kInvalidPageId) {
        uint64_t qual;
        PC_RETURN_IF_ERROR(
            scan_list(sb.y_next, /*by_x=*/false, &QueryStats::sibling, &qual));
        qual_total += qual;
      }
      // An emptied (drifted) region is vacuously fully-qualified; its
      // children may still hold query points.
      if (qual_total == sb.total) {
        if (sb.left.valid()) descend_todo.push_back(sb.left);
        if (sb.right.valid()) descend_todo.push_back(sb.right);
      }
    }
  }

  while (!descend_todo.empty()) {
    NodeRef ref = descend_todo.back();
    descend_todo.pop_back();
    uint64_t nav_before = reader.pages_read();
    DynNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(ref, &rec));
    Bump(stats, &QueryStats::descendant, reader.pages_read() - nav_before);
    Bump(stats, &QueryStats::wasteful, reader.pages_read() - nav_before);
    PC_RETURN_IF_ERROR(read_snode_buffer(rec.snode_u));
    uint64_t qual;
    PC_RETURN_IF_ERROR(
        scan_list(rec.y_head, /*by_x=*/false, &QueryStats::descendant, &qual));
    if (qual == rec.count) {
      if (rec.left.valid()) descend_todo.push_back(rec.left);
      if (rec.right.valid()) descend_todo.push_back(rec.right);
    }
  }

  // Corner region: second-level query corrected by the region's pending u.
  {
    const DynNodeRec& crec = path[corner].rec;
    std::vector<Point> sub;
    QueryStats sub_stats;
    PC_RETURN_IF_ERROR(
        second_[crec.region_ord]->QueryTwoSided(q, &sub, &sub_stats));
    if (stats != nullptr) {
      sub_stats.records_reported = 0;
      *stats += sub_stats;
    }
    std::vector<UpdateRec> region_pending;
    PC_RETURN_IF_ERROR(ReadBuffer(crec.region_u, &region_pending));
    Bump(stats, &QueryStats::buffer);
    Bump(stats, &QueryStats::wasteful);
    std::sort(region_pending.begin(), region_pending.end(),
              [](const UpdateRec& a, const UpdateRec& b) {
                return a.seq < b.seq;
              });
    for (const UpdateRec& rec : region_pending) {
      if (rec.op == 0) {
        if (q.Contains(rec.ToPoint())) sub.push_back(rec.ToPoint());
      } else {
        for (size_t k = 0; k < sub.size(); ++k) {
          if (sub[k].id == rec.id) {
            sub.erase(sub.begin() + k);
            break;
          }
        }
      }
    }
    out->insert(out->end(), sub.begin(), sub.end());
  }

  // Replay pending supernode-buffer operations in global order.
  if (!pending_ops.empty()) {
    std::sort(pending_ops.begin(), pending_ops.end(),
              [](const UpdateRec& a, const UpdateRec& b) {
                return a.seq < b.seq;
              });
    std::unordered_map<uint64_t, Point> added;
    std::unordered_set<uint64_t> removed;
    for (const UpdateRec& rec : pending_ops) {
      if (rec.op == 0) {
        // A pending insert never cancels an earlier delete: the delete
        // targeted the OLD record of this id, which must stay removed.
        if (q.Contains(rec.ToPoint())) added[rec.id] = rec.ToPoint();
      } else {
        added.erase(rec.id);
        removed.insert(rec.id);
      }
    }
    if (!removed.empty()) {
      std::erase_if(*out, [&](const Point& p) {
        return removed.find(p.id) != removed.end();
      });
    }
    for (const auto& [id, p] : added) out->push_back(p);
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return Status::OK();
}

}  // namespace pathcache
