// A grid-file-style heuristic baseline ([NHS] in the paper's Section 1).
//
// The paper's motivation contrasts worst-case-optimal structures against
// the era's practical spatial indexes — grid files, quad trees, R-trees —
// whose good behaviour is average-case: "their worst-case performance is
// much worse than the optimal bounds".  This simple grid makes that claim
// measurable (experiment E13): a uniform KxK grid sized for ~B points per
// cell on average, each cell a chained block list, with an on-disk cell
// directory.  On uniform data a 2-sided query touches ~(t/B) cells and is
// competitive; on clustered or skewed data most points crowd into few
// cells, so queries degrade toward scanning whole heaps while the
// path-cached structures stay at log_B n + t/B.

#ifndef PATHCACHE_CORE_GRID_BASELINE_H_
#define PATHCACHE_CORE_GRID_BASELINE_H_

#include <vector>

#include "core/query_stats.h"
#include "io/block_list.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

class GridBaseline {
 public:
  explicit GridBaseline(PageDevice* dev) : dev_(dev) {}

  Status Build(std::vector<Point> points);

  /// Reports all points with x >= q.x_min && y >= q.y_min.
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats = nullptr) const;

  /// Reports all points inside the 3-sided region.
  Status QueryThreeSided(const ThreeSidedQuery& q, std::vector<Point>* out,
                         QueryStats* stats = nullptr) const;

  uint64_t size() const { return n_; }
  uint32_t cells_per_side() const { return k_; }

 private:
  struct CellRef {
    PageId head = kInvalidPageId;
    uint64_t count = 0;
  };

  Status ScanCell(const CellRef& cell, const RangeQuery& q,
                  std::vector<Point>* out, QueryStats* stats) const;
  Status QueryRect(const RangeQuery& q, std::vector<Point>* out,
                   QueryStats* stats) const;

  PageDevice* dev_;
  uint64_t n_ = 0;
  uint32_t k_ = 1;  // grid is k_ x k_
  int64_t min_x_ = 0, max_x_ = 0, min_y_ = 0, max_y_ = 0;
  // Cell directory kept on disk (read per query) and mirrored in memory.
  std::vector<CellRef> cells_;
  std::vector<PageId> dir_pages_;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_GRID_BASELINE_H_
