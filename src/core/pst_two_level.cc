#include "core/pst_two_level.h"

#include "core/persist.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <unordered_set>

#include "kernels/search.h"

#include "core/pst_external.h"
#include "core/region_tree.h"
#include "util/mathutil.h"

namespace pathcache {

namespace {

void Bump(QueryStats* stats, uint64_t QueryStats::* role, uint64_t n = 1) {
  if (stats != nullptr) stats->*role += n;
}

void Classify(QueryStats* stats, uint64_t qualifying, uint64_t capacity) {
  if (stats == nullptr) return;
  if (qualifying >= capacity) {
    ++stats->useful;
  } else {
    ++stats->wasteful;
  }
}

}  // namespace

TwoLevelPst::TwoLevelPst(PageDevice* dev, TwoLevelPstOptions opts)
    : dev_(dev), opts_(opts) {
  if (opts_.levels < 2) opts_.levels = 2;
}

Status TwoLevelPst::Build(std::vector<Point> points) {
  if (root_.valid() || !second_.empty()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = points.size();
  const uint32_t B = RecordsPerPage<Point>(dev_->page_size());
  if (B == 0) return Status::InvalidArgument("page too small");
  const uint32_t factor = std::max<uint32_t>(2, FloorLog2(B));
  region_size_ = opts_.region_size != 0 ? opts_.region_size : B * factor;
  uint32_t want = opts_.segment_len != 0 ? opts_.segment_len
                                         : std::max<uint32_t>(1, FloorLog2(B));
  seg_len_ = FitSegmentLen(dev_->page_size(), want, B);
  if (n_ == 0) return Status::OK();

  auto nodes = BuildRegionTree(std::move(points), region_size_);

  // Per-node lists, second-level structures and cache pages.
  std::vector<TwoLevelNodeRec> recs(nodes.size());
  std::vector<int32_t> lefts(nodes.size()), rights(nodes.size());
  std::vector<std::vector<Point>> xsorted(nodes.size());
  std::vector<BlockListInfo> xinfo(nodes.size()), yinfo(nodes.size());
  second_.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    xsorted[i] = nodes[i].pts;
    std::sort(xsorted[i].begin(), xsorted[i].end(), GreaterByX);
    auto xr = BuildBlockList<Point>(
        dev_, std::span<const Point>(xsorted[i]), offsetof(Point, x));
    if (!xr.ok()) return xr.status();
    xinfo[i] = std::move(xr).value();
    auto yr = BuildBlockList<Point>(
        dev_, std::span<const Point>(nodes[i].pts), offsetof(Point, y));
    if (!yr.ok()) return yr.status();
    yinfo[i] = std::move(yr).value();
    for (PageId p : xinfo[i].pages) owned_pages_.push_back(p);
    for (PageId p : yinfo[i].pages) owned_pages_.push_back(p);
    storage_.points += xinfo[i].pages.size() + yinfo[i].pages.size();

    auto cp = dev_->Allocate();
    if (!cp.ok()) return cp.status();
    owned_pages_.push_back(cp.value());
    ++storage_.cache_headers;

    // Second-level structure over this region's points (Section 4.2 picks
    // the next iterated-log region size when recursing deeper).
    std::unique_ptr<TwoSidedIndex> child;
    const uint32_t child_factor =
        std::max<uint32_t>(1, FloorLog2(std::max<uint32_t>(2, factor)));
    if (opts_.levels <= 2 || child_factor <= 1) {
      child = std::make_unique<ExternalPst>(dev_, ExternalPstOptions{});
    } else {
      TwoLevelPstOptions child_opts;
      child_opts.levels = opts_.levels - 1;
      child_opts.region_size = B * child_factor;
      child_opts.segment_len = opts_.segment_len;
      child = std::make_unique<TwoLevelPst>(dev_, child_opts);
    }
    PC_RETURN_IF_ERROR(child->Build(nodes[i].pts));
    storage_.second_level += child->storage().total();
    second_.push_back(std::move(child));

    TwoLevelNodeRec& r = recs[i];
    r.split_x = nodes[i].split_x;
    r.split_id = nodes[i].split_id;
    r.y_min = nodes[i].y_min;
    r.x_head = xinfo[i].ref.head;
    r.y_head = yinfo[i].ref.head;
    r.cache_page = cp.value();
    r.count = static_cast<uint32_t>(nodes[i].pts.size());
    r.depth = nodes[i].depth;
    r.region_ord = static_cast<uint32_t>(i);
    lefts[i] = nodes[i].left;
    rights[i] = nodes[i].right;
  }

  auto tree = WriteSkeletalTree<TwoLevelNodeRec>(dev_, recs, lefts, rights, 0);
  if (!tree.ok()) return tree.status();
  root_ = tree.value().root;
  storage_.skeletal = tree.value().pages;
  {
    std::unordered_set<PageId> seen;
    for (const NodeRef& ref : tree.value().refs) {
      if (ref.valid() && seen.insert(ref.page).second) {
        owned_pages_.push_back(ref.page);
      }
    }
  }
  const auto& refs = tree.value().refs;

  // A/S caches: only the FIRST X/Y block of each covered node (Section 4's
  // space trick) with continuation pointers into the rest of the lists.
  std::vector<int32_t> chain;
  struct Frame {
    int32_t idx;
    uint8_t stage;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.stage == 0) {
      f.stage = 1;
      const int32_t v = f.idx;
      chain.push_back(v);
      const uint32_t d = nodes[v].depth;
      const uint32_t seg_start = (d / seg_len_) * seg_len_;

      NodeCache cache;
      std::vector<SrcPoint> a_recs, s_recs;
      for (uint32_t j = seg_start; j <= d; ++j) {
        const int32_t u = chain[j];
        const uint32_t ord = static_cast<uint32_t>(cache.ancs.size());
        const uint32_t contributed =
            std::min<uint32_t>(B, static_cast<uint32_t>(xsorted[u].size()));
        for (uint32_t k = 0; k < contributed; ++k) {
          a_recs.push_back(SrcPoint::From(xsorted[u][k], ord));
        }
        cache.ancs.push_back(
            AncInfo{xinfo[u].pages.size() > 1 ? xinfo[u].pages[1]
                                              : kInvalidPageId,
                    contributed, static_cast<uint32_t>(xsorted[u].size())});
      }
      for (uint32_t j = std::max<uint32_t>(1, seg_start); j <= d; ++j) {
        const int32_t u = chain[j];
        const int32_t parent = chain[j - 1];
        if (nodes[parent].left != u || nodes[parent].right < 0) continue;
        const int32_t sib = nodes[parent].right;
        const uint32_t ord = static_cast<uint32_t>(cache.sibs.size());
        const uint32_t contributed = std::min<uint32_t>(
            B, static_cast<uint32_t>(nodes[sib].pts.size()));
        for (uint32_t k = 0; k < contributed; ++k) {
          s_recs.push_back(SrcPoint::From(nodes[sib].pts[k], ord));
        }
        cache.sibs.push_back(SibInfo{
            nodes[sib].left >= 0 ? refs[nodes[sib].left] : kNullNodeRef,
            nodes[sib].right >= 0 ? refs[nodes[sib].right] : kNullNodeRef,
            yinfo[sib].pages.size() > 1 ? yinfo[sib].pages[1]
                                        : kInvalidPageId,
            contributed, static_cast<uint32_t>(nodes[sib].pts.size())});
      }
      std::sort(a_recs.begin(), a_recs.end(),
                [](const SrcPoint& a, const SrcPoint& b) {
                  return GreaterByX(a.ToPoint(), b.ToPoint());
                });
      std::sort(s_recs.begin(), s_recs.end(),
                [](const SrcPoint& a, const SrcPoint& b) {
                  return GreaterByY(a.ToPoint(), b.ToPoint());
                });
      auto a_info = BuildBlockList<SrcPoint>(
          dev_, std::span<const SrcPoint>(a_recs), offsetof(SrcPoint, x));
      if (!a_info.ok()) return a_info.status();
      auto s_info = BuildBlockList<SrcPoint>(
          dev_, std::span<const SrcPoint>(s_recs), offsetof(SrcPoint, y));
      if (!s_info.ok()) return s_info.status();
      cache.a_pages = a_info.value().pages;
      cache.s_pages = s_info.value().pages;
      cache.a_count = a_recs.size();
      cache.s_count = s_recs.size();
      storage_.cache_blocks += cache.a_pages.size() + cache.s_pages.size();
      for (PageId p : cache.a_pages) owned_pages_.push_back(p);
      for (PageId p : cache.s_pages) owned_pages_.push_back(p);
      PC_RETURN_IF_ERROR(WriteCacheHeader(dev_, recs[v].cache_page, cache));

      if (nodes[v].right >= 0) stack.push_back({nodes[v].right, 0});
      if (nodes[v].left >= 0) stack.push_back({nodes[v].left, 0});
    } else {
      chain.pop_back();
      stack.pop_back();
    }
  }
  return Status::OK();
}

Status TwoLevelPst::DescendToCorner(
    const TwoSidedQuery& q, std::vector<PathEnt>* path,
    SkeletalTreeReader<TwoLevelNodeRec>* reader) const {
  const uint64_t limit = SkeletalWalkLimit<TwoLevelNodeRec>(dev_);
  uint64_t steps = 0;
  NodeRef cur = root_;
  for (;;) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    PathEnt ent;
    ent.ref = cur;
    PC_RETURN_IF_ERROR(reader->Read(cur, &ent.rec));
    path->push_back(ent);
    if (q.y_min > ent.rec.y_min) break;
    NodeRef next = (q.x_min <= ent.rec.split_x) ? ent.rec.left : ent.rec.right;
    if (!next.valid()) break;
    cur = next;
  }
  return Status::OK();
}

Status TwoLevelPst::ScanList(const TwoSidedQuery& q, PageId page, bool by_x,
                             uint64_t QueryStats::* role,
                             std::vector<Point>* out, QueryStats* stats,
                             uint64_t* qualified, bool* hit_end) const {
  const uint32_t cap = RecordsPerPage<Point>(dev_->page_size());
  const uint32_t key_off = by_x ? offsetof(Point, x) : offsetof(Point, y);
  const uint32_t other_off = by_x ? offsetof(Point, y) : offsetof(Point, x);
  const int64_t bound = by_x ? q.x_min : q.y_min;
  *qualified = 0;
  *hit_end = false;
  BlockPageView<Point> view;
  PageId cur = page;
  uint64_t walked = 0;
  while (cur != kInvalidPageId) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
    PC_RETURN_IF_ERROR(view.Load(dev_, cur));
    Bump(stats, role);
    uint64_t block_qual = 0;
    bool stopped = false;
    if (view.is_packed() && view.key_offset() == key_off) {
      // The scan key is the packed key: one dense stop probe, then the
      // qualifying prefix is reassembled record by record.
      const PackedPageView<Point> v = view.packed();
      const size_t lim =
          kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, bound);
      stopped = lim < v.count;
      for (size_t i = 0; i < lim; ++i) {
        const int64_t other = v.I64Field(i, other_off);
        const uint64_t id = v.U64Field(i, offsetof(Point, id));
        const Point p = by_x ? Point{v.keys[i], other, id}
                             : Point{other, v.keys[i], id};
        if (q.Contains(p)) {
          out->push_back(p);
          ++block_qual;
          ++*qualified;
        }
      }
    } else {
      for (const Point& p : view.records()) {
        if (by_x ? (p.x < q.x_min) : (p.y < q.y_min)) {
          stopped = true;
          break;
        }
        if (q.Contains(p)) {
          out->push_back(p);
          ++block_qual;
          ++*qualified;
        }
      }
    }
    Classify(stats, block_qual, cap);
    if (stopped) return Status::OK();
    cur = view.next();
  }
  *hit_end = true;
  return Status::OK();
}

Status TwoLevelPst::QueryTwoSided(const TwoSidedQuery& q,
                                  std::vector<Point>* out,
                                  QueryStats* stats) const {
  if (!root_.valid()) return Status::OK();
  const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
  SkeletalTreeReader<TwoLevelNodeRec> reader(dev_);
  std::vector<PathEnt> path;
  PC_RETURN_IF_ERROR(DescendToCorner(q, &path, &reader));
  Bump(stats, &QueryStats::navigation, reader.pages_read());
  Bump(stats, &QueryStats::wasteful, reader.pages_read());

  const size_t corner = path.size() - 1;
  std::vector<size_t> cache_nodes;
  for (size_t i = 0; i < corner; ++i) {
    if (i % seg_len_ == seg_len_ - 1) cache_nodes.push_back(i);
  }
  cache_nodes.push_back(corner);

  std::vector<NodeRef> descend_todo;
  for (size_t ci : cache_nodes) {
    NodeCache cache;
    PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, path[ci].rec.cache_page, &cache));
    Bump(stats, &QueryStats::cache);
    Bump(stats, &QueryStats::wasteful);
    // The corner's own first X-block sits in its A-list as the last source;
    // its points are served by the second-level query instead.
    const uint32_t self_skip =
        (ci == corner) ? static_cast<uint32_t>(cache.ancs.size()) - 1
                       : UINT32_MAX;

    // A-list scan, descending x.
    std::vector<uint32_t> anc_qual(cache.ancs.size(), 0);
    bool stop = false;
    BlockPageView<SrcPoint> aview;
    for (PageId p : cache.a_pages) {
      if (stop) break;
      PC_RETURN_IF_ERROR(aview.Load(dev_, p));
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      if (aview.is_packed() && aview.key_offset() == offsetof(SrcPoint, x)) {
        const PackedPageView<SrcPoint> v = aview.packed();
        const size_t lim =
            kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q.x_min);
        if (lim < v.count) stop = true;
        for (size_t i = 0; i < lim; ++i) {
          const uint32_t src = v.U32Field(i, offsetof(SrcPoint, src));
          if (src == self_skip) continue;
          if (src >= anc_qual.size()) {
            return Status::Corruption(
                "A-list record names an ancestor ordinal beyond the cache's "
                "ancestor table");
          }
          const int64_t y = v.I64Field(i, offsetof(SrcPoint, y));
          if (y >= q.y_min) {
            out->push_back(
                Point{v.keys[i], y, v.U64Field(i, offsetof(SrcPoint, id))});
            ++qual;
            ++anc_qual[src];
          }
        }
      } else {
        for (const SrcPoint& sp : aview.records()) {
          if (sp.x < q.x_min) {
            stop = true;
            break;
          }
          if (sp.src == self_skip) continue;
          if (sp.src >= anc_qual.size()) {
            return Status::Corruption(
                "A-list record names an ancestor ordinal beyond the cache's "
                "ancestor table");
          }
          if (sp.y >= q.y_min) {
            out->push_back(sp.ToPoint());
            ++qual;
            ++anc_qual[sp.src];
          }
        }
      }
      Classify(stats, qual, src_cap);
    }
    for (size_t k = 0; k < cache.ancs.size(); ++k) {
      const AncInfo& a = cache.ancs[k];
      if (k == self_skip) continue;
      if (anc_qual[k] == a.contributed && a.contributed < a.total &&
          a.x_next != kInvalidPageId) {
        uint64_t qual;
        bool end;
        PC_RETURN_IF_ERROR(ScanList(q, a.x_next, /*by_x=*/true,
                                    &QueryStats::ancestor, out, stats, &qual,
                                    &end));
      }
    }

    // S-list scan, descending y.
    std::vector<uint32_t> sib_qual(cache.sibs.size(), 0);
    stop = false;
    BlockPageView<SrcPoint> sview;
    for (PageId p : cache.s_pages) {
      if (stop) break;
      PC_RETURN_IF_ERROR(sview.Load(dev_, p));
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      if (sview.is_packed() && sview.key_offset() == offsetof(SrcPoint, y)) {
        const PackedPageView<SrcPoint> v = sview.packed();
        const size_t lim =
            kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q.y_min);
        if (lim < v.count) stop = true;
        for (size_t i = 0; i < lim; ++i) {
          const uint32_t src = v.U32Field(i, offsetof(SrcPoint, src));
          if (src >= sib_qual.size()) {
            return Status::Corruption(
                "S-list record names a sibling ordinal beyond the cache's "
                "sibling table");
          }
          const int64_t x = v.I64Field(i, offsetof(SrcPoint, x));
          if (x >= q.x_min) {
            out->push_back(
                Point{x, v.keys[i], v.U64Field(i, offsetof(SrcPoint, id))});
            ++qual;
            ++sib_qual[src];
          }
        }
      } else {
        for (const SrcPoint& sp : sview.records()) {
          if (sp.y < q.y_min) {
            stop = true;
            break;
          }
          if (sp.src >= sib_qual.size()) {
            return Status::Corruption(
                "S-list record names a sibling ordinal beyond the cache's "
                "sibling table");
          }
          if (sp.x >= q.x_min) {
            out->push_back(sp.ToPoint());
            ++qual;
            ++sib_qual[sp.src];
          }
        }
      }
      Classify(stats, qual, src_cap);
    }
    for (size_t k = 0; k < cache.sibs.size(); ++k) {
      const SibInfo& sb = cache.sibs[k];
      uint64_t qual_total = sib_qual[k];
      if (sib_qual[k] == sb.contributed && sb.contributed < sb.total &&
          sb.y_next != kInvalidPageId) {
        uint64_t qual;
        bool end;
        PC_RETURN_IF_ERROR(ScanList(q, sb.y_next, /*by_x=*/false,
                                    &QueryStats::sibling, out, stats, &qual,
                                    &end));
        qual_total += qual;
      }
      if (qual_total == sb.total) {
        if (sb.left.valid()) descend_todo.push_back(sb.left);
        if (sb.right.valid()) descend_todo.push_back(sb.right);
      }
    }
  }

  // Descendants of siblings: whole regions scanned via their Y-lists.
  const uint64_t walk_limit = SkeletalWalkLimit<TwoLevelNodeRec>(dev_);
  uint64_t walk_steps = 0;
  while (!descend_todo.empty()) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(walk_steps++, walk_limit));
    NodeRef ref = descend_todo.back();
    descend_todo.pop_back();
    uint64_t nav_before = reader.pages_read();
    TwoLevelNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(ref, &rec));
    Bump(stats, &QueryStats::descendant, reader.pages_read() - nav_before);
    Bump(stats, &QueryStats::wasteful, reader.pages_read() - nav_before);
    uint64_t qual;
    bool end;
    PC_RETURN_IF_ERROR(ScanList(q, rec.y_head, /*by_x=*/false,
                                &QueryStats::descendant, out, stats, &qual,
                                &end));
    if (qual == rec.count) {
      if (rec.left.valid()) descend_todo.push_back(rec.left);
      if (rec.right.valid()) descend_todo.push_back(rec.right);
    }
  }

  // The corner region itself: second-level 2-sided query.
  {
    const uint32_t ord = path[corner].rec.region_ord;
    if (ord >= second_.size() || second_[ord] == nullptr) {
      return Status::Corruption(
          "corner node names a second-level ordinal beyond the opened "
          "structures");
    }
    QueryStats sub;
    PC_RETURN_IF_ERROR(second_[ord]->QueryTwoSided(q, out, &sub));
    if (stats != nullptr) {
      sub.records_reported = 0;  // avoid double counting; set below
      *stats += sub;
    }
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return Status::OK();
}

Status TwoLevelPst::Destroy() {
  for (auto& child : second_) {
    if (child != nullptr) PC_RETURN_IF_ERROR(child->Destroy());
  }
  second_.clear();
  for (PageId p : owned_pages_) PC_RETURN_IF_ERROR(dev_->Free(p));
  owned_pages_.clear();
  root_ = kNullNodeRef;
  n_ = 0;
  storage_ = StorageBreakdown{};
  return Status::OK();
}

}  // namespace pathcache

namespace pathcache {

Result<PageId> TwoLevelPst::Save() {
  // Children first: collect a manifest id per region in ordinal order.
  std::vector<PageId> child_manifests;
  child_manifests.reserve(second_.size());
  for (auto& child : second_) {
    PageId id = kInvalidPageId;
    if (auto* ep = dynamic_cast<ExternalPst*>(child.get())) {
      auto r = ep->Save();
      if (!r.ok()) return r.status();
      id = r.value();
    } else if (auto* tp = dynamic_cast<TwoLevelPst*>(child.get())) {
      auto r = tp->Save();
      if (!r.ok()) return r.status();
      id = r.value();
    } else {
      return Status::NotSupported("unknown second-level type");
    }
    child_manifests.push_back(id);
  }
  auto kids = BuildBlockList<PageId>(
      dev_, std::span<const PageId>(child_manifests));
  if (!kids.ok()) return kids.status();
  auto list =
      BuildBlockList<PageId>(dev_, std::span<const PageId>(owned_pages_));
  if (!list.ok()) return list.status();
  auto mp = dev_->Allocate();
  if (!mp.ok()) return mp.status();

  PstManifestHeader hdr;
  hdr.magic = kTwoLevelPstMagic;
  hdr.n = n_;
  hdr.root = root_;
  hdr.region_size = region_size_;
  hdr.seg_len = seg_len_;
  hdr.levels = opts_.levels;
  hdr.skeletal = storage_.skeletal;
  hdr.points_pages = storage_.points;
  hdr.cache_headers = storage_.cache_headers;
  hdr.cache_blocks = storage_.cache_blocks;
  hdr.second_level = storage_.second_level;
  hdr.owned_head = list.value().ref.head;
  hdr.owned_count = owned_pages_.size();
  hdr.children_head = kids.value().ref.head;
  hdr.children_count = child_manifests.size();
  PC_RETURN_IF_ERROR(internal::WriteManifestHeader(dev_, mp.value(), hdr));

  owned_pages_.push_back(mp.value());
  for (PageId p : list.value().pages) owned_pages_.push_back(p);
  for (PageId p : kids.value().pages) owned_pages_.push_back(p);
  return mp.value();
}

Status TwoLevelPst::Open(PageId manifest) {
  if (root_.valid() || !second_.empty() || !owned_pages_.empty()) {
    return Status::FailedPrecondition("Open on a non-empty structure");
  }
  PstManifestHeader hdr;
  std::vector<PageId> owned, children, chain;
  PC_RETURN_IF_ERROR(internal::ReadManifest(dev_, manifest, kTwoLevelPstMagic,
                                            &hdr, &owned, &children, &chain));
  n_ = hdr.n;
  root_ = hdr.root;
  region_size_ = hdr.region_size;
  seg_len_ = hdr.seg_len;
  opts_.levels = hdr.levels;
  storage_ = StorageBreakdown{};
  storage_.skeletal = hdr.skeletal;
  storage_.points = hdr.points_pages;
  storage_.cache_headers = hdr.cache_headers;
  storage_.cache_blocks = hdr.cache_blocks;
  storage_.second_level = hdr.second_level;
  owned_pages_ = std::move(owned);
  for (PageId p : chain) owned_pages_.push_back(p);

  second_.reserve(children.size());
  for (PageId child : children) {
    auto r = OpenTwoSidedIndex(dev_, child);
    if (!r.ok()) return r.status();
    second_.push_back(std::move(r).value());
  }
  return Status::OK();
}

}  // namespace pathcache

namespace pathcache {

Status TwoLevelPst::CheckStructure() const {
  if (!root_.valid()) {
    return n_ == 0 ? Status::OK()
                   : Status::Corruption("no root for non-empty structure");
  }
  SkeletalTreeReader<TwoLevelNodeRec> reader(dev_);
  struct Item {
    NodeRef ref;
    uint32_t depth;
    int64_t parent_y_min;
  };
  std::vector<Item> stack{{root_, 0, INT64_MAX}};
  uint64_t total = 0;
  std::vector<std::byte> buf(dev_->page_size());

  auto read_list = [&](PageId head, std::vector<Point>* out) -> Status {
    PageId page = head;
    uint64_t walked = 0;
    while (page != kInvalidPageId) {
      PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
      PC_RETURN_IF_ERROR(dev_->Read(page, buf.data()));
      BlockPageHeader bh;
      std::memcpy(&bh, buf.data(), sizeof(bh));
      PC_RETURN_IF_ERROR(
          CheckBlockPageHeader(bh, RecordsPerPage<Point>(dev_->page_size()),
                               sizeof(Point), dev_->page_size()));
      AppendBlockRecords(buf.data(), bh, out);
      page = bh.next;
    }
    return Status::OK();
  };

  const uint64_t walk_limit = SkeletalWalkLimit<TwoLevelNodeRec>(dev_);
  uint64_t walk_steps = 0;
  while (!stack.empty()) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(walk_steps++, walk_limit));
    Item it = stack.back();
    stack.pop_back();
    TwoLevelNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(it.ref, &rec));
    if (rec.depth != it.depth) return Status::Corruption("depth mismatch");

    std::vector<Point> xs, ys;
    PC_RETURN_IF_ERROR(read_list(rec.x_head, &xs));
    PC_RETURN_IF_ERROR(read_list(rec.y_head, &ys));
    if (xs.size() != rec.count || ys.size() != rec.count) {
      return Status::Corruption("X/Y list count mismatch");
    }
    for (size_t i = 1; i < xs.size(); ++i) {
      if (!GreaterByX(xs[i - 1], xs[i])) {
        return Status::Corruption("X-list not x-descending");
      }
    }
    for (size_t i = 1; i < ys.size(); ++i) {
      if (!GreaterByY(ys[i - 1], ys[i])) {
        return Status::Corruption("Y-list not y-descending");
      }
    }
    // Same multiset (ids are unique within a region).
    {
      std::vector<uint64_t> a, b;
      for (const auto& p : xs) a.push_back(p.id);
      for (const auto& p : ys) b.push_back(p.id);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) return Status::Corruption("X and Y lists differ");
    }
    if (!ys.empty() && rec.y_min != ys.back().y) {
      return Status::Corruption("y_min stale");
    }
    for (const auto& p : ys) {
      if (p.y > it.parent_y_min) {
        return Status::Corruption("heap order violated");
      }
    }
    if (rec.region_ord >= second_.size() ||
        second_[rec.region_ord] == nullptr) {
      return Status::Corruption("missing second-level structure");
    }
    if (second_[rec.region_ord]->size() != rec.count) {
      return Status::Corruption("second-level size mismatch");
    }
    total += rec.count;

    NodeCache cache;
    PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, rec.cache_page, &cache));
    const uint32_t seg_start = (rec.depth / seg_len_) * seg_len_;
    if (cache.ancs.size() != rec.depth - seg_start + 1) {
      return Status::Corruption("A-list coverage count mismatch");
    }
    uint64_t a_sum = 0, s_sum = 0;
    for (const auto& a : cache.ancs) a_sum += a.contributed;
    for (const auto& s : cache.sibs) s_sum += s.contributed;
    if (a_sum != cache.a_count || s_sum != cache.s_count) {
      return Status::Corruption("cache contributed sums mismatch");
    }

    if (rec.left.valid()) {
      stack.push_back({rec.left, it.depth + 1, rec.y_min});
    }
    if (rec.right.valid()) {
      stack.push_back({rec.right, it.depth + 1, rec.y_min});
    }
  }
  if (total != n_) return Status::Corruption("total point count mismatch");
  return Status::OK();
}

}  // namespace pathcache
