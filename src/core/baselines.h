// The paper's Section 1 strawman for 2-D queries: a B+-tree on one
// attribute, scanning and filtering on the other.  Optimal for 1-D ranges,
// it degrades to O(log_B n + t_x / B) for 2-sided/3-sided queries where
// t_x >= t is the number of points passing only the x-constraint — the
// motivating gap path caching closes.
//
// Implementation: points clustered in x-order in a chained block file, with
// a sparse B+-tree index mapping each block's first x to its page.

#ifndef PATHCACHE_CORE_BASELINES_H_
#define PATHCACHE_CORE_BASELINES_H_

#include <vector>

#include "btree/bplus_tree.h"
#include "core/query_stats.h"
#include "io/block_list.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

class XSortedBaseline {
 public:
  explicit XSortedBaseline(PageDevice* dev) : dev_(dev), index_(dev) {}

  Status Build(std::vector<Point> points);

  /// Scans x >= q.x_min filtering y; I/O grows with the x-selectivity.
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats = nullptr) const;

  /// Scans x in [q.x_min, q.x_max] filtering y.
  Status QueryThreeSided(const ThreeSidedQuery& q, std::vector<Point>* out,
                         QueryStats* stats = nullptr) const;

  uint64_t size() const { return n_; }
  uint64_t data_pages() const { return pages_.size(); }

 private:
  Status Scan(int64_t x_lo, int64_t x_hi, int64_t y_min,
              std::vector<Point>* out, QueryStats* stats) const;

  PageDevice* dev_;
  BPlusTree index_;
  std::vector<PageId> pages_;
  BlockListRef data_;
  uint64_t n_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_BASELINES_H_
