// Fully dynamic two-level external PST for 2-sided queries — Section 5 of
// the paper (Theorem 5.1): O(log_B n + t/B) queries and O(log_B n)
// amortized I/Os per insert or delete at O((n/B) log log B) space.
//
// Dynamization follows the paper's buffer scheme:
//
//  * The top tree is partitioned into SUPERNODES: subtrees of height
//    hs = log B - log log B.  Cache path-segments are aligned with
//    supernodes, so no A/S cache ever references data outside its
//    supernode — rebuilding a supernode's caches after updates costs
//    O((B / log B) * log B) = O(B) I/Os, amortized O(1) over the ~B
//    updates that trigger it.
//  * Every supernode root carries an update buffer U of one page.  An
//    update appends to the ROOT supernode's buffer (O(1) I/Os); overflow
//    flushes the buffer, routing each record down by heap position — a
//    record belongs to the first region whose y-band contains it — either
//    applying it to a region in this supernode (X/Y lists rebuilt, caches
//    of the supernode refreshed) or forwarding it to a child supernode's
//    buffer, recursively.
//  * Each region keeps a second buffer u of records already applied to its
//    X/Y lists but not yet to its second-level structure; overflow rebuilds
//    the second level (O(log B log log B) I/Os, amortized O(1)).
//  * Queries run the static two-level algorithm, then consult the buffers
//    of every supernode the query visited (path supernodes plus any entered
//    while chasing descendants) and the corner region's u, replaying the
//    pending operations in global sequence order.  Routing by y-band
//    guarantees a pending insert in an unvisited supernode lies outside the
//    query, so nothing is missed.
//
// Deviation from the paper (documented in DESIGN.md): instead of the
// per-supernode y-repartition with push/borrow, region sizes drift between
// flushes and a full rebuild runs every n/2 updates; the global rebuild
// amortizes to O(polylog(B)/B) = o(log_B n) per update, so the stated
// amortized bound is preserved and is verified empirically by bench E7.

#ifndef PATHCACHE_CORE_PST_DYNAMIC_H_
#define PATHCACHE_CORE_PST_DYNAMIC_H_

#include <memory>
#include <vector>

#include "core/pst_common.h"
#include "core/pst_external.h"
#include "core/query_stats.h"
#include "io/page_device.h"

namespace pathcache {

/// A buffered update: insert or delete of a point, with a global sequence
/// number so queries can replay pending operations in order.
struct UpdateRec {
  int64_t x = 0;
  int64_t y = 0;
  uint64_t id = 0;
  uint32_t op = 0;  // 0 = insert, 1 = delete
  uint32_t seq = 0;

  Point ToPoint() const { return Point{x, y, id}; }
};
static_assert(sizeof(UpdateRec) == 32);

/// Skeletal node record of the dynamic two-level PST.
struct DynNodeRec {
  int64_t split_x = 0;
  uint64_t split_id = 0;
  int64_t y_min = INT64_MAX;   // composite (y_min, y_min_id) orders ties
  uint64_t y_min_id = 0;
  NodeRef left;
  NodeRef right;
  PageId x_head = kInvalidPageId;
  PageId y_head = kInvalidPageId;
  PageId cache_page = kInvalidPageId;
  PageId snode_u = kInvalidPageId;   // supernode buffer; supernode roots only
  PageId region_u = kInvalidPageId;  // second-level pending buffer
  uint32_t count = 0;
  uint32_t depth = 0;
  uint32_t region_ord = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(DynNodeRec) == 120);

struct DynamicPstOptions {
  /// Supernode height / cache segment length; 0 derives
  /// max(1, log2 B - log2 log2 B) from the page size.
  uint32_t segment_len = 0;
  /// Rebuild everything after this fraction-of-n updates (default 1/2).
  double rebuild_fraction = 0.5;
};

class DynamicPst {
 public:
  explicit DynamicPst(PageDevice* dev, DynamicPstOptions opts = {});
  ~DynamicPst();

  /// Bulk-builds the initial point set.  Point ids must be unique.
  Status Build(std::vector<Point> points);

  /// Inserts a point; the id must not currently exist in the structure.
  Status Insert(const Point& p);

  /// Deletes a point previously inserted (exact x, y, id).
  Status Erase(const Point& p);

  /// Reports all points with x >= q.x_min && y >= q.y_min.
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats = nullptr) const;

  Status Destroy();

  uint64_t size() const { return live_count_; }
  uint32_t segment_len() const { return seg_len_; }
  StorageBreakdown storage() const;
  uint64_t rebuilds() const { return rebuilds_; }
  uint64_t flushes() const { return flushes_; }

 private:
  // In-memory mirror of the top-tree metadata (structure only, no data).
  struct Meta {
    int64_t split_x = 0;
    uint64_t split_id = 0;
    int64_t y_min = INT64_MAX;
    uint64_t y_min_id = 0;
    int32_t left = -1;
    int32_t right = -1;
    int32_t parent = -1;
    uint32_t depth = 0;
    uint32_t count = 0;
    std::vector<PageId> x_pages;
    std::vector<PageId> y_pages;
    std::vector<PageId> cache_a_pages;  // current A-list blocks
    std::vector<PageId> cache_s_pages;  // current S-list blocks
    PageId cache_page = kInvalidPageId;
    PageId snode_u = kInvalidPageId;
    PageId region_u = kInvalidPageId;
  };

  bool IsSupernodeRoot(int32_t idx) const {
    return meta_[idx].depth % seg_len_ == 0;
  }

  Status BuildInternal(std::vector<Point> points);
  Status DestroyInternal();
  Status AppendToBuffer(PageId buffer, const UpdateRec& rec, bool* overflow);
  Status ReadBuffer(PageId buffer, std::vector<UpdateRec>* out) const;
  Status WriteBuffer(PageId buffer, const std::vector<UpdateRec>& recs);
  Status Update(const Point& p, uint32_t op);
  Status FlushSupernode(int32_t snode_root);
  Status ApplyToRegion(int32_t v, const std::vector<UpdateRec>& recs);
  Status RebuildCachesOfSupernode(int32_t snode_root);
  Status RebuildCacheOf(int32_t v, const std::vector<int32_t>& chain);
  Status ReadRegionPoints(int32_t v, std::vector<Point>* out) const;
  Status MaybeGlobalRebuild();
  Status CollectAllPoints(std::vector<Point>* out) const;
  Status SyncRecsToDisk(const std::vector<int32_t>& changed);

  PageDevice* dev_;
  DynamicPstOptions opts_;
  uint32_t B_ = 0;          // points per page
  uint32_t seg_len_ = 1;    // supernode height == cache segment length
  uint32_t buf_cap_ = 0;    // UpdateRecs per buffer page
  uint64_t live_count_ = 0;
  uint64_t built_count_ = 0;        // points at last full (re)build
  uint64_t updates_since_build_ = 0;
  uint32_t next_seq_ = 1;
  uint64_t rebuilds_ = 0;
  uint64_t flushes_ = 0;

  std::vector<Meta> meta_;
  SkeletalTreeInfo tree_;  // layout of the top tree (refs, page members)
  std::vector<std::unique_ptr<ExternalPst>> second_;
  std::vector<uint32_t> region_u_counts_;  // mirror of on-disk u sizes
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_PST_DYNAMIC_H_
