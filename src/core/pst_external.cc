#include "core/pst_external.h"

#include "core/persist.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <unordered_set>

#include "kernels/search.h"

#include "util/mathutil.h"

namespace pathcache {

namespace {

// Reads one block-list page of Points, appending records; returns the next
// page in the chain via *next.  Scan paths that can filter in place use
// BlockPageView directly instead (zero-copy on pinning devices).
Status ReadPointBlock(PageDevice* dev, PageId page, std::vector<Point>* out,
                      PageId* next) {
  BlockPageView<Point> view;
  PC_RETURN_IF_ERROR(view.Load(dev, page));
  const std::span<const Point> recs = view.records();
  out->insert(out->end(), recs.begin(), recs.end());
  *next = view.next();
  return Status::OK();
}

void Bump(QueryStats* stats, uint64_t QueryStats::* role, uint64_t n = 1) {
  if (stats != nullptr) stats->*role += n;
}

void Classify(QueryStats* stats, uint64_t qualifying, uint64_t capacity) {
  if (stats == nullptr) return;
  if (qualifying >= capacity) {
    ++stats->useful;
  } else {
    ++stats->wasteful;
  }
}

}  // namespace

ExternalPst::ExternalPst(PageDevice* dev, ExternalPstOptions opts)
    : dev_(dev), opts_(opts) {}

Status ExternalPst::Build(std::vector<Point> points) {
  if (root_.valid()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = points.size();
  const uint32_t pt_per_page = RecordsPerPage<Point>(dev_->page_size());
  if (pt_per_page == 0) return Status::InvalidArgument("page too small");
  region_size_ = opts_.region_size != 0 ? opts_.region_size : pt_per_page;

  uint32_t want = opts_.segment_len != 0
                      ? opts_.segment_len
                      : std::max<uint32_t>(1, FloorLog2(pt_per_page));
  seg_len_ = FitSegmentLen(dev_->page_size(), want, region_size_);

  if (n_ == 0) return Status::OK();

  auto nodes = BuildRegionTree(std::move(points), region_size_);

  // Points pages (descending y) and cache header pages.
  std::vector<PstNodeRec> recs(nodes.size());
  std::vector<int32_t> lefts(nodes.size()), rights(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    // Points pages pack on y (format v3): the descend scan's stop key.
    auto info = BuildBlockList<Point>(
        dev_, std::span<const Point>(nodes[i].pts), offsetof(Point, y));
    if (!info.ok()) return info.status();
    for (PageId p : info.value().pages) owned_pages_.push_back(p);
    storage_.points += info.value().pages.size();

    PstNodeRec& r = recs[i];
    r.split_x = nodes[i].split_x;
    r.split_id = nodes[i].split_id;
    r.y_min = nodes[i].y_min;
    r.points_page = info.value().ref.head;
    r.count = static_cast<uint32_t>(nodes[i].pts.size());
    r.depth = nodes[i].depth;
    lefts[i] = nodes[i].left;
    rights[i] = nodes[i].right;

    if (opts_.enable_path_caching) {
      auto cp = dev_->Allocate();
      if (!cp.ok()) return cp.status();
      r.cache_page = cp.value();
      owned_pages_.push_back(cp.value());
      ++storage_.cache_headers;
    }
  }

  auto tree = WriteSkeletalTree<PstNodeRec>(dev_, recs, lefts, rights, 0);
  if (!tree.ok()) return tree.status();
  root_ = tree.value().root;
  storage_.skeletal = tree.value().pages;
  {
    std::unordered_set<PageId> seen;
    for (const NodeRef& ref : tree.value().refs) {
      if (ref.valid() && seen.insert(ref.page).second) {
        owned_pages_.push_back(ref.page);
      }
    }
  }
  if (!opts_.enable_path_caching) return Status::OK();

  // Build each node's A/S cache over its segment-local path prefix.
  const auto& refs = tree.value().refs;
  std::vector<int32_t> chain;  // root-to-current node indices
  struct Frame {
    int32_t idx;
    uint8_t stage;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.stage == 0) {
      f.stage = 1;
      chain.push_back(f.idx);
      const int32_t v = f.idx;
      const uint32_t d = nodes[v].depth;
      const uint32_t seg_start = (d / seg_len_) * seg_len_;

      NodeCache cache;
      std::vector<SrcPoint> a_recs, s_recs;
      for (uint32_t j = seg_start; j <= d; ++j) {
        const int32_t u = chain[j];
        const uint32_t ord = static_cast<uint32_t>(cache.ancs.size());
        for (const Point& p : nodes[u].pts) {
          a_recs.push_back(SrcPoint::From(p, ord));
        }
        cache.ancs.push_back(AncInfo{
            kInvalidPageId, static_cast<uint32_t>(nodes[u].pts.size()),
            static_cast<uint32_t>(nodes[u].pts.size())});
      }
      for (uint32_t j = std::max<uint32_t>(1, seg_start); j <= d; ++j) {
        const int32_t u = chain[j];
        const int32_t parent = chain[j - 1];
        if (nodes[parent].left != u || nodes[parent].right < 0) continue;
        const int32_t sib = nodes[parent].right;
        const uint32_t ord = static_cast<uint32_t>(cache.sibs.size());
        for (const Point& p : nodes[sib].pts) {
          s_recs.push_back(SrcPoint::From(p, ord));
        }
        cache.sibs.push_back(SibInfo{
            nodes[sib].left >= 0 ? refs[nodes[sib].left] : kNullNodeRef,
            nodes[sib].right >= 0 ? refs[nodes[sib].right] : kNullNodeRef,
            kInvalidPageId, static_cast<uint32_t>(nodes[sib].pts.size()),
            static_cast<uint32_t>(nodes[sib].pts.size())});
      }
      std::sort(a_recs.begin(), a_recs.end(),
                [](const SrcPoint& a, const SrcPoint& b) {
                  return GreaterByX(a.ToPoint(), b.ToPoint());
                });
      std::sort(s_recs.begin(), s_recs.end(),
                [](const SrcPoint& a, const SrcPoint& b) {
                  return GreaterByY(a.ToPoint(), b.ToPoint());
                });
      // A-lists scan on x, S-lists on y: each packs its own scan key.
      auto a_info = BuildBlockList<SrcPoint>(
          dev_, std::span<const SrcPoint>(a_recs), offsetof(SrcPoint, x));
      if (!a_info.ok()) return a_info.status();
      auto s_info = BuildBlockList<SrcPoint>(
          dev_, std::span<const SrcPoint>(s_recs), offsetof(SrcPoint, y));
      if (!s_info.ok()) return s_info.status();
      cache.a_pages = a_info.value().pages;
      cache.s_pages = s_info.value().pages;
      cache.a_count = a_recs.size();
      cache.s_count = s_recs.size();
      // Tail keys let queries pre-compute exactly which prefix of each list
      // their early-stopping scan will touch (see NodeCache).
      const uint32_t per_pg = RecordsPerPage<SrcPoint>(dev_->page_size());
      for (size_t pg = 0; pg < cache.a_pages.size(); ++pg) {
        const size_t last =
            std::min(a_recs.size(), (pg + 1) * static_cast<size_t>(per_pg));
        cache.a_tails.push_back(a_recs[last - 1].x);
      }
      for (size_t pg = 0; pg < cache.s_pages.size(); ++pg) {
        const size_t last =
            std::min(s_recs.size(), (pg + 1) * static_cast<size_t>(per_pg));
        cache.s_tails.push_back(s_recs[last - 1].y);
      }
      storage_.cache_blocks += cache.a_pages.size() + cache.s_pages.size();
      for (PageId p : cache.a_pages) owned_pages_.push_back(p);
      for (PageId p : cache.s_pages) owned_pages_.push_back(p);
      PC_RETURN_IF_ERROR(WriteCacheHeader(dev_, recs[v].cache_page, cache));

      // Push children (right first so left is processed first).
      if (nodes[v].right >= 0) stack.push_back({nodes[v].right, 0});
      if (nodes[v].left >= 0) {
        // Insertion may have invalidated f; re-fetch via index arithmetic.
        stack.push_back({nodes[v].left, 0});
      }
    } else {
      chain.pop_back();
      stack.pop_back();
    }
  }
  return Status::OK();
}

Status ExternalPst::ReadPointsPage(PageId page, std::vector<Point>* out) const {
  PageId next;
  return ReadPointBlock(dev_, page, out, &next);
}

Status ExternalPst::DescendToCorner(
    const TwoSidedQuery& q, std::vector<PathEnt>* path,
    SkeletalTreeReader<PstNodeRec>* reader) const {
  const uint64_t limit = SkeletalWalkLimit<PstNodeRec>(dev_);
  uint64_t steps = 0;
  NodeRef cur = root_;
  for (;;) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    PathEnt ent;
    ent.ref = cur;
    PC_RETURN_IF_ERROR(reader->Read(cur, &ent.rec));
    path->push_back(ent);
    // Corner: the first node whose y-band contains q.y_min, i.e., whose
    // lowest stored y falls below the query's bottom edge.
    if (q.y_min > ent.rec.y_min) break;
    NodeRef next =
        (q.x_min <= ent.rec.split_x) ? ent.rec.left : ent.rec.right;
    if (!next.valid()) break;
    cur = next;
  }
  return Status::OK();
}

Status ExternalPst::QueryTwoSided(const TwoSidedQuery& q,
                                  std::vector<Point>* out,
                                  QueryStats* stats) const {
  if (!root_.valid()) return Status::OK();
  SkeletalTreeReader<PstNodeRec> reader(dev_);
  std::vector<PathEnt> path;
  PC_RETURN_IF_ERROR(DescendToCorner(q, &path, &reader));
  Bump(stats, &QueryStats::navigation, reader.pages_read());
  Bump(stats, &QueryStats::wasteful, reader.pages_read());

  Status s = opts_.enable_path_caching
                 ? QueryWithCaches(q, path, &reader, out, stats)
                 : QueryUncached(q, path, &reader, out, stats);
  if (stats != nullptr) stats->records_reported = out->size();
  return s;
}

Status ExternalPst::QueryWithCaches(const TwoSidedQuery& q,
                                    const std::vector<PathEnt>& path,
                                    SkeletalTreeReader<PstNodeRec>* reader,
                                    std::vector<Point>* out,
                                    QueryStats* stats) const {
  const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());
  const size_t corner = path.size() - 1;
  std::vector<size_t> cache_nodes;
  for (size_t i = 0; i < corner; ++i) {
    if (i % seg_len_ == seg_len_ - 1) cache_nodes.push_back(i);
  }
  cache_nodes.push_back(corner);

  std::vector<NodeRef> descend_todo;
  for (size_t ci : cache_nodes) {
    NodeCache cache;
    PC_RETURN_IF_ERROR(
        ReadCacheHeader(dev_, path[ci].rec.cache_page, &cache));
    Bump(stats, &QueryStats::cache);
    Bump(stats, &QueryStats::wasteful);

    // A-list: descending x; stop at the first record right of nothing.
    // When tail keys are stored, the page where the stop lands is known
    // up front — the first page whose tail (its minimum x) drops below
    // q.x_min — so that exact prefix is fetched batched.  Per-page
    // accounting and the record filter are identical either way.
    bool stop = false;
    auto scan_a_page = [&](std::span<const SrcPoint> recs) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      // Find the stop record (first x < x_min) in one vectorized pass, then
      // filter the prefix before it; identical record-for-record to the old
      // per-record stop branch on any page contents, sorted or not.
      const size_t limit =
          recs.empty() ? 0
                       : kernels::FindFirstBelow(&recs[0].x, sizeof(SrcPoint),
                                                 recs.size(), q.x_min);
      if (limit < recs.size()) stop = true;
      for (const SrcPoint& sp : recs.first(limit)) {
        if (sp.y >= q.y_min) {
          out->push_back(sp.ToPoint());
          ++qual;
        }
      }
      Classify(stats, qual, src_cap);
    };
    // v3 packed pages: the stop probe runs over the dense key array (8 keys
    // per cache line) and qualifying records are reassembled field-wise —
    // same records, same stop, same accounting as scan_a_page.
    auto scan_a_packed = [&](const PackedPageView<SrcPoint>& v) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      const size_t limit =
          kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q.x_min);
      if (limit < v.count) stop = true;
      for (size_t i = 0; i < limit; ++i) {
        const int64_t y = v.I64Field(i, offsetof(SrcPoint, y));
        if (y >= q.y_min) {
          out->push_back(
              Point{v.keys[i], y, v.U64Field(i, offsetof(SrcPoint, id))});
          ++qual;
        }
      }
      Classify(stats, qual, src_cap);
    };
    if (opts_.enable_readahead &&
        cache.a_tails.size() == cache.a_pages.size()) {
      const size_t n_tails = cache.a_tails.size();
      const size_t hit = kernels::FindFirstBelow(
          cache.a_tails.data(), sizeof(int64_t), n_tails, q.x_min);
      const size_t prefix = hit == n_tails ? n_tails : hit + 1;
      BlockListCursor<SrcPoint> cur(
          dev_, std::span<const PageId>(cache.a_pages.data(), prefix));
      std::vector<SrcPoint> recs;
      while (!cur.done()) {
        const std::byte* page = nullptr;
        BlockPageHeader bh;
        PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
        if (codec::IsPacked(bh.count) &&
            codec::KeyOffset(bh.count) == offsetof(SrcPoint, x)) {
          scan_a_packed(PackedPageView<SrcPoint>::From(page, bh));
        } else {
          recs.clear();
          AppendBlockRecords(page, bh, &recs);
          scan_a_page(recs);
        }
      }
    } else {
      // Page-at-a-time early-stopping scan, filtered in place (zero-copy on
      // pinning devices).
      BlockPageView<SrcPoint> view;
      for (PageId p : cache.a_pages) {
        if (stop) break;
        PC_RETURN_IF_ERROR(view.Load(dev_, p));
        if (view.is_packed() && view.key_offset() == offsetof(SrcPoint, x)) {
          scan_a_packed(view.packed());
        } else {
          scan_a_page(view.records());
        }
      }
    }

    // S-list: descending y; stop when below the query's bottom edge.  Same
    // exact-prefix batching, with the tails now being per-page minimum ys.
    std::vector<uint32_t> sib_qual(cache.sibs.size(), 0);
    stop = false;
    bool bad_src = false;
    auto scan_s_page = [&](std::span<const SrcPoint> recs) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      // Same hoisted stop as the A-list, now on y.  The sibling-ordinal
      // check only ever applied to records before the stop record, which is
      // exactly the prefix the kernel hands back.
      const size_t limit =
          recs.empty() ? 0
                       : kernels::FindFirstBelow(&recs[0].y, sizeof(SrcPoint),
                                                 recs.size(), q.y_min);
      if (limit < recs.size()) stop = true;
      for (const SrcPoint& sp : recs.first(limit)) {
        if (sp.src >= sib_qual.size()) {
          bad_src = true;
          stop = true;
          break;
        }
        // x >= q.x_min automatically (right siblings); keep the check as a
        // correctness belt in debug-style defensive fashion.
        if (sp.x >= q.x_min) {
          out->push_back(sp.ToPoint());
          ++qual;
          ++sib_qual[sp.src];
        }
      }
      Classify(stats, qual, src_cap);
    };
    auto scan_s_packed = [&](const PackedPageView<SrcPoint>& v) {
      Bump(stats, &QueryStats::cache);
      uint64_t qual = 0;
      const size_t limit =
          kernels::FindFirstBelow(v.keys, sizeof(int64_t), v.count, q.y_min);
      if (limit < v.count) stop = true;
      for (size_t i = 0; i < limit; ++i) {
        const uint32_t src = v.U32Field(i, offsetof(SrcPoint, src));
        if (src >= sib_qual.size()) {
          bad_src = true;
          stop = true;
          break;
        }
        const int64_t x = v.I64Field(i, offsetof(SrcPoint, x));
        if (x >= q.x_min) {
          out->push_back(
              Point{x, v.keys[i], v.U64Field(i, offsetof(SrcPoint, id))});
          ++qual;
          ++sib_qual[src];
        }
      }
      Classify(stats, qual, src_cap);
    };
    if (opts_.enable_readahead &&
        cache.s_tails.size() == cache.s_pages.size()) {
      const size_t n_tails = cache.s_tails.size();
      const size_t hit = kernels::FindFirstBelow(
          cache.s_tails.data(), sizeof(int64_t), n_tails, q.y_min);
      const size_t prefix = hit == n_tails ? n_tails : hit + 1;
      BlockListCursor<SrcPoint> cur(
          dev_, std::span<const PageId>(cache.s_pages.data(), prefix));
      std::vector<SrcPoint> recs;
      while (!cur.done()) {
        const std::byte* page = nullptr;
        BlockPageHeader bh;
        PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
        if (codec::IsPacked(bh.count) &&
            codec::KeyOffset(bh.count) == offsetof(SrcPoint, y)) {
          scan_s_packed(PackedPageView<SrcPoint>::From(page, bh));
        } else {
          recs.clear();
          AppendBlockRecords(page, bh, &recs);
          scan_s_page(recs);
        }
      }
    } else {
      BlockPageView<SrcPoint> view;
      for (PageId p : cache.s_pages) {
        if (stop) break;
        PC_RETURN_IF_ERROR(view.Load(dev_, p));
        if (view.is_packed() && view.key_offset() == offsetof(SrcPoint, y)) {
          scan_s_packed(view.packed());
        } else {
          scan_s_page(view.records());
        }
      }
    }
    if (bad_src) {
      return Status::Corruption(
          "S-list record names a sibling ordinal beyond the cache's sibling "
          "table");
    }
    for (size_t k = 0; k < cache.sibs.size(); ++k) {
      if (sib_qual[k] == cache.sibs[k].total) {
        if (cache.sibs[k].left.valid()) descend_todo.push_back(cache.sibs[k].left);
        if (cache.sibs[k].right.valid())
          descend_todo.push_back(cache.sibs[k].right);
      }
    }
  }
  return DescendDescendants(q, std::move(descend_todo), reader, out, stats);
}

Status ExternalPst::QueryUncached(const TwoSidedQuery& q,
                                  const std::vector<PathEnt>& path,
                                  SkeletalTreeReader<PstNodeRec>* reader,
                                  std::vector<Point>* out,
                                  QueryStats* stats) const {
  const uint32_t pt_cap = RecordsPerPage<Point>(dev_->page_size());
  std::vector<NodeRef> descend_todo;
  BlockPageView<Point> view;
  // Full filter of one loaded points page; the packed branch reassembles
  // records field-wise instead of decoding the whole page into scratch.
  auto filter_page = [&](uint64_t* qual) {
    if (view.is_packed() && view.key_offset() == offsetof(Point, y)) {
      const PackedPageView<Point> v = view.packed();
      for (size_t i = 0; i < v.count; ++i) {
        const Point p{v.I64Field(i, offsetof(Point, x)), v.keys[i],
                      v.U64Field(i, offsetof(Point, id))};
        if (q.Contains(p)) {
          out->push_back(p);
          ++*qual;
        }
      }
    } else {
      for (const Point& p : view.records()) {
        if (q.Contains(p)) {
          out->push_back(p);
          ++*qual;
        }
      }
    }
    Classify(stats, *qual, pt_cap);
  };
  // Every path node's own block: ancestors plus the corner.
  for (size_t i = 0; i < path.size(); ++i) {
    PC_RETURN_IF_ERROR(view.Load(dev_, path[i].rec.points_page));
    Bump(stats, i + 1 == path.size() ? &QueryStats::corner
                                     : &QueryStats::ancestor);
    uint64_t qual = 0;
    filter_page(&qual);
  }
  // Right siblings of the path.
  uint64_t nav_before = reader->pages_read();
  for (size_t i = 1; i < path.size(); ++i) {
    if (!(path[i - 1].rec.left == path[i].ref)) continue;
    NodeRef sib = path[i - 1].rec.right;
    if (!sib.valid()) continue;
    PstNodeRec rec;
    PC_RETURN_IF_ERROR(reader->Read(sib, &rec));
    PC_RETURN_IF_ERROR(view.Load(dev_, rec.points_page));
    Bump(stats, &QueryStats::sibling);
    uint64_t qual = 0;
    filter_page(&qual);
    if (qual == rec.count) {
      if (rec.left.valid()) descend_todo.push_back(rec.left);
      if (rec.right.valid()) descend_todo.push_back(rec.right);
    }
  }
  Bump(stats, &QueryStats::sibling, reader->pages_read() - nav_before);
  Bump(stats, &QueryStats::wasteful, reader->pages_read() - nav_before);
  return DescendDescendants(q, std::move(descend_todo), reader, out, stats);
}

Status ExternalPst::DescendDescendants(const TwoSidedQuery& q,
                                       std::vector<NodeRef> todo,
                                       SkeletalTreeReader<PstNodeRec>* reader,
                                       std::vector<Point>* out,
                                       QueryStats* stats) const {
  const uint32_t pt_cap = RecordsPerPage<Point>(dev_->page_size());
  const uint64_t limit = SkeletalWalkLimit<PstNodeRec>(dev_);
  uint64_t steps = 0;
  while (!todo.empty()) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    NodeRef ref = todo.back();
    todo.pop_back();
    uint64_t nav_before = reader->pages_read();
    PstNodeRec rec;
    PC_RETURN_IF_ERROR(reader->Read(ref, &rec));
    Bump(stats, &QueryStats::descendant, reader->pages_read() - nav_before);
    Bump(stats, &QueryStats::wasteful, reader->pages_read() - nav_before);

    // Scan the region's y-descending points until one falls below the edge.
    // rec.y_min >= q.y_min means the whole region qualifies on y, so the
    // early stop provably never fires and the chain can be read with
    // batched readahead; otherwise scan page-at-a-time as before.
    uint64_t qual = 0;
    bool all = true;
    if (opts_.enable_readahead && rec.y_min >= q.y_min) {
      BlockListCursor<Point> cur(dev_, rec.points_page);
      cur.EnableChainReadahead();
      std::vector<Point> pts;
      while (!cur.done()) {
        const std::byte* page = nullptr;
        BlockPageHeader bh;
        PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
        Bump(stats, &QueryStats::descendant);
        uint64_t block_qual = 0;
        if (codec::IsPacked(bh.count) &&
            codec::KeyOffset(bh.count) == offsetof(Point, y)) {
          const PackedPageView<Point> v = PackedPageView<Point>::From(page, bh);
          for (size_t i = 0; i < v.count; ++i) {
            const int64_t x = v.I64Field(i, offsetof(Point, x));
            if (x >= q.x_min && v.keys[i] >= q.y_min) {
              out->push_back(
                  Point{x, v.keys[i], v.U64Field(i, offsetof(Point, id))});
              ++block_qual;
            }
          }
        } else {
          pts.clear();
          AppendBlockRecords(page, bh, &pts);
          for (const Point& p : pts) {
            if (p.x >= q.x_min && p.y >= q.y_min) {
              out->push_back(p);
              ++block_qual;
            }
          }
        }
        Classify(stats, block_qual, pt_cap);
        qual += block_qual;
      }
    } else {
      BlockPageView<Point> view;
      PageId page = rec.points_page;
      uint64_t walked = 0;
      while (page != kInvalidPageId && all) {
        PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
        PC_RETURN_IF_ERROR(view.Load(dev_, page));
        Bump(stats, &QueryStats::descendant);
        uint64_t block_qual = 0;
        if (view.is_packed() && view.key_offset() == offsetof(Point, y)) {
          // Stop probe over the dense y array, then reassemble the prefix.
          const PackedPageView<Point> v = view.packed();
          const size_t lim = kernels::FindFirstBelow(v.keys, sizeof(int64_t),
                                                     v.count, q.y_min);
          if (lim < v.count) all = false;
          for (size_t i = 0; i < lim; ++i) {
            const int64_t x = v.I64Field(i, offsetof(Point, x));
            if (x >= q.x_min) {
              out->push_back(
                  Point{x, v.keys[i], v.U64Field(i, offsetof(Point, id))});
              ++block_qual;
            }
          }
        } else {
          const auto recs = view.records();
          const size_t lim =
              recs.empty() ? 0
                           : kernels::FindFirstBelow(&recs[0].y, sizeof(Point),
                                                     recs.size(), q.y_min);
          if (lim < recs.size()) all = false;
          for (const Point& p : recs.first(lim)) {
            if (p.x >= q.x_min) {
              out->push_back(p);
              ++block_qual;
            }
          }
        }
        Classify(stats, block_qual, pt_cap);
        qual += block_qual;
        page = view.next();
      }
    }
    if (all && qual == rec.count) {
      if (rec.left.valid()) todo.push_back(rec.left);
      if (rec.right.valid()) todo.push_back(rec.right);
    }
  }
  return Status::OK();
}

Status ExternalPst::Destroy() {
  for (PageId p : owned_pages_) PC_RETURN_IF_ERROR(dev_->Free(p));
  owned_pages_.clear();
  root_ = kNullNodeRef;
  n_ = 0;
  storage_ = StorageBreakdown{};
  return Status::OK();
}

}  // namespace pathcache

namespace pathcache {

Result<PageId> ExternalPst::Save() {
  auto list =
      BuildBlockList<PageId>(dev_, std::span<const PageId>(owned_pages_));
  if (!list.ok()) return list.status();
  auto mp = dev_->Allocate();
  if (!mp.ok()) return mp.status();

  PstManifestHeader hdr;
  hdr.magic = kExternalPstMagic;
  hdr.n = n_;
  hdr.root = root_;
  hdr.region_size = region_size_;
  hdr.seg_len = seg_len_;
  hdr.caching = opts_.enable_path_caching ? 1 : 0;
  hdr.skeletal = storage_.skeletal;
  hdr.points_pages = storage_.points;
  hdr.cache_headers = storage_.cache_headers;
  hdr.cache_blocks = storage_.cache_blocks;
  hdr.owned_head = list.value().ref.head;
  hdr.owned_count = owned_pages_.size();
  PC_RETURN_IF_ERROR(internal::WriteManifestHeader(dev_, mp.value(), hdr));

  // The manifest chain joins the owned set of this handle, so Destroy()
  // from here also reclaims it.
  owned_pages_.push_back(mp.value());
  for (PageId p : list.value().pages) owned_pages_.push_back(p);
  return mp.value();
}

Status ExternalPst::Open(PageId manifest) {
  if (root_.valid() || !owned_pages_.empty()) {
    return Status::FailedPrecondition("Open on a non-empty structure");
  }
  PstManifestHeader hdr;
  std::vector<PageId> owned, chain;
  PC_RETURN_IF_ERROR(internal::ReadManifest(dev_, manifest, kExternalPstMagic,
                                            &hdr, &owned, nullptr, &chain));
  n_ = hdr.n;
  root_ = hdr.root;
  region_size_ = hdr.region_size;
  seg_len_ = hdr.seg_len;
  opts_.enable_path_caching = hdr.caching != 0;
  storage_ = StorageBreakdown{};
  storage_.skeletal = hdr.skeletal;
  storage_.points = hdr.points_pages;
  storage_.cache_headers = hdr.cache_headers;
  storage_.cache_blocks = hdr.cache_blocks;
  owned_pages_ = std::move(owned);
  for (PageId p : chain) owned_pages_.push_back(p);
  return Status::OK();
}

Status ExternalPst::Cluster() {
  if (!root_.valid()) return Status::OK();

  std::vector<PageTreeNode> ptree;
  PC_RETURN_IF_ERROR(
      CollectSkeletalPageTree<PstNodeRec>(dev_, root_, &ptree));
  const std::vector<uint32_t> veb = VanEmdeBoasOrder(ptree, 0);

  // Pass 1: skeletal pages in van Emde Boas order, every per-slot PageId
  // (child refs, points chain head, cache header) registered for rewrite.
  LayoutPlan plan;
  std::vector<std::byte> buf(dev_->page_size());
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    plan.Add(pid);
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      const uint32_t base =
          static_cast<uint32_t>(sizeof(hdr) + s * sizeof(PstNodeRec));
      plan.AddRef(pid, base + offsetof(PstNodeRec, left) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(PstNodeRec, right) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(PstNodeRec, points_page));
      plan.AddRef(pid, base + offsetof(PstNodeRec, cache_page));
    }
  }

  // Pass 2: each node's cluster — cache header, A chain, S chain, points
  // chain — appended in descent order (vEB page order, slot order within a
  // page), so what one query touches sits together.
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      PstNodeRec rec;
      std::memcpy(&rec, buf.data() + sizeof(hdr) + s * sizeof(PstNodeRec),
                  sizeof(rec));
      if (rec.cache_page != kInvalidPageId) {
        NodeCache cache;
        PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, rec.cache_page, &cache));
        AppendCachePagesToPlan(rec.cache_page, cache, &plan);
      }
      std::vector<PageId> points_chain;
      PC_RETURN_IF_ERROR(
          CollectChainPages(dev_, rec.points_page, &points_chain));
      plan.AddChain(points_chain);
    }
  }

  if (plan.page_count() != owned_pages_.size()) {
    return Status::FailedPrecondition(
        "layout plan covers " + std::to_string(plan.page_count()) +
        " pages but the structure owns " +
        std::to_string(owned_pages_.size()) +
        " — Cluster() must run on a finished build before Save()");
  }
  auto remap = ComputeRemap(plan);
  if (!remap.ok()) return remap.status();
  PC_RETURN_IF_ERROR(ApplyLayout(dev_, plan, remap.value()));
  root_.page = remap.value().Of(root_.page);
  for (PageId& p : owned_pages_) p = remap.value().Of(p);
  return Status::OK();
}

}  // namespace pathcache

namespace pathcache {

Status ExternalPst::CheckStructure() const {
  if (!root_.valid()) {
    return n_ == 0 ? Status::OK()
                   : Status::Corruption("no root for non-empty structure");
  }
  SkeletalTreeReader<PstNodeRec> reader(dev_);
  const uint32_t src_cap = RecordsPerPage<SrcPoint>(dev_->page_size());

  struct Item {
    NodeRef ref;
    uint32_t depth;
    int64_t parent_y_min;  // exclusive upper bound for this subtree's ys
    bool has_x_lo, has_x_hi;
    int64_t x_lo, x_hi;          // composite bounds via (x, id)
    uint64_t x_lo_id, x_hi_id;
  };
  std::vector<Item> stack{{root_, 0, INT64_MAX, false, false, 0, 0, 0, 0}};
  uint64_t total = 0;

  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    PstNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(it.ref, &rec));
    if (rec.depth != it.depth) return Status::Corruption("depth mismatch");

    // Points page: count, descending-(y,id) order, range and heap checks.
    std::vector<Point> pts;
    PC_RETURN_IF_ERROR(ReadPointsPage(rec.points_page, &pts));
    if (pts.size() != rec.count) {
      return Status::Corruption("points page count mismatch");
    }
    if (pts.empty()) return Status::Corruption("empty region node");
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i > 0 && !GreaterByY(pts[i - 1], pts[i])) {
        return Status::Corruption("points not y-descending");
      }
      if (pts[i].y > it.parent_y_min) {
        return Status::Corruption("heap order violated");
      }
      auto key_le = [](int64_t ax, uint64_t aid, int64_t bx, uint64_t bid) {
        if (ax != bx) return ax < bx;
        return aid <= bid;
      };
      if (it.has_x_lo && key_le(pts[i].x, pts[i].id, it.x_lo, it.x_lo_id)) {
        return Status::Corruption("point left of subtree x-range");
      }
      if (it.has_x_hi && !key_le(pts[i].x, pts[i].id, it.x_hi, it.x_hi_id)) {
        return Status::Corruption("point right of subtree x-range");
      }
    }
    if (rec.y_min != pts.back().y) return Status::Corruption("y_min stale");
    total += pts.size();
    const bool internal = rec.left.valid() || rec.right.valid();
    if (internal && pts.size() != region_size_) {
      return Status::Corruption("internal region not full");
    }

    // Cache header: shape and sort order.
    if (opts_.enable_path_caching) {
      if (rec.cache_page == kInvalidPageId) {
        return Status::Corruption("missing cache page");
      }
      NodeCache cache;
      PC_RETURN_IF_ERROR(ReadCacheHeader(dev_, rec.cache_page, &cache));
      const uint32_t seg_start = (rec.depth / seg_len_) * seg_len_;
      if (cache.ancs.size() != rec.depth - seg_start + 1) {
        return Status::Corruption("A-list coverage count mismatch");
      }
      uint64_t a_sum = 0;
      for (const auto& a : cache.ancs) a_sum += a.contributed;
      if (a_sum != cache.a_count) {
        return Status::Corruption("A-list contributed sum mismatch");
      }
      // Full read of the A-list: batched via the page directory.
      std::vector<SrcPoint> a_recs;
      {
        BlockListCursor<SrcPoint> cur(
            dev_, std::span<const PageId>(cache.a_pages));
        while (!cur.done()) PC_RETURN_IF_ERROR(cur.NextBlock(&a_recs));
      }
      if (a_recs.size() != cache.a_count) {
        return Status::Corruption("A-list record count mismatch");
      }
      for (size_t i = 1; i < a_recs.size(); ++i) {
        if (!GreaterByX(a_recs[i - 1].ToPoint(), a_recs[i].ToPoint())) {
          return Status::Corruption("A-list not x-descending");
        }
      }
      // Tail-key trailer, if stored, must match the actual page tails.
      if (!cache.a_tails.empty()) {
        if (cache.a_tails.size() != cache.a_pages.size()) {
          return Status::Corruption("A-list tail directory size mismatch");
        }
        for (size_t pg = 0; pg < cache.a_pages.size(); ++pg) {
          const size_t last = std::min<size_t>(
              a_recs.size(), (pg + 1) * static_cast<size_t>(src_cap));
          if (cache.a_tails[pg] != a_recs[last - 1].x) {
            return Status::Corruption("A-list tail key stale");
          }
        }
      }
    }

    if (rec.left.valid()) {
      Item child = it;
      child.ref = rec.left;
      child.depth = it.depth + 1;
      child.parent_y_min = rec.y_min;
      child.has_x_hi = true;
      child.x_hi = rec.split_x;
      child.x_hi_id = rec.split_id;
      stack.push_back(child);
    }
    if (rec.right.valid()) {
      Item child = it;
      child.ref = rec.right;
      child.depth = it.depth + 1;
      child.parent_y_min = rec.y_min;
      child.has_x_lo = true;
      child.x_lo = rec.split_x;
      child.x_lo_id = rec.split_id;
      stack.push_back(child);
    }
  }
  if (total != n_) return Status::Corruption("total point count mismatch");
  return Status::OK();
}

}  // namespace pathcache
