#include "core/baselines.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "kernels/search.h"

namespace pathcache {

Status XSortedBaseline::Build(std::vector<Point> points) {
  if (n_ != 0 || !pages_.empty()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = points.size();
  if (n_ == 0) return index_.Init();
  std::sort(points.begin(), points.end(), LessByX);
  auto info = BuildBlockList<Point>(dev_, std::span<const Point>(points),
                                    offsetof(Point, x));
  if (!info.ok()) return info.status();
  pages_ = info.value().pages;
  data_ = info.value().ref;

  // Sparse index: first x of each data page -> page id.
  const uint32_t per_page = RecordsPerPage<Point>(dev_->page_size());
  std::vector<BTreeEntry> entries;
  entries.reserve(pages_.size());
  for (size_t i = 0; i < pages_.size(); ++i) {
    entries.push_back(
        BTreeEntry{points[i * per_page].x, static_cast<uint64_t>(pages_[i])});
  }
  // Entries must be strictly sorted; duplicate first-x pages get nudged by
  // their value (page id) via the composite entry order.
  std::sort(entries.begin(), entries.end(), EntryLess);
  return index_.BulkLoad(entries);
}

Status XSortedBaseline::Scan(int64_t x_lo, int64_t x_hi, int64_t y_min,
                             std::vector<Point>* out,
                             QueryStats* stats) const {
  if (n_ == 0) return Status::OK();
  // Find the last data page whose first x is STRICTLY below x_lo; a page
  // opening exactly at x_lo may be preceded by equal-x records at the tail
  // of the previous page.
  PageId start = data_.head;
  if (x_lo != INT64_MIN) {
    bool found = false;
    BTreeEntry floor;
    PC_RETURN_IF_ERROR(
        const_cast<BPlusTree&>(index_).FindFloor(x_lo - 1, &floor, &found));
    if (found) start = static_cast<PageId>(floor.value);
    if (stats != nullptr) {
      stats->navigation += index_.height();
      stats->wasteful += index_.height();
    }
  }

  const uint32_t cap = RecordsPerPage<Point>(dev_->page_size());
  PageId page = start;
  std::vector<std::byte> buf(dev_->page_size());
  std::vector<Point> pts;
  uint64_t walked = 0;
  while (page != kInvalidPageId) {
    PC_RETURN_IF_ERROR(CheckChainStep(walked++, dev_->live_pages()));
    PC_RETURN_IF_ERROR(dev_->Read(page, buf.data()));
    if (stats != nullptr) ++stats->ancestor;
    BlockPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(
        CheckBlockPageHeader(hdr, cap, sizeof(Point), dev_->page_size()));
    uint64_t qual = 0;
    if (codec::IsPacked(hdr.count) &&
        codec::KeyOffset(hdr.count) == offsetof(Point, x)) {
      // v3 packed page: the ascending-x stop probes the dense key array.
      const PackedPageView<Point> v =
          PackedPageView<Point>::From(buf.data(), hdr);
      const size_t lim =
          kernels::FindFirstAbove(v.keys, sizeof(int64_t), v.count, x_hi);
      for (size_t i = 0; i < lim; ++i) {
        const int64_t y = v.I64Field(i, offsetof(Point, y));
        if (v.keys[i] >= x_lo && y >= y_min) {
          out->push_back(
              Point{v.keys[i], y, v.U64Field(i, offsetof(Point, id))});
          ++qual;
        }
      }
      if (lim < v.count) {
        if (stats != nullptr) {
          ++(qual >= cap ? stats->useful : stats->wasteful);
          stats->records_reported = out->size();
        }
        return Status::OK();
      }
    } else {
      pts.clear();
      AppendBlockRecords(buf.data(), hdr, &pts);
      for (const Point& p : pts) {
        if (p.x > x_hi) {
          if (stats != nullptr) {
            ++(qual >= cap ? stats->useful : stats->wasteful);
            stats->records_reported = out->size();
          }
          return Status::OK();
        }
        if (p.x >= x_lo && p.y >= y_min) {
          out->push_back(p);
          ++qual;
        }
      }
    }
    if (stats != nullptr) ++(qual >= cap ? stats->useful : stats->wasteful);
    page = hdr.next;
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return Status::OK();
}

Status XSortedBaseline::QueryTwoSided(const TwoSidedQuery& q,
                                      std::vector<Point>* out,
                                      QueryStats* stats) const {
  return Scan(q.x_min, INT64_MAX, q.y_min, out, stats);
}

Status XSortedBaseline::QueryThreeSided(const ThreeSidedQuery& q,
                                        std::vector<Point>* out,
                                        QueryStats* stats) const {
  return Scan(q.x_min, q.x_max, q.y_min, out, stats);
}

}  // namespace pathcache
