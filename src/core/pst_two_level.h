// The recursive space-reduction scheme of Section 4.
//
// The top-level priority search tree uses fat regions of B*log B points.
// Each region stores its points twice — an X-list (descending x) and a
// Y-list (descending y) — plus A/S caches built from only the FIRST block
// of each segment-local ancestor's X-list / sibling's Y-list, so the whole
// top level costs O(n/B) blocks (Lemma 4.1).  A second-level structure
// (by default the basic path-cached PST of Section 3) indexes each region's
// points for the corner query; its caches cost O(log B * log log B) blocks
// per region, for O((n/B) log log B) total (Lemma 4.2, Theorem 4.3).
//
// Setting `levels > 2` recurses: the second level is another TwoLevelPst
// over regions of B*log log B points and so on, realizing the multilevel
// scheme of Section 4.2 (Theorem 4.4: O((n/B) log* B) space at the price of
// +log* B in the query).

#ifndef PATHCACHE_CORE_PST_TWO_LEVEL_H_
#define PATHCACHE_CORE_PST_TWO_LEVEL_H_

#include <memory>
#include <vector>

#include "core/pst_common.h"
#include "core/query_stats.h"
#include "core/two_sided_index.h"
#include "io/page_device.h"

namespace pathcache {

struct TwoLevelPstOptions {
  /// Total levels of the recursion; 2 is Theorem 4.3, larger values follow
  /// Section 4.2.  Values < 2 are clamped to 2.
  uint32_t levels = 2;
  /// Top-level region size; 0 derives B*log B from the page size (or the
  /// appropriate iterated log for deeper recursion levels).
  uint32_t region_size = 0;
  /// Path-segment length; 0 means floor(log2 B) clamped to fit.
  uint32_t segment_len = 0;
};

/// Skeletal node record of the fat-region (two-level) external PST.
struct TwoLevelNodeRec {
  int64_t split_x = 0;
  uint64_t split_id = 0;
  int64_t y_min = INT64_MAX;
  NodeRef left;
  NodeRef right;
  PageId x_head = kInvalidPageId;  // X-list (descending x)
  PageId y_head = kInvalidPageId;  // Y-list (descending y)
  PageId cache_page = kInvalidPageId;
  uint32_t count = 0;
  uint32_t depth = 0;
  uint32_t region_ord = 0;  // index of this region's second-level structure
  uint32_t pad = 0;
};
static_assert(sizeof(TwoLevelNodeRec) == 96);

class TwoLevelPst : public TwoSidedIndex {
 public:
  explicit TwoLevelPst(PageDevice* dev, TwoLevelPstOptions opts = {});

  Status Build(std::vector<Point> points) override;
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats = nullptr) const override;
  Status Destroy() override;

  /// Serializes the handle (recursively saving the per-region second-level
  /// structures) into a manifest; see ExternalPst::Save for semantics.
  Result<PageId> Save();

  /// Restores a previously Save()d structure into this empty instance.
  Status Open(PageId manifest);

  /// Validates the on-disk structure: X/Y lists hold the same points in the
  /// right orders, heap bands nest, caches cover exactly their segment, and
  /// the second-level sizes sum to n.  O(n/B) I/Os.
  Status CheckStructure() const;

  uint64_t size() const override { return n_; }
  StorageBreakdown storage() const override { return storage_; }
  uint32_t region_size() const { return region_size_; }
  uint32_t segment_len() const { return seg_len_; }
  uint32_t levels() const { return opts_.levels; }

 private:
  struct PathEnt {
    NodeRef ref;
    TwoLevelNodeRec rec;
  };

  Status DescendToCorner(const TwoSidedQuery& q, std::vector<PathEnt>* path,
                         SkeletalTreeReader<TwoLevelNodeRec>* reader) const;
  /// Scans a point list (descending x or y) from `page`, reporting records
  /// inside the query until the sort key crosses its edge; sets *consumed
  /// to the records scanned-and-qualified.
  Status ScanList(const TwoSidedQuery& q, PageId page, bool by_x,
                  uint64_t QueryStats::* role, std::vector<Point>* out,
                  QueryStats* stats, uint64_t* qualified,
                  bool* hit_end) const;

  PageDevice* dev_;
  TwoLevelPstOptions opts_;
  NodeRef root_;
  uint64_t n_ = 0;
  uint32_t region_size_ = 0;
  uint32_t seg_len_ = 1;
  StorageBreakdown storage_;
  std::vector<PageId> owned_pages_;
  std::vector<std::unique_ptr<TwoSidedIndex>> second_;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_PST_TWO_LEVEL_H_
