#include "core/grid_baseline.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "util/mathutil.h"

namespace pathcache {

namespace {

// Directory entries as stored on the directory pages.
struct DirEntry {
  PageId head = kInvalidPageId;
  uint64_t count = 0;
};
static_assert(sizeof(DirEntry) == 16);

}  // namespace

Status GridBaseline::Build(std::vector<Point> points) {
  if (n_ != 0 || !cells_.empty()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = points.size();
  if (n_ == 0) return Status::OK();
  const uint32_t B = RecordsPerPage<Point>(dev_->page_size());

  min_x_ = max_x_ = points[0].x;
  min_y_ = max_y_ = points[0].y;
  for (const auto& p : points) {
    min_x_ = std::min(min_x_, p.x);
    max_x_ = std::max(max_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_y_ = std::max(max_y_, p.y);
  }
  // ~B points per cell on average.
  k_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::sqrt(
             static_cast<double>(n_) / static_cast<double>(B))));

  auto cell_of = [&](const Point& p) -> size_t {
    const double wx = static_cast<double>(max_x_ - min_x_) + 1.0;
    const double wy = static_cast<double>(max_y_ - min_y_) + 1.0;
    uint32_t cx = static_cast<uint32_t>(
        static_cast<double>(p.x - min_x_) / wx * k_);
    uint32_t cy = static_cast<uint32_t>(
        static_cast<double>(p.y - min_y_) / wy * k_);
    cx = std::min(cx, k_ - 1);
    cy = std::min(cy, k_ - 1);
    return static_cast<size_t>(cy) * k_ + cx;
  };

  std::vector<std::vector<Point>> buckets(static_cast<size_t>(k_) * k_);
  for (const auto& p : points) buckets[cell_of(p)].push_back(p);

  cells_.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    auto info =
        BuildBlockList<Point>(dev_, std::span<const Point>(buckets[i]));
    if (!info.ok()) return info.status();
    cells_[i] = CellRef{info.value().ref.head, buckets[i].size()};
  }

  // Serialize the directory.
  std::vector<DirEntry> dir(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    dir[i] = DirEntry{cells_[i].head, cells_[i].count};
  }
  auto di = BuildBlockList<DirEntry>(dev_, std::span<const DirEntry>(dir));
  if (!di.ok()) return di.status();
  dir_pages_ = di.value().pages;
  return Status::OK();
}

Status GridBaseline::ScanCell(const CellRef& cell, const RangeQuery& q,
                              std::vector<Point>* out,
                              QueryStats* stats) const {
  const uint32_t cap = RecordsPerPage<Point>(dev_->page_size());
  PageId page = cell.head;
  std::vector<std::byte> buf(dev_->page_size());
  while (page != kInvalidPageId) {
    PC_RETURN_IF_ERROR(dev_->Read(page, buf.data()));
    if (stats != nullptr) ++stats->descendant;
    BlockPageHeader bh;
    std::memcpy(&bh, buf.data(), sizeof(bh));
    std::vector<Point> pts(bh.count);
    std::memcpy(pts.data(), buf.data() + sizeof(bh),
                bh.count * sizeof(Point));
    uint64_t qual = 0;
    for (const auto& p : pts) {
      if (q.Contains(p)) {
        out->push_back(p);
        ++qual;
      }
    }
    if (stats != nullptr) {
      if (qual >= cap) {
        ++stats->useful;
      } else {
        ++stats->wasteful;
      }
    }
    page = bh.next;
  }
  return Status::OK();
}

Status GridBaseline::QueryRect(const RangeQuery& q, std::vector<Point>* out,
                               QueryStats* stats) const {
  if (n_ == 0) return Status::OK();
  const double wx = static_cast<double>(max_x_ - min_x_) + 1.0;
  const double wy = static_cast<double>(max_y_ - min_y_) + 1.0;
  auto cell_x = [&](int64_t x) -> int64_t {
    if (x <= min_x_) return 0;
    if (x >= max_x_) return k_ - 1;
    return static_cast<int64_t>(static_cast<double>(x - min_x_) / wx * k_);
  };
  auto cell_y = [&](int64_t y) -> int64_t {
    if (y <= min_y_) return 0;
    if (y >= max_y_) return k_ - 1;
    return static_cast<int64_t>(static_cast<double>(y - min_y_) / wy * k_);
  };
  if (q.x_min > max_x_ || q.x_max < min_x_ || q.y_min > max_y_ ||
      q.y_max < min_y_) {
    return Status::OK();
  }
  const int64_t cx0 = cell_x(q.x_min), cx1 = cell_x(q.x_max);
  const int64_t cy0 = cell_y(q.y_min), cy1 = cell_y(q.y_max);

  // Read the directory pages covering the touched cells (counted I/O).
  const uint32_t per_dir = RecordsPerPage<DirEntry>(dev_->page_size());
  std::unordered_set<uint64_t> dir_pages_needed;
  for (int64_t cy = cy0; cy <= cy1; ++cy) {
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      dir_pages_needed.insert((static_cast<uint64_t>(cy) * k_ + cx) /
                              per_dir);
    }
  }
  std::vector<std::byte> buf(dev_->page_size());
  for (uint64_t dpi : dir_pages_needed) {
    PC_RETURN_IF_ERROR(dev_->Read(dir_pages_[dpi], buf.data()));
    if (stats != nullptr) {
      ++stats->navigation;
      ++stats->wasteful;
    }
  }

  for (int64_t cy = cy0; cy <= cy1; ++cy) {
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      const CellRef& cell = cells_[static_cast<size_t>(cy) * k_ + cx];
      if (cell.count == 0) continue;
      PC_RETURN_IF_ERROR(ScanCell(cell, q, out, stats));
    }
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return Status::OK();
}

Status GridBaseline::QueryTwoSided(const TwoSidedQuery& q,
                                   std::vector<Point>* out,
                                   QueryStats* stats) const {
  return QueryRect(RangeQuery{q.x_min, INT64_MAX, q.y_min, INT64_MAX}, out,
                   stats);
}

Status GridBaseline::QueryThreeSided(const ThreeSidedQuery& q,
                                     std::vector<Point>* out,
                                     QueryStats* stats) const {
  return QueryRect(RangeQuery{q.x_min, q.x_max, q.y_min, INT64_MAX}, out,
                   stats);
}

}  // namespace pathcache
