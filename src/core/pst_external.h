// External priority search tree for 2-sided queries — the flat (one-level)
// schemes of Section 3.
//
// With `enable_path_caching = true` this is the structure of Theorem 3.2:
// per-node A-lists and S-lists over log B-length path segments give
// O(log_B n + t/B) query I/Os at O((n/B) log B) blocks of storage.
//
// With `enable_path_caching = false` it degrades to the [IKO] baseline the
// paper improves on: optimal O(n/B) space but O(log_2 n + t/B) query I/Os,
// because every path node and sibling costs its own (possibly underfull)
// block read.

#ifndef PATHCACHE_CORE_PST_EXTERNAL_H_
#define PATHCACHE_CORE_PST_EXTERNAL_H_

#include <utility>
#include <vector>

#include "core/pst_common.h"
#include "core/query_stats.h"
#include "core/region_tree.h"
#include "core/two_sided_index.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

struct ExternalPstOptions {
  /// Off reproduces the [IKO] baseline (no caches built or consulted).
  bool enable_path_caching = true;
  /// Points per region; 0 means one full page of points (the paper's B).
  uint32_t region_size = 0;
  /// Path-segment length; 0 means floor(log2 B) clamped so a worst-case
  /// cache header still fits one page.
  uint32_t segment_len = 0;
  /// Batch provably-consumed list pages into vectored device reads.  Pure
  /// transport optimization: counted I/Os (and results) are identical with
  /// it on or off — tests assert exactly that.
  bool enable_readahead = true;
};

/// Thread-safety contract (shared by all four external structures): Build,
/// Save, Open, Cluster and Destroy mutate and must be externally serialized.
/// Queries are const and perform no lazy mutation, so concurrent queries on
/// DISTINCT instances are always safe, and concurrent queries on the SAME
/// instance are safe iff the underlying PageDevice is itself thread-safe
/// (e.g. SharedBufferPool; MemPageDevice and CountingPageDevice are not).
/// src/serve/QueryEngine builds on this: one handle per worker thread,
/// Open()d over the same manifest through a shared thread-safe pool.
class ExternalPst : public TwoSidedIndex {
 public:
  explicit ExternalPst(PageDevice* dev, ExternalPstOptions opts = {});

  /// Bulk-builds from an arbitrary point set (ids need not be unique for
  /// correctness of queries, but duplicate ids weaken tie-breaking).
  Status Build(std::vector<Point> points) override;

  /// Reports all points with x >= q.x_min && y >= q.y_min.
  Status QueryTwoSided(const TwoSidedQuery& q, std::vector<Point>* out,
                       QueryStats* stats = nullptr) const override;

  /// Frees every page owned by the structure.
  Status Destroy() override;

  /// Serializes the handle into a manifest on the device; returns its page
  /// id, with which Open() on a fresh instance (possibly in another
  /// process, over a reopened FilePageDevice) restores the structure.  The
  /// manifest pages join the owned set: Destroy() — from either instance —
  /// reclaims everything and invalidates the manifest.
  Result<PageId> Save();

  /// Restores a previously Save()d structure into this empty instance.
  Status Open(PageId manifest);

  /// Build-time disk-layout clustering (io/layout.h): relocates the owned
  /// pages so the skeletal pages sit in van Emde Boas order followed by each
  /// node's cluster (cache header, A chain, S chain, points chain) in
  /// descent order, all references rewritten in place.  Queries afterwards
  /// read bit-identical counted I/O but touch far fewer disk neighborhoods.
  /// Call on a finished build BEFORE Save() — the manifest chain is not part
  /// of the page graph, so a saved structure refuses to cluster.  The pass
  /// itself costs build-time device I/O; reset stats before measuring.
  Status Cluster();

  /// Walks the on-disk structure validating every invariant: skeletal
  /// shape, x-partitioning, heap order of the y-bands, point-page sort
  /// order and counts, and cache-header consistency (coverage counts and
  /// sort order of the A/S lists).  O(n/B) I/Os; Corruption on the first
  /// violation.  The disk-level analogue of BPlusTree::CheckInvariants.
  Status CheckStructure() const;

  uint64_t size() const override { return n_; }
  uint32_t region_size() const { return region_size_; }
  uint32_t segment_len() const { return seg_len_; }
  StorageBreakdown storage() const override { return storage_; }
  bool caching_enabled() const { return opts_.enable_path_caching; }
  NodeRef root() const { return root_; }

  /// Transfers page ownership to the caller (used when the structure is
  /// embedded as the second level of a recursive scheme).
  std::vector<PageId> ReleasePages() {
    return std::exchange(owned_pages_, {});
  }

 private:
  struct PathEnt {
    NodeRef ref;
    PstNodeRec rec;
  };

  Status DescendToCorner(const TwoSidedQuery& q, std::vector<PathEnt>* path,
                         SkeletalTreeReader<PstNodeRec>* reader) const;
  Status ReadPointsPage(PageId page, std::vector<Point>* out) const;
  Status QueryWithCaches(const TwoSidedQuery& q,
                         const std::vector<PathEnt>& path,
                         SkeletalTreeReader<PstNodeRec>* reader,
                         std::vector<Point>* out, QueryStats* stats) const;
  Status QueryUncached(const TwoSidedQuery& q, const std::vector<PathEnt>& path,
                       SkeletalTreeReader<PstNodeRec>* reader,
                       std::vector<Point>* out, QueryStats* stats) const;
  Status DescendDescendants(const TwoSidedQuery& q, std::vector<NodeRef> todo,
                            SkeletalTreeReader<PstNodeRec>* reader,
                            std::vector<Point>* out, QueryStats* stats) const;

  PageDevice* dev_;
  ExternalPstOptions opts_;
  NodeRef root_;
  uint64_t n_ = 0;
  uint32_t region_size_ = 0;
  uint32_t seg_len_ = 1;
  StorageBreakdown storage_;
  std::vector<PageId> owned_pages_;  // everything, for Destroy()
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_PST_EXTERNAL_H_
