#include "core/three_sided_dynamic.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "util/mathutil.h"

namespace pathcache {

namespace {

Status ReadBufferPage(PageDevice* dev, PageId page,
                      std::vector<UpdateRec>* out) {
  std::vector<std::byte> buf(dev->page_size());
  PC_RETURN_IF_ERROR(dev->Read(page, buf.data()));
  BlockPageHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  size_t old = out->size();
  out->resize(old + hdr.count);
  std::memcpy(out->data() + old, buf.data() + sizeof(hdr),
              hdr.count * sizeof(UpdateRec));
  return Status::OK();
}

Status WriteBufferPage(PageDevice* dev, PageId page,
                       const std::vector<UpdateRec>& recs) {
  std::vector<std::byte> buf(dev->page_size());
  BlockPageHeader hdr;
  hdr.count = static_cast<uint32_t>(recs.size());
  std::memcpy(buf.data(), &hdr, sizeof(hdr));
  std::memcpy(buf.data() + sizeof(hdr), recs.data(),
              recs.size() * sizeof(UpdateRec));
  return dev->Write(page, buf.data());
}

}  // namespace

DynamicThreeSidedPst::DynamicThreeSidedPst(PageDevice* dev,
                                           DynamicThreeSidedOptions opts)
    : dev_(dev), opts_(opts) {
  buf_cap_ = RecordsPerPage<UpdateRec>(dev_->page_size());
}

Status DynamicThreeSidedPst::Build(std::vector<Point> points) {
  if (image_ != nullptr) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  live_count_ = image_count_ = points.size();
  image_ = std::make_unique<ThreeSidedPst>(dev_, ThreeSidedPstOptions{});
  PC_RETURN_IF_ERROR(image_->Build(std::move(points)));
  auto p = dev_->Allocate();
  if (!p.ok()) return p.status();
  buffer_pages_.push_back(p.value());
  return WriteBufferPage(dev_, buffer_pages_.back(), {});
}

Status DynamicThreeSidedPst::Insert(const Point& p) { return Update(p, 0); }
Status DynamicThreeSidedPst::Erase(const Point& p) { return Update(p, 1); }

Status DynamicThreeSidedPst::Update(const Point& p, uint32_t op) {
  if (image_ == nullptr) PC_RETURN_IF_ERROR(Build({}));
  std::vector<UpdateRec> tail;
  PC_RETURN_IF_ERROR(ReadBufferPage(dev_, buffer_pages_.back(), &tail));
  if (tail.size() >= buf_cap_) {
    auto np = dev_->Allocate();
    if (!np.ok()) return np.status();
    buffer_pages_.push_back(np.value());
    tail.clear();
  }
  tail.push_back(UpdateRec{p.x, p.y, p.id, op, next_seq_++});
  PC_RETURN_IF_ERROR(WriteBufferPage(dev_, buffer_pages_.back(), tail));
  ++buffer_count_;
  live_count_ += (op == 0) ? 1 : -1;

  const uint32_t B = RecordsPerPage<Point>(dev_->page_size());
  const uint64_t budget =
      static_cast<uint64_t>(opts_.buffer_pages_per_log) *
      (CeilLogBase(std::max<uint64_t>(image_count_, 2), std::max(B, 2u)) + 1);
  if (buffer_pages_.size() > budget) return Rebuild();
  return Status::OK();
}

Status DynamicThreeSidedPst::ReadPending(std::vector<UpdateRec>* out) const {
  for (PageId page : buffer_pages_) {
    PC_RETURN_IF_ERROR(ReadBufferPage(dev_, page, out));
  }
  return Status::OK();
}

Status DynamicThreeSidedPst::Rebuild() {
  ++rebuilds_;
  std::vector<Point> all;
  PC_RETURN_IF_ERROR(image_->QueryThreeSided(
      ThreeSidedQuery{INT64_MIN, INT64_MAX, INT64_MIN}, &all));
  std::unordered_map<uint64_t, Point> points;
  points.reserve(all.size());
  for (const Point& p : all) points[p.id] = p;
  std::vector<UpdateRec> pending;
  PC_RETURN_IF_ERROR(ReadPending(&pending));
  std::sort(pending.begin(), pending.end(),
            [](const UpdateRec& a, const UpdateRec& b) { return a.seq < b.seq; });
  for (const UpdateRec& rec : pending) {
    if (rec.op == 0) {
      points[rec.id] = rec.ToPoint();
    } else {
      points.erase(rec.id);
    }
  }
  std::vector<Point> fresh;
  fresh.reserve(points.size());
  for (const auto& [id, p] : points) fresh.push_back(p);

  PC_RETURN_IF_ERROR(image_->Destroy());
  image_ = std::make_unique<ThreeSidedPst>(dev_, ThreeSidedPstOptions{});
  PC_RETURN_IF_ERROR(image_->Build(std::move(fresh)));
  image_count_ = points.size();
  while (buffer_pages_.size() > 1) {
    PC_RETURN_IF_ERROR(dev_->Free(buffer_pages_.back()));
    buffer_pages_.pop_back();
  }
  buffer_count_ = 0;
  return WriteBufferPage(dev_, buffer_pages_.back(), {});
}

Status DynamicThreeSidedPst::QueryThreeSided(const ThreeSidedQuery& q,
                                             std::vector<Point>* out,
                                             QueryStats* stats) const {
  if (image_ == nullptr) return Status::OK();
  PC_RETURN_IF_ERROR(image_->QueryThreeSided(q, out, stats));

  std::vector<UpdateRec> pending;
  PC_RETURN_IF_ERROR(ReadPending(&pending));
  if (stats != nullptr) {
    stats->buffer += buffer_pages_.size();
    stats->wasteful += buffer_pages_.size();
  }
  if (!pending.empty()) {
    std::sort(pending.begin(), pending.end(),
              [](const UpdateRec& a, const UpdateRec& b) {
                return a.seq < b.seq;
              });
    std::unordered_map<uint64_t, Point> added;
    std::unordered_set<uint64_t> removed;
    for (const UpdateRec& rec : pending) {
      if (rec.op == 0) {
        if (q.Contains(rec.ToPoint())) added[rec.id] = rec.ToPoint();
      } else {
        added.erase(rec.id);
        removed.insert(rec.id);
      }
    }
    if (!removed.empty()) {
      std::erase_if(*out, [&](const Point& p) {
        return removed.find(p.id) != removed.end();
      });
    }
    for (const auto& [id, p] : added) out->push_back(p);
  }
  if (stats != nullptr) stats->records_reported = out->size();
  return Status::OK();
}

Status DynamicThreeSidedPst::Destroy() {
  if (image_ != nullptr) {
    PC_RETURN_IF_ERROR(image_->Destroy());
    image_.reset();
  }
  for (PageId p : buffer_pages_) PC_RETURN_IF_ERROR(dev_->Free(p));
  buffer_pages_.clear();
  buffer_count_ = 0;
  live_count_ = 0;
  image_count_ = 0;
  return Status::OK();
}

StorageBreakdown DynamicThreeSidedPst::storage() const {
  StorageBreakdown s;
  if (image_ != nullptr) s = image_->storage();
  s.cache_headers += buffer_pages_.size();
  return s;
}

}  // namespace pathcache
