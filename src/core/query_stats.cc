#include "core/query_stats.h"

namespace pathcache {

std::string QueryStats::ToString() const {
  std::string s;
  s += "reads=" + std::to_string(total_reads());
  s += " nav=" + std::to_string(navigation);
  s += " cache=" + std::to_string(cache);
  s += " corner=" + std::to_string(corner);
  s += " anc=" + std::to_string(ancestor);
  s += " sib=" + std::to_string(sibling);
  s += " desc=" + std::to_string(descendant);
  s += " buf=" + std::to_string(buffer);
  s += " useful=" + std::to_string(useful);
  s += " wasteful=" + std::to_string(wasteful);
  s += " t=" + std::to_string(records_reported);
  return s;
}

}  // namespace pathcache
