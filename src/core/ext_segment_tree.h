// External segment tree with path caching — Section 2 of the paper
// (Theorem 3.4): stabbing queries in O(log_B n + t/B) I/Os using
// O((n/B) log n) blocks of storage.
//
// The tree is built over FAT SLABS of ~B endpoints (the paper's first
// optimization: O(n/B) leaves, so per-leaf caches are affordable), blocked
// into a skeletal B-tree (Figure 2).  An interval that covers a node's slab
// but not its parent's goes to that node's blocked cover-list; an interval
// that only partially overlaps a fat leaf has an endpoint strictly inside
// it and goes to the leaf's END-LIST — at most ~B distinct intervals under
// the paper's distinct-endpoint assumption, i.e. O(1) blocks filtered in
// memory.  Because allocation nodes are pairwise incomparable, at most one
// allocation node of an interval lies on any root-to-leaf path, so nothing
// is ever reported twice.
//
// Underfull cover-lists on a path would each cost a wasteful I/O
// (Figure 3).  Path caching coalesces them: every page root w (and every
// fat leaf) carries a cache C(w) with copies of the underfull cover-lists
// of w and of w's ancestors strictly inside the parent page; every interval
// in C(w) covers w's slab, so the whole cache is output for any query
// descending through w.  Cover-lists of >= B intervals are read directly —
// all but the last block return B results.
//
// `enable_path_caching = false` reproduces the naive blocked segment tree
// ([BlGb]-style): every nonempty cover-list on the path is read directly,
// costing O(log_2 n + t/B) I/Os.

#ifndef PATHCACHE_CORE_EXT_SEGMENT_TREE_H_
#define PATHCACHE_CORE_EXT_SEGMENT_TREE_H_

#include <vector>

#include "core/pst_common.h"
#include "core/query_stats.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

struct ExtSegmentTreeOptions {
  bool enable_path_caching = true;
  /// Batch full-chain list reads into vectored device reads.  Pure
  /// transport optimization: counted I/Os and results are unchanged.
  bool enable_readahead = true;
};

/// Skeletal node record of the external segment tree.
struct SegNodeRec {
  int64_t lo = 0;  // slab [lo, hi)
  int64_t hi = 0;
  int64_t split = 0;  // left child covers [lo, split), right [split, hi)
  NodeRef left;
  NodeRef right;
  PageId cover_head = kInvalidPageId;  // blocked cover-list
  PageId cache_page = kInvalidPageId;  // C(w); page roots and fat leaves
  PageId end_page = kInvalidPageId;    // fat-leaf end-list
  uint32_t cover_count = 0;
  uint32_t is_leaf = 0;
};
static_assert(sizeof(SegNodeRec) == 88);

/// Thread-safety: mutators (Build/Save/Open/Cluster/Destroy) require
/// external serialization.  Stab is const with no lazy mutation: concurrent
/// queries on distinct instances are safe; on the same instance they are
/// safe iff the PageDevice is thread-safe (see the contract note on
/// ExternalPst in pst_external.h).
class ExtSegmentTree {
 public:
  explicit ExtSegmentTree(PageDevice* dev, ExtSegmentTreeOptions opts = {});

  Status Build(std::vector<Interval> intervals);

  /// Reports every interval containing q.
  Status Stab(int64_t q, std::vector<Interval>* out,
              QueryStats* stats = nullptr) const;

  Status Destroy();

  /// Serializes the handle into a manifest page (kExtSegTreeMagic; the
  /// stored-copies count rides in the header's aux field); Open() on a
  /// fresh instance restores it.  The manifest chain joins the owned set.
  Result<PageId> Save();

  /// Restores a previously Save()d structure into this empty instance.
  Status Open(PageId manifest);

  /// Build-time disk-layout clustering (io/layout.h): skeletal pages in van
  /// Emde Boas order, then per node the cache, cover and end-list chains in
  /// descent order.  Counted logical I/O is bit-identical before and after.
  /// Call on a finished build BEFORE Save().
  Status Cluster();

  /// Exhaustively validates every on-disk invariant: slab nesting against
  /// the parent splits, cover-lists that cover their slab but not the
  /// parent's, end-lists that partially overlap their fat leaf, caches that
  /// hold exactly the in-scope underfull cover-lists, and the stored-copies
  /// total.  Corruption on the first violation; the fsck hook behind
  /// VerifyStore.
  Status CheckStructure() const;

  uint64_t size() const { return n_; }
  StorageBreakdown storage() const { return storage_; }
  bool caching_enabled() const { return opts_.enable_path_caching; }

  /// Total interval copies across all cover-lists (the n log n term).
  uint64_t stored_copies() const { return stored_copies_; }

 private:
  Status ReadIntervalList(PageId head, uint64_t QueryStats::* role,
                          int64_t q, std::vector<Interval>* out,
                          QueryStats* stats) const;

  PageDevice* dev_;
  ExtSegmentTreeOptions opts_;
  NodeRef root_;
  uint64_t n_ = 0;
  uint64_t stored_copies_ = 0;
  StorageBreakdown storage_;
  std::vector<PageId> owned_pages_;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_EXT_SEGMENT_TREE_H_
