// On-disk formats shared by the external priority-search-tree variants.
//
// Terminology (Sections 3-4 of the paper):
//  * A-list: cache of the points of a node's segment-local ancestors, sorted
//    right-to-left (descending x).  Ancestor points automatically satisfy the
//    y-constraint of a query whose corner is at/below the node, so scanning
//    the A-list until x drops below the query edge reports them with at most
//    one wasteful I/O.
//  * S-list: cache of the points of the right siblings hanging off the
//    segment-local path, sorted top-to-bottom (descending y) and tagged with
//    their source sibling so the query can tell when a sibling was consumed
//    entirely (the signal to descend into its children).
//  * Path segments: the root-to-node path is cut into pieces of `seg_len`
//    (~log2 B) nodes; every node caches only its segment-local prefix, and a
//    query reads one cache per segment — O(log_B n) caches total.

#ifndef PATHCACHE_CORE_PST_COMMON_H_
#define PATHCACHE_CORE_PST_COMMON_H_

#include <vector>

#include "core/skeletal.h"
#include "io/block_list.h"
#include "io/layout.h"
#include "util/geometry.h"

namespace pathcache {

/// A cached point tagged with the ordinal of its source node within the
/// cache's directory.
struct SrcPoint {
  int64_t x = 0;
  int64_t y = 0;
  uint64_t id = 0;
  uint32_t src = 0;
  uint32_t pad = 0;

  Point ToPoint() const { return Point{x, y, id}; }
  static SrcPoint From(const Point& p, uint32_t src_ordinal) {
    return SrcPoint{p.x, p.y, p.id, src_ordinal, 0};
  }
};
static_assert(sizeof(SrcPoint) == 32);

/// Directory entry for one ancestor covered by an A-list (two-level scheme:
/// the cache holds only the ancestor's first X-block, and `x_next` continues
/// into the rest of its X-list).
struct AncInfo {
  PageId x_next = kInvalidPageId;  // X-list continuation (invalid if none)
  uint32_t contributed = 0;        // points of this ancestor in the A-list
  uint32_t total = 0;              // total points stored at the ancestor
};
static_assert(sizeof(AncInfo) == 16);

/// Directory entry for one sibling covered by an S-list.
struct SibInfo {
  NodeRef left;                    // children of the sibling region
  NodeRef right;
  PageId y_next = kInvalidPageId;  // Y-list continuation (two-level scheme)
  uint32_t contributed = 0;        // points of this sibling in the S-list
  uint32_t total = 0;              // total points stored at the sibling
};
static_assert(sizeof(SibInfo) == 48);

/// Fixed-size prefix of a cache header page; the variable arrays follow it
/// back to back: PageId a_pages[], PageId s_pages[], AncInfo[], SibInfo[].
struct CachePageHeader {
  uint32_t a_pages = 0;
  uint32_t s_pages = 0;
  uint32_t anc_count = 0;
  uint32_t sib_count = 0;
  uint64_t a_count = 0;  // records across the A blocks
  uint64_t s_count = 0;  // records across the S blocks
};
static_assert(sizeof(CachePageHeader) == 32);

/// In-memory form of a node's cache, (de)serialized to one header page plus
/// BlockLists for the A and S record streams.
///
/// `a_tails` / `s_tails` hold the sort key of the LAST record of each A/S
/// page (descending x for A, descending y for S).  A scan that stops at
/// `key < bound` therefore ends in the first page whose tail key is below
/// the bound, so the exact set of pages it will touch is computable before
/// issuing any I/O — that is what lets the query batch its cache reads
/// without ever reading a page the sequential scan would not have.  The
/// tails are an optional trailer on the header page (see WriteCacheHeader);
/// when absent after a read, the vectors are empty and callers fall back to
/// page-at-a-time scanning.
struct NodeCache {
  std::vector<PageId> a_pages;
  std::vector<PageId> s_pages;
  std::vector<AncInfo> ancs;
  std::vector<SibInfo> sibs;
  std::vector<int64_t> a_tails;
  std::vector<int64_t> s_tails;
  uint64_t a_count = 0;
  uint64_t s_count = 0;
};

/// Marker preceding the optional tail-key trailer on a cache header page.
/// Pages are zero-initialized, so a pre-trailer header can never alias it.
inline constexpr uint64_t kCacheTailMagic = 0x5043'5441'494C'5331ULL;

/// Serializes `cache` into the (already allocated) header page.
Status WriteCacheHeader(PageDevice* dev, PageId page, const NodeCache& cache);

/// Reads a cache header page back.
Status ReadCacheHeader(PageDevice* dev, PageId page, NodeCache* out);

/// Registers a cache header page and its A/S chains in a layout plan:
/// appends [header, A chain, S chain] to the plan's order and registers
/// every PageId slot the header page stores (the A/S page directories, the
/// ancestors' X-list continuations, the siblings' child NodeRefs and Y-list
/// continuations), so ApplyLayout can relocate and rewrite the whole
/// cluster.  `cache` must be the header's current contents.
void AppendCachePagesToPlan(PageId header_page, const NodeCache& cache,
                            LayoutPlan* plan);

/// Bytes the header page needs for the given shape.
uint64_t CacheHeaderBytes(uint32_t a_pages, uint32_t s_pages,
                          uint32_t anc_count, uint32_t sib_count);

/// Largest segment length s <= want such that a worst-case cache header
/// (s+1 ancestors and s siblings contributing up to `max_contrib_per_node`
/// cached records each) fits one page.  Returns at least 1.
uint32_t FitSegmentLen(uint32_t page_size, uint32_t want,
                       uint32_t max_contrib_per_node);

/// Skeletal node record of the flat (one-level) external PST.
struct PstNodeRec {
  int64_t split_x = 0;
  uint64_t split_id = 0;
  int64_t y_min = INT64_MAX;
  NodeRef left;
  NodeRef right;
  PageId points_page = kInvalidPageId;  // region points, descending y
  PageId cache_page = kInvalidPageId;   // invalid when caching is off
  uint32_t count = 0;
  uint32_t depth = 0;
};
static_assert(sizeof(PstNodeRec) == 80);

/// On-disk manifest shared by the persistable structures: Save() writes one
/// of these plus a chained list of the owned pages (and, for recursive
/// structures, a chained list of child manifest ids); Open() restores the
/// in-memory handle from it.  The magic doubles as the type tag for
/// polymorphic reopening.
inline constexpr uint64_t kExternalPstMagic = 0x31545350'43500001ULL;
inline constexpr uint64_t kTwoLevelPstMagic = 0x32545350'43500002ULL;
inline constexpr uint64_t kThreeSidedPstMagic = 0x33545350'43500003ULL;
inline constexpr uint64_t kExtSegTreeMagic = 0x34545350'43500004ULL;
inline constexpr uint64_t kExtIntTreeMagic = 0x35545350'43500005ULL;

/// Manifest format history.  Version 1 (implicit: the field reads 0 from
/// pre-versioning manifests, accepted as 1) is the original layout; version
/// 2 adds the trailing `format_version` itself and blesses stores written
/// through a ChecksumPageDevice (the header layout is unchanged — page
/// payloads just shrink by the checksum trailer); version 3 stamps
/// `header_crc` (CRC32C over the header bytes with that field zeroed) so a
/// single flipped bit anywhere in the header — including fields no open
/// path interprets, like the storage breakdown — degrades to Corruption
/// instead of a silently wrong handle; version 4 marks stores whose block
/// pages may use the packed (deinterleaved) page format v3 of
/// io/page_codec.h — each block page self-describes via its count word, so
/// readers need no per-store flag, and version-3 stores (all-interleaved)
/// open unchanged.  Readers verify the CRC on every manifest (all extant
/// stores are written by this code), accept any version <= current, and
/// reject newer ones with Corruption instead of misparsing pages from a
/// future writer.
inline constexpr uint32_t kManifestFormatVersion = 4;

struct PstManifestHeader {
  uint64_t magic = 0;
  uint64_t n = 0;
  NodeRef root;
  uint32_t region_size = 0;
  uint32_t seg_len = 0;
  uint32_t caching = 1;
  uint32_t levels = 0;
  uint64_t skeletal = 0;
  uint64_t points_pages = 0;
  uint64_t cache_headers = 0;
  uint64_t cache_blocks = 0;
  uint64_t second_level = 0;
  PageId owned_head = kInvalidPageId;     // BlockList<PageId> of owned pages
  uint64_t owned_count = 0;
  PageId children_head = kInvalidPageId;  // BlockList<PageId> of manifests
  uint64_t children_count = 0;
  uint64_t aux = 0;  // structure-specific (ExtSegmentTree: stored copies)
  // New fields go below so legacy manifests (zero-filled slack) read 0.
  uint32_t format_version = 0;  // stamped by WriteManifestHeader
  uint32_t header_crc = 0;      // CRC32C of the header, this field as 0
};
static_assert(sizeof(PstManifestHeader) <= 256);
// The CRC is computed over the raw struct bytes, so the layout must stay
// free of implicit padding (whose value memcpy would not pin down).
static_assert(sizeof(PstManifestHeader) == 136);

/// Page accounting for the space-bound experiments (Lemmas 3.1/4.1/4.2).
struct StorageBreakdown {
  uint64_t skeletal = 0;
  uint64_t points = 0;         // region point pages (X+Y lists in 2-level)
  uint64_t cache_headers = 0;
  uint64_t cache_blocks = 0;
  uint64_t second_level = 0;   // two-level scheme only

  uint64_t total() const {
    return skeletal + points + cache_headers + cache_blocks + second_level;
  }
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_PST_COMMON_H_
