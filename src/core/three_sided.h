// External priority search tree for 3-sided queries  [x1,x2] x [y,inf)
// — Theorem 3.3 of the paper.
//
// The paper states the bounds (O(log_B n + t/B) query I/Os at
// O((n/B) log^2 B) blocks) and defers the construction to a full version
// that never appeared; DESIGN.md documents the concrete design used here:
//
//  * Two corner paths are located (for x1 and x2); they share a prefix down
//    to the fork node.  Points of path nodes are served from per-node
//    A-caches holding the segment-local ancestors' points sorted by
//    ASCENDING x with a per-block min-x directory, so one list answers all
//    three ancestor flavors with <= 2 wasteful reads each: left-cut nodes
//    (seek to x1, scan right), right-cut nodes (scan to x2), and
//    shared-prefix nodes (seek to x1, scan to x2).
//  * Inner siblings (children hanging strictly between the two paths) are
//    served from per-node S-caches.  Which siblings are "inner" depends on
//    the fork depth, so each node stores one sibling cache per possible
//    anchor depth in its segment — right-sibling lists for the x1 path and
//    left-sibling lists for the x2 path.  These O(log B) anchored copies of
//    O(log B)-block lists are what the paper's log^2 B space factor buys.
//  * Descendants of inner siblings pay for themselves exactly as in the
//    2-sided case: a region is entered only after its parent contributed a
//    full block of output.
//
// With `enable_path_caching = false` the structure answers queries by
// touching every path node and sibling individually — the [IKO]-style
// baseline with O(log_2 n + t/B) I/Os at optimal O(n/B) space.

#ifndef PATHCACHE_CORE_THREE_SIDED_H_
#define PATHCACHE_CORE_THREE_SIDED_H_

#include <vector>

#include "core/pst_common.h"
#include "core/query_stats.h"
#include "io/page_device.h"
#include "util/geometry.h"

namespace pathcache {

struct ThreeSidedPstOptions {
  bool enable_path_caching = true;
  /// 0 means floor(log2 B), clamped so all headers fit their pages.
  uint32_t segment_len = 0;
  /// Batch provably-consumed list pages into vectored device reads.  Pure
  /// transport optimization: counted I/Os and results are unchanged.
  bool enable_readahead = true;
};

/// Skeletal node record of the 3-sided external PST.
struct Pst3NodeRec {
  int64_t split_x = 0;
  uint64_t split_id = 0;
  int64_t y_min = INT64_MAX;
  NodeRef left;
  NodeRef right;
  PageId points_page = kInvalidPageId;
  PageId a_header = kInvalidPageId;  // ascending-x ancestor cache
  PageId s_index = kInvalidPageId;   // per-anchor sibling cache directory
  uint32_t count = 0;
  uint32_t depth = 0;
};
static_assert(sizeof(Pst3NodeRec) == 88);

/// Thread-safety: mutators (Build/Save/Open/Cluster/Destroy) require
/// external serialization.  QueryThreeSided is const with no lazy mutation:
/// concurrent queries on distinct instances are safe; on the same instance
/// they are safe iff the PageDevice is thread-safe (see the contract note
/// on ExternalPst in pst_external.h).
class ThreeSidedPst {
 public:
  explicit ThreeSidedPst(PageDevice* dev, ThreeSidedPstOptions opts = {});

  Status Build(std::vector<Point> points);

  /// Reports all points with q.x_min <= x <= q.x_max && y >= q.y_min.
  Status QueryThreeSided(const ThreeSidedQuery& q, std::vector<Point>* out,
                         QueryStats* stats = nullptr) const;

  Status Destroy();

  /// Serializes the handle into a manifest page (see PstManifestHeader);
  /// Open() on a fresh instance restores it.  The manifest chain joins the
  /// owned set, so Destroy() from either instance reclaims everything.
  Result<PageId> Save();

  /// Restores a previously Save()d structure into this empty instance.
  Status Open(PageId manifest);

  /// Build-time disk-layout clustering (io/layout.h): skeletal pages in van
  /// Emde Boas order, then per node the A-cache header + chain, the S-index
  /// with its per-anchor sibling caches, and the points chain, in descent
  /// order.  Counted logical I/O is bit-identical before and after.  Call on
  /// a finished build BEFORE Save().
  Status Cluster();

  /// Exhaustively validates every on-disk invariant: skeletal shape (depth,
  /// x-partition, heap order, full internal regions), the ascending-x
  /// A-caches (per-ancestor counts, min/max-x directories), and every
  /// anchored sibling cache (directory refs/counts against the actual
  /// siblings, descending-y order, tail keys).  Corruption on the first
  /// violation; the fsck hook behind VerifyStore.
  Status CheckStructure() const;

  uint64_t size() const { return n_; }
  uint32_t segment_len() const { return seg_len_; }
  StorageBreakdown storage() const { return storage_; }
  bool caching_enabled() const { return opts_.enable_path_caching; }

 private:
  struct PathEnt {
    NodeRef ref;
    Pst3NodeRec rec;
  };

  Status DescendPath(int64_t x, int64_t y_min, bool right_path,
                     std::vector<PathEnt>* path,
                     SkeletalTreeReader<Pst3NodeRec>* reader) const;
  Status ProcessCache(const ThreeSidedQuery& q, const PathEnt& ent,
                      bool right_side, size_t fork,
                      std::vector<NodeRef>* descend_todo,
                      std::vector<Point>* out, QueryStats* stats) const;
  Status QueryUncached(const ThreeSidedQuery& q,
                       const std::vector<PathEnt>& p1,
                       const std::vector<PathEnt>& p2, size_t fork,
                       SkeletalTreeReader<Pst3NodeRec>* reader,
                       std::vector<Point>* out, QueryStats* stats) const;
  Status DescendDescendants(const ThreeSidedQuery& q,
                            std::vector<NodeRef> todo,
                            SkeletalTreeReader<Pst3NodeRec>* reader,
                            std::vector<Point>* out, QueryStats* stats) const;

  PageDevice* dev_;
  ThreeSidedPstOptions opts_;
  NodeRef root_;
  uint64_t n_ = 0;
  uint32_t region_size_ = 0;
  uint32_t seg_len_ = 1;
  StorageBreakdown storage_;
  std::vector<PageId> owned_pages_;
};

}  // namespace pathcache

#endif  // PATHCACHE_CORE_THREE_SIDED_H_
