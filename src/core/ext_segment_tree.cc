#include "core/ext_segment_tree.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>

#include "core/persist.h"
#include "kernels/search.h"
#include "util/mathutil.h"

namespace pathcache {

namespace {

// Closed input intervals are handled over half-open slabs by treating hi as
// the exclusive bound hi + 1.
int64_t ExclusiveHi(const Interval& iv) { return iv.hi + 1; }

struct MemNode {
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t split = 0;
  int32_t left = -1;
  int32_t right = -1;
  int32_t parent = -1;
  bool is_leaf = false;
  std::vector<Interval> cover;
  std::vector<Interval> ends;  // fat leaves: partially-overlapping intervals
};

}  // namespace

ExtSegmentTree::ExtSegmentTree(PageDevice* dev, ExtSegmentTreeOptions opts)
    : dev_(dev), opts_(opts) {}

Status ExtSegmentTree::Build(std::vector<Interval> intervals) {
  if (root_.valid()) {
    return Status::FailedPrecondition("Build on a non-empty structure");
  }
  n_ = intervals.size();
  const uint32_t B = RecordsPerPage<Interval>(dev_->page_size());
  if (B == 0) return Status::InvalidArgument("page too small");
  if (n_ == 0) return Status::OK();

  // Slab boundaries: the sorted distinct endpoints.
  std::vector<int64_t> endpoints;
  endpoints.reserve(n_ * 2 + 1);
  for (const auto& iv : intervals) {
    endpoints.push_back(iv.lo);
    endpoints.push_back(ExclusiveHi(iv));
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  if (endpoints.size() == 1) endpoints.push_back(endpoints[0] + 1);

  // Fat-slab tree: leaves span ~B consecutive elementary slabs.
  const size_t fat_cap = std::max<uint32_t>(2, B);
  std::vector<MemNode> nodes;
  struct BuildFrame {
    size_t lo, hi;  // endpoint index range; node spans [e_lo, e_hi)
    int32_t parent;
    bool right_child;
  };
  std::vector<BuildFrame> stack{{0, endpoints.size() - 1, -1, false}};
  int32_t root_idx = -1;
  while (!stack.empty()) {
    BuildFrame f = stack.back();
    stack.pop_back();
    int32_t idx = static_cast<int32_t>(nodes.size());
    nodes.push_back(MemNode{});
    nodes[idx].lo = endpoints[f.lo];
    nodes[idx].hi = endpoints[f.hi];
    nodes[idx].parent = f.parent;
    if (f.parent >= 0) {
      (f.right_child ? nodes[f.parent].right : nodes[f.parent].left) = idx;
    } else {
      root_idx = idx;
    }
    if (f.hi - f.lo <= fat_cap) {
      nodes[idx].is_leaf = true;
      nodes[idx].split = endpoints[f.lo];
      continue;
    }
    size_t mid = (f.lo + f.hi) / 2;
    nodes[idx].split = endpoints[mid];
    stack.push_back({mid, f.hi, idx, true});
    stack.push_back({f.lo, mid, idx, false});
  }

  // Allocate intervals: cover-lists at allocation nodes, end-lists at fat
  // leaves the interval only partially overlaps.
  stored_copies_ = 0;
  for (const auto& iv : intervals) {
    const int64_t ivhi = ExclusiveHi(iv);
    std::vector<int32_t> todo{root_idx};
    while (!todo.empty()) {
      int32_t x = todo.back();
      todo.pop_back();
      MemNode& nd = nodes[x];
      if (iv.lo <= nd.lo && nd.hi <= ivhi) {
        nd.cover.push_back(iv);
        ++stored_copies_;
        continue;
      }
      if (nd.is_leaf) {
        nd.ends.push_back(iv);  // partial overlap: an endpoint lies inside
        continue;
      }
      if (iv.lo < nd.split) todo.push_back(nd.left);
      if (ivhi > nd.split) todo.push_back(nd.right);
    }
  }

  // Cover/end lists to disk.
  std::vector<SegNodeRec> recs(nodes.size());
  std::vector<int32_t> lefts(nodes.size()), rights(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    SegNodeRec& r = recs[i];
    r.lo = nodes[i].lo;
    r.hi = nodes[i].hi;
    r.split = nodes[i].split;
    r.cover_count = static_cast<uint32_t>(nodes[i].cover.size());
    r.is_leaf = nodes[i].is_leaf ? 1 : 0;
    lefts[i] = nodes[i].left;
    rights[i] = nodes[i].right;
    if (!nodes[i].cover.empty()) {
      // All interval lists pack on lo (format v3): the stab check reads lo
      // from the dense key array and hi at a fixed payload stride.
      auto info = BuildBlockList<Interval>(
          dev_, std::span<const Interval>(nodes[i].cover),
          offsetof(Interval, lo));
      if (!info.ok()) return info.status();
      for (PageId p : info.value().pages) owned_pages_.push_back(p);
      storage_.points += info.value().pages.size();
      r.cover_head = info.value().ref.head;
    }
    if (!nodes[i].ends.empty()) {
      auto info = BuildBlockList<Interval>(
          dev_, std::span<const Interval>(nodes[i].ends),
          offsetof(Interval, lo));
      if (!info.ok()) return info.status();
      for (PageId p : info.value().pages) owned_pages_.push_back(p);
      storage_.points += info.value().pages.size();
      r.end_page = info.value().ref.head;
    }
  }

  auto tree =
      WriteSkeletalTree<SegNodeRec>(dev_, recs, lefts, rights, root_idx);
  if (!tree.ok()) return tree.status();
  const SkeletalTreeInfo& info = tree.value();
  root_ = info.root;
  storage_.skeletal = info.pages;
  for (PageId p : info.page_ids) owned_pages_.push_back(p);
  if (!opts_.enable_path_caching) return Status::OK();

  // C(v) for page roots and fat leaves: coalesced underfull cover-lists of
  // v and of v's ancestors strictly inside v's (parent) page.
  auto is_page_root = [&](int32_t idx) { return info.refs[idx].slot == 0; };
  for (size_t i = 0; i < nodes.size(); ++i) {
    const bool boundary = is_page_root(static_cast<int32_t>(i)) ||
                          nodes[i].is_leaf;
    if (!boundary) continue;
    std::vector<Interval> cache_ivs;
    if (nodes[i].cover.size() < B) {
      cache_ivs.insert(cache_ivs.end(), nodes[i].cover.begin(),
                       nodes[i].cover.end());
    }
    for (int32_t u = nodes[i].parent; u >= 0 && !is_page_root(u);
         u = nodes[u].parent) {
      if (nodes[u].cover.size() < B) {
        cache_ivs.insert(cache_ivs.end(), nodes[u].cover.begin(),
                         nodes[u].cover.end());
      }
    }
    if (cache_ivs.empty()) continue;
    auto ci = BuildBlockList<Interval>(
        dev_, std::span<const Interval>(cache_ivs), offsetof(Interval, lo));
    if (!ci.ok()) return ci.status();
    for (PageId p : ci.value().pages) owned_pages_.push_back(p);
    storage_.cache_blocks += ci.value().pages.size();
    recs[i].cache_page = ci.value().ref.head;
  }
  return RewriteSkeletalPages(dev_, info, recs, lefts, rights);
}

Status ExtSegmentTree::ReadIntervalList(PageId head,
                                        uint64_t QueryStats::* role,
                                        int64_t q, std::vector<Interval>* out,
                                        QueryStats* stats) const {
  // Every caller consumes the whole chain, so chain readahead is exact:
  // same pages, same per-page accounting, fewer device round trips.
  const uint32_t cap = RecordsPerPage<Interval>(dev_->page_size());
  BlockListCursor<Interval> cur(dev_, head);
  if (opts_.enable_readahead) cur.EnableChainReadahead();
  std::vector<Interval> ivs;
  while (!cur.done()) {
    const std::byte* page = nullptr;
    BlockPageHeader bh;
    PC_RETURN_IF_ERROR(cur.NextBlockRaw(&page, &bh));
    if (stats != nullptr) stats->*role += 1;
    uint64_t qual = 0;
    // Segment-tree cover lists are allocated to nodes whose span the
    // interval covers, so "every record on the page stabs q" is the common
    // case; confirm it with one vectorized pass and bulk-append, falling
    // back to the per-record filter on mixed pages.
    if (codec::IsPacked(bh.count) &&
        codec::KeyOffset(bh.count) == offsetof(Interval, lo)) {
      // v3 packed page: lo is the dense key array; hi sits at payload
      // offset 0 with a 16-byte stride.  "All stab q" decomposes into
      // no lo above q and no hi below q, each one strided scan.
      const PackedPageView<Interval> v = PackedPageView<Interval>::From(page,
                                                                        bh);
      const bool all =
          kernels::FindFirstAbove(v.keys, sizeof(int64_t), v.count, q) ==
              v.count &&
          kernels::FindFirstBelow(v.pays, PackedPageView<Interval>::kPayStride,
                                  v.count, q) == v.count;
      for (size_t i = 0; i < v.count; ++i) {
        const Interval iv{v.keys[i], v.I64Field(i, offsetof(Interval, hi)),
                          v.U64Field(i, offsetof(Interval, id))};
        if (all || iv.Contains(q)) {
          out->push_back(iv);
          ++qual;
        }
      }
    } else {
      ivs.clear();
      AppendBlockRecords(page, bh, &ivs);
      if (kernels::AllContain24(ivs.data(), ivs.size(), q)) {
        out->insert(out->end(), ivs.begin(), ivs.end());
        qual = ivs.size();
      } else {
        for (const auto& iv : ivs) {
          if (iv.Contains(q)) {
            out->push_back(iv);
            ++qual;
          }
        }
      }
    }
    if (stats != nullptr) {
      if (qual >= cap) {
        ++stats->useful;
      } else {
        ++stats->wasteful;
      }
    }
  }
  return Status::OK();
}

Status ExtSegmentTree::Stab(int64_t q, std::vector<Interval>* out,
                            QueryStats* stats) const {
  if (!root_.valid()) return Status::OK();
  const uint32_t B = RecordsPerPage<Interval>(dev_->page_size());
  SkeletalTreeReader<SegNodeRec> reader(dev_);

  NodeRef cur = root_;
  uint64_t nav_before = reader.pages_read();
  const uint64_t limit = SkeletalWalkLimit<SegNodeRec>(dev_);
  uint64_t steps = 0;
  for (;;) {
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(steps++, limit));
    SegNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(cur, &rec));
    if (q < rec.lo || q >= rec.hi) break;  // outside the indexed domain

    const bool boundary = (cur.slot == 0) || rec.is_leaf != 0;
    if (boundary && opts_.enable_path_caching &&
        rec.cache_page != kInvalidPageId) {
      PC_RETURN_IF_ERROR(
          ReadIntervalList(rec.cache_page, &QueryStats::cache, q, out,
                           stats));
    }
    // Underfull lists come from the caches; full lists pay for themselves.
    const bool read_direct =
        !opts_.enable_path_caching || rec.cover_count >= B;
    if (read_direct && rec.cover_count > 0 &&
        rec.cover_head != kInvalidPageId) {
      PC_RETURN_IF_ERROR(ReadIntervalList(rec.cover_head,
                                          &QueryStats::ancestor, q, out,
                                          stats));
    }
    if (rec.is_leaf != 0) {
      if (rec.end_page != kInvalidPageId) {
        PC_RETURN_IF_ERROR(ReadIntervalList(rec.end_page,
                                            &QueryStats::descendant, q, out,
                                            stats));
      }
      break;
    }
    NodeRef next = (q < rec.split) ? rec.left : rec.right;
    if (!next.valid()) break;
    cur = next;
  }
  if (stats != nullptr) {
    stats->navigation += reader.pages_read() - nav_before;
    stats->wasteful += reader.pages_read() - nav_before;
    stats->records_reported = out->size();
  }
  return Status::OK();
}

Status ExtSegmentTree::Destroy() {
  for (PageId p : owned_pages_) PC_RETURN_IF_ERROR(dev_->Free(p));
  owned_pages_.clear();
  root_ = kNullNodeRef;
  n_ = 0;
  stored_copies_ = 0;
  storage_ = StorageBreakdown{};
  return Status::OK();
}

Result<PageId> ExtSegmentTree::Save() {
  auto list =
      BuildBlockList<PageId>(dev_, std::span<const PageId>(owned_pages_));
  if (!list.ok()) return list.status();
  auto mp = dev_->Allocate();
  if (!mp.ok()) return mp.status();

  PstManifestHeader hdr;
  hdr.magic = kExtSegTreeMagic;
  hdr.n = n_;
  hdr.root = root_;
  hdr.caching = opts_.enable_path_caching ? 1 : 0;
  hdr.skeletal = storage_.skeletal;
  hdr.points_pages = storage_.points;
  hdr.cache_headers = storage_.cache_headers;
  hdr.cache_blocks = storage_.cache_blocks;
  hdr.owned_head = list.value().ref.head;
  hdr.owned_count = owned_pages_.size();
  hdr.aux = stored_copies_;
  PC_RETURN_IF_ERROR(internal::WriteManifestHeader(dev_, mp.value(), hdr));

  owned_pages_.push_back(mp.value());
  for (PageId p : list.value().pages) owned_pages_.push_back(p);
  return mp.value();
}

Status ExtSegmentTree::Open(PageId manifest) {
  if (root_.valid() || !owned_pages_.empty()) {
    return Status::FailedPrecondition("Open on a non-empty structure");
  }
  PstManifestHeader hdr;
  std::vector<PageId> owned, chain;
  PC_RETURN_IF_ERROR(internal::ReadManifest(
      dev_, manifest, kExtSegTreeMagic, &hdr, &owned, nullptr, &chain));
  n_ = hdr.n;
  root_ = hdr.root;
  opts_.enable_path_caching = hdr.caching != 0;
  stored_copies_ = hdr.aux;
  storage_ = StorageBreakdown{};
  storage_.skeletal = hdr.skeletal;
  storage_.points = hdr.points_pages;
  storage_.cache_headers = hdr.cache_headers;
  storage_.cache_blocks = hdr.cache_blocks;
  owned_pages_ = std::move(owned);
  for (PageId p : chain) owned_pages_.push_back(p);
  return Status::OK();
}

Status ExtSegmentTree::CheckStructure() const {
  if (!root_.valid()) {
    return n_ == 0 ? Status::OK()
                   : Status::Corruption("no root for non-empty structure");
  }
  const uint32_t B = RecordsPerPage<Interval>(dev_->page_size());
  SkeletalTreeReader<SegNodeRec> reader(dev_);
  const uint64_t walk_limit = SkeletalWalkLimit<SegNodeRec>(dev_);
  uint64_t walk_steps = 0;

  // DFS with an explicit unwind marker: a node's cache coalesces the
  // underfull cover-lists of its strictly-in-page ancestors, so those lists
  // ride along on the chain for exact content comparison.
  struct ChainEnt {
    bool page_root;
    std::vector<Interval> underfull;  // the cover-list when count < B
  };
  struct Item {
    NodeRef ref;
    bool has_parent = false;
    int64_t lo = 0, hi = 0;             // expected slab (from parent split)
    int64_t parent_lo = 0, parent_hi = 0;
    bool unwind = false;
  };
  std::vector<ChainEnt> chain;
  std::vector<Item> stack;
  stack.push_back(Item{root_});
  uint64_t copies = 0;

  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    if (it.unwind) {
      chain.pop_back();
      continue;
    }
    PC_RETURN_IF_ERROR(CheckSkeletalWalkStep(walk_steps++, walk_limit));

    SegNodeRec rec;
    PC_RETURN_IF_ERROR(reader.Read(it.ref, &rec));
    if (rec.lo >= rec.hi) return Status::Corruption("empty slab");
    if (it.has_parent && (rec.lo != it.lo || rec.hi != it.hi)) {
      return Status::Corruption("child slab does not match parent split");
    }
    const bool leaf = rec.is_leaf != 0;
    if (leaf && (rec.left.valid() || rec.right.valid())) {
      return Status::Corruption("fat leaf with children");
    }
    if (!leaf) {
      if (!(rec.lo < rec.split && rec.split < rec.hi)) {
        return Status::Corruption("split outside slab");
      }
      if (!rec.left.valid() || !rec.right.valid()) {
        return Status::Corruption("internal node missing a child");
      }
    }

    // Cover-list: every interval covers this slab but not the parent's
    // (allocation nodes are maximal).
    std::vector<Interval> cover;
    PC_RETURN_IF_ERROR(ReadBlockChain<Interval>(dev_, rec.cover_head,
                                                &cover));
    if (cover.size() != rec.cover_count) {
      return Status::Corruption("cover-list count mismatch");
    }
    for (const Interval& iv : cover) {
      if (!(iv.lo <= rec.lo && rec.hi <= iv.hi + 1)) {
        return Status::Corruption("cover interval does not cover its slab");
      }
      if (it.has_parent && iv.lo <= it.parent_lo &&
          it.parent_hi <= iv.hi + 1) {
        return Status::Corruption(
            "cover interval covers the parent slab (allocated too low)");
      }
    }
    copies += cover.size();

    // End-list: fat leaves only; partial overlaps by definition.
    if (!leaf && rec.end_page != kInvalidPageId) {
      return Status::Corruption("end-list on an internal node");
    }
    if (leaf && rec.end_page != kInvalidPageId) {
      std::vector<Interval> ends;
      PC_RETURN_IF_ERROR(ReadBlockChain<Interval>(dev_, rec.end_page,
                                                  &ends));
      for (const Interval& iv : ends) {
        const bool overlaps = iv.lo < rec.hi && iv.hi + 1 > rec.lo;
        const bool covers = iv.lo <= rec.lo && rec.hi <= iv.hi + 1;
        if (!overlaps || covers) {
          return Status::Corruption(
              "end-list interval does not partially overlap its leaf");
        }
      }
    }

    chain.push_back(ChainEnt{it.ref.slot == 0,
                             cover.size() < B ? std::move(cover)
                                              : std::vector<Interval>{}});
    {
      Item unwind;
      unwind.unwind = true;
      stack.push_back(unwind);
    }

    // Cache: page roots and fat leaves coalesce the underfull cover-lists
    // of themselves and their strictly-in-page ancestors, in that order.
    const bool boundary = (it.ref.slot == 0) || leaf;
    if (!opts_.enable_path_caching || !boundary) {
      if (rec.cache_page != kInvalidPageId) {
        return Status::Corruption("cache on a non-boundary node");
      }
    } else {
      std::vector<Interval> expect = chain.back().underfull;
      for (size_t j = chain.size() - 1; j-- > 0;) {
        if (chain[j].page_root) break;
        expect.insert(expect.end(), chain[j].underfull.begin(),
                      chain[j].underfull.end());
      }
      if (expect.empty()) {
        if (rec.cache_page != kInvalidPageId) {
          return Status::Corruption(
              "cache present with no underfull cover-lists in scope");
        }
      } else {
        if (rec.cache_page == kInvalidPageId) {
          return Status::Corruption("missing cache");
        }
        std::vector<Interval> got;
        PC_RETURN_IF_ERROR(ReadBlockChain<Interval>(dev_, rec.cache_page,
                                                    &got));
        if (got.size() != expect.size()) {
          return Status::Corruption("cache record count mismatch");
        }
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].lo != expect[i].lo || got[i].hi != expect[i].hi ||
              got[i].id != expect[i].id) {
            return Status::Corruption(
                "cache contents diverge from the in-scope cover-lists");
          }
        }
      }
    }

    if (!leaf) {
      Item right;
      right.ref = rec.right;
      right.has_parent = true;
      right.lo = rec.split;
      right.hi = rec.hi;
      right.parent_lo = rec.lo;
      right.parent_hi = rec.hi;
      stack.push_back(right);
      Item left;
      left.ref = rec.left;
      left.has_parent = true;
      left.lo = rec.lo;
      left.hi = rec.split;
      left.parent_lo = rec.lo;
      left.parent_hi = rec.hi;
      stack.push_back(left);
    }
  }
  if (copies != stored_copies_) {
    return Status::Corruption("stored-copies total mismatch");
  }
  return Status::OK();
}

Status ExtSegmentTree::Cluster() {
  if (!root_.valid()) return Status::OK();

  std::vector<PageTreeNode> ptree;
  PC_RETURN_IF_ERROR(
      CollectSkeletalPageTree<SegNodeRec>(dev_, root_, &ptree));
  const std::vector<uint32_t> veb = VanEmdeBoasOrder(ptree, 0);

  // Pass 1: skeletal pages in van Emde Boas order with every stored PageId
  // slot registered for rewrite.
  LayoutPlan plan;
  std::vector<std::byte> buf(dev_->page_size());
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    plan.Add(pid);
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      const uint32_t base =
          static_cast<uint32_t>(sizeof(hdr) + s * sizeof(SegNodeRec));
      plan.AddRef(pid, base + offsetof(SegNodeRec, left) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(SegNodeRec, right) +
                           offsetof(NodeRef, page));
      plan.AddRef(pid, base + offsetof(SegNodeRec, cover_head));
      plan.AddRef(pid, base + offsetof(SegNodeRec, cache_page));
      plan.AddRef(pid, base + offsetof(SegNodeRec, end_page));
    }
  }

  // Pass 2: each node's chains — cache, cover, end-list — in the order a
  // descending stab touches them.
  for (uint32_t pi : veb) {
    const PageId pid = ptree[pi].id;
    PC_RETURN_IF_ERROR(dev_->Read(pid, buf.data()));
    SkeletalPageHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    for (uint32_t s = 0; s < hdr.count; ++s) {
      SegNodeRec rec;
      std::memcpy(&rec, buf.data() + sizeof(hdr) + s * sizeof(SegNodeRec),
                  sizeof(rec));
      for (PageId head : {rec.cache_page, rec.cover_head, rec.end_page}) {
        if (head == kInvalidPageId) continue;
        std::vector<PageId> chain;
        PC_RETURN_IF_ERROR(CollectChainPages(dev_, head, &chain));
        plan.AddChain(chain);
      }
    }
  }

  if (plan.page_count() != owned_pages_.size()) {
    return Status::FailedPrecondition(
        "layout plan covers " + std::to_string(plan.page_count()) +
        " pages but the structure owns " +
        std::to_string(owned_pages_.size()) +
        " — Cluster() must run on a finished build before Save()");
  }
  auto remap = ComputeRemap(plan);
  if (!remap.ok()) return remap.status();
  PC_RETURN_IF_ERROR(ApplyLayout(dev_, plan, remap.value()));
  root_.page = remap.value().Of(root_.page);
  for (PageId& p : owned_pages_) p = remap.value().Of(p);
  return Status::OK();
}

}  // namespace pathcache
