// Internal: per-tier kernel entry points and build-capability flags shared
// between search.cc (scalar/SSE2/NEON + dispatch), search_avx2.cc (compiled
// with -mavx2) and crc32c_hw.cc (compiled with -msse4.2 / +crc).  Not part
// of the public kernels API — include kernels/search.h instead.

#ifndef PATHCACHE_KERNELS_SEARCH_IMPL_H_
#define PATHCACHE_KERNELS_SEARCH_IMPL_H_

#include <cstddef>
#include <cstdint>

namespace pathcache {
namespace kernels {
namespace internal {

// True when the corresponding TU was compiled with the real intrinsics (the
// compiler supported the flag and the target architecture matches).  The
// dispatcher never reports a tier whose code was not compiled in.
extern const bool kCompiledAvx2;
extern const bool kCompiledHwCrc;

// ---- scalar (always available; the semantic reference) ----
size_t LowerBoundI64Scalar(const int64_t* a, size_t n, int64_t key);
size_t UpperBoundI64Scalar(const int64_t* a, size_t n, int64_t key);
size_t LowerBoundKVScalar(const void* recs, size_t n, int64_t key,
                          uint64_t value);
size_t UpperBoundKVScalar(const void* recs, size_t n, int64_t key,
                          uint64_t value);
size_t FindFirstBelowScalar(const void* base, size_t stride, size_t n,
                            int64_t bound);
size_t FindFirstAboveScalar(const void* base, size_t stride, size_t n,
                            int64_t bound);
bool AllContain24Scalar(const void* recs, size_t n, int64_t q);
size_t LowerBoundKVPackedScalar(const int64_t* keys, const uint64_t* vals,
                                size_t n, int64_t key, uint64_t value);
size_t UpperBoundKVPackedScalar(const int64_t* keys, const uint64_t* vals,
                                size_t n, int64_t key, uint64_t value);

// ---- SSE2 (x86 only; stubs forward to scalar elsewhere).  No KV entry
// points: the lexicographic predicate synthesized from 32-bit compares
// measured slower than branchless scalar at every size, so the kSse2 tier
// dispatches KV bounds to scalar. ----
size_t LowerBoundI64Sse2(const int64_t* a, size_t n, int64_t key);
size_t UpperBoundI64Sse2(const int64_t* a, size_t n, int64_t key);
size_t FindFirstBelowSse2(const void* base, size_t stride, size_t n,
                          int64_t bound);
size_t FindFirstAboveSse2(const void* base, size_t stride, size_t n,
                          int64_t bound);
size_t LowerBoundKVPackedSse2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value);
size_t UpperBoundKVPackedSse2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value);

// ---- NEON (aarch64 only; stubs forward to scalar elsewhere) ----
size_t LowerBoundI64Neon(const int64_t* a, size_t n, int64_t key);
size_t UpperBoundI64Neon(const int64_t* a, size_t n, int64_t key);
size_t FindFirstBelowNeon(const void* base, size_t stride, size_t n,
                          int64_t bound);
size_t FindFirstAboveNeon(const void* base, size_t stride, size_t n,
                          int64_t bound);
size_t LowerBoundKVPackedNeon(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value);
size_t UpperBoundKVPackedNeon(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value);

// ---- AVX2 (search_avx2.cc; stubs forward to scalar when not compiled) ----
size_t LowerBoundI64Avx2(const int64_t* a, size_t n, int64_t key);
size_t UpperBoundI64Avx2(const int64_t* a, size_t n, int64_t key);
size_t LowerBoundKVAvx2(const void* recs, size_t n, int64_t key,
                        uint64_t value);
size_t UpperBoundKVAvx2(const void* recs, size_t n, int64_t key,
                        uint64_t value);
size_t FindFirstBelowAvx2(const void* base, size_t stride, size_t n,
                          int64_t bound);
size_t FindFirstAboveAvx2(const void* base, size_t stride, size_t n,
                          int64_t bound);
bool AllContain24Avx2(const void* recs, size_t n, int64_t q);
size_t LowerBoundKVPackedAvx2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value);
size_t UpperBoundKVPackedAvx2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value);

// ---- hardware CRC32C (crc32c_hw.cc) ----
unsigned int Crc32cUpdateHwImpl(unsigned int state, const void* data,
                                unsigned long n);

}  // namespace internal
}  // namespace kernels
}  // namespace pathcache

#endif  // PATHCACHE_KERNELS_SEARCH_IMPL_H_
