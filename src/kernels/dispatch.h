// Runtime CPU-feature dispatch for the in-page search kernels.
//
// Every kernel in kernels/search.h and the hardware CRC32C in io/crc32c.cc
// picks its implementation from the process-wide *active tier*.  The tier is
// resolved once from the CPU (cpuid on x86, HWCAP on aarch64) and the
// environment, and can be overridden programmatically so tests and benches
// can force every implementation down the same differential harness:
//
//   PATHCACHE_DISABLE_SIMD=1          -> scalar everywhere (also software CRC)
//   PATHCACHE_KERNEL_TIER=<name>      -> force a tier by name ("scalar",
//                                        "sse2", "avx2", "neon"); clamped to
//                                        what the CPU actually supports
//   kernels::ForceTier(t)             -> in-process override (benches/tests)
//
// Contract: every tier computes bit-identical results — a tier is a speed,
// never a semantic.  The differential tests in tests/kernels_test.cpp force
// each available tier through exhaustive and randomized sweeps to pin that.

#ifndef PATHCACHE_KERNELS_DISPATCH_H_
#define PATHCACHE_KERNELS_DISPATCH_H_

namespace pathcache {
namespace kernels {

/// Kernel implementation tiers, ordered weakest to strongest.  A CPU that
/// supports tier T can run every tier below it; ForceTier clamps upward
/// requests to the detected maximum.
enum class Tier : int {
  kScalar = 0,  // portable branchless C++ (always available)
  kNeon = 1,    // aarch64 ASIMD
  kSse2 = 2,    // x86-64 baseline vectors (int64 compares synthesized)
  kAvx2 = 3,    // 4-wide int64 compares + gathers
};

/// Strongest tier this CPU + build supports (environment NOT applied).
Tier DetectedTier();

/// The tier kernels currently dispatch on: DetectedTier() clamped by the
/// environment overrides, unless ForceTier() installed something else.
/// Thread-safe to read concurrently with queries.
Tier ActiveTier();

/// Installs `t` (clamped to DetectedTier()) as the active tier until
/// ResetTier().  For benches and differential tests; switching while other
/// threads run kernels is safe (atomic) but makes their tier unpredictable.
void ForceTier(Tier t);

/// Drops any ForceTier override, returning to the environment-derived tier.
void ResetTier();

/// Human-readable tier name ("scalar", "neon", "sse2", "avx2").
const char* TierName(Tier t);

/// True when the CPU has a CRC32C instruction (SSE4.2 / ARMv8 CRC), this
/// build compiled the intrinsic path, and the active tier is not kScalar —
/// forcing scalar forces the software slice-by-8 CRC too, so the two
/// implementations can be cross-checked.
bool HwCrc32cActive();

/// CRC32C over the hardware instruction; call only when HwCrc32cActive().
/// Same state convention as Crc32cUpdate in io/crc32c.h.
unsigned int Crc32cUpdateHw(unsigned int state, const void* data,
                            unsigned long n);

}  // namespace kernels
}  // namespace pathcache

#endif  // PATHCACHE_KERNELS_DISPATCH_H_
