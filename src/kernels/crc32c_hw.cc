// Hardware CRC32C tier, compiled with -msse4.2 (x86) or -march=armv8-a+crc
// (aarch64) — see CMakeLists.txt.  The instruction implements exactly the
// reflected-polynomial byte fold the slice-by-8 tables in io/crc32c.cc
// compute, so the register state is interchangeable mid-stream between the
// two implementations; io/crc32c_test.cc cross-checks them so persisted
// stores stay byte-compatible whichever path computed the checksum.

#include "kernels/search_impl.h"

#if defined(__SSE4_2__) && (defined(__x86_64__) || defined(__i386__))

#include <nmmintrin.h>

namespace pathcache {
namespace kernels {
namespace internal {

const bool kCompiledHwCrc = true;

unsigned int Crc32cUpdateHwImpl(unsigned int state, const void* data,
                                unsigned long n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
#if defined(__x86_64__)
  unsigned long long crc = state;
  while (n >= 8) {
    unsigned long long chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc = _mm_crc32_u64(crc, chunk);
    p += 8;
    n -= 8;
  }
  unsigned int crc32 = static_cast<unsigned int>(crc);
#else
  unsigned int crc32 = state;
  while (n >= 4) {
    unsigned int chunk;
    __builtin_memcpy(&chunk, p, 4);
    crc32 = _mm_crc32_u32(crc32, chunk);
    p += 4;
    n -= 4;
  }
#endif
  while (n-- > 0) {
    crc32 = _mm_crc32_u8(crc32, *p++);
  }
  return crc32;
}

}  // namespace internal
}  // namespace kernels
}  // namespace pathcache

#elif defined(__ARM_FEATURE_CRC32)

#include <arm_acle.h>

namespace pathcache {
namespace kernels {
namespace internal {

const bool kCompiledHwCrc = true;

unsigned int Crc32cUpdateHwImpl(unsigned int state, const void* data,
                                unsigned long n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  unsigned int crc = state;
  while (n >= 8) {
    unsigned long long chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc = __crc32cd(crc, chunk);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *p++);
  }
  return crc;
}

}  // namespace internal
}  // namespace kernels
}  // namespace pathcache

#else

namespace pathcache {
namespace kernels {
namespace internal {

const bool kCompiledHwCrc = false;

// Never reached: dispatch.cc only reports hardware CRC when kCompiledHwCrc
// is true.  Returning the state unchanged keeps the symbol defined.
unsigned int Crc32cUpdateHwImpl(unsigned int state, const void* /*data*/,
                                unsigned long /*n*/) {
  return state;
}

}  // namespace internal
}  // namespace kernels
}  // namespace pathcache

#endif
