// AVX2 kernel tier.  This TU is the only one compiled with -mavx2 (see
// CMakeLists.txt), so the 256-bit intrinsics must not leak anywhere else;
// the dispatcher only routes here after the runtime cpuid/XCR0 probe.  When
// the toolchain cannot target AVX2 the stubs at the bottom forward to scalar
// and kCompiledAvx2 tells the dispatcher never to report this tier.

#include <cstring>

#include "kernels/search_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace pathcache {
namespace kernels {
namespace internal {

const bool kCompiledAvx2 = true;

namespace {

inline int64_t LoadI64(const void* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadU64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline bool RecLess(const void* p, int64_t key, uint64_t value) {
  const int64_t k = LoadI64(p);
  if (k != key) return k < key;
  return LoadU64(static_cast<const char*>(p) + 8) < value;
}
inline bool RecLessEq(const void* p, int64_t key, uint64_t value) {
  const int64_t k = LoadI64(p);
  if (k != key) return k < key;
  return LoadU64(static_cast<const char*>(p) + 8) <= value;
}

inline int Mask4(__m256i m) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(m));
}

inline unsigned PopCount(int mask) {
  return static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(mask)));
}

// Narrowing stops here and the rest is a straight vectorized count: each
// branchless halving step is a ~15-cycle serial load->cmp->cmov chain,
// while counting 32 more keys costs ~8 throughput-bound cycles, so the
// break-even window is wide.  64 keeps directory-sized arrays (<= 64 keys)
// entirely in the count loop.
constexpr size_t kWindow = 64;

}  // namespace

size_t LowerBoundI64Avx2(const int64_t* a, size_t n, int64_t key) {
  size_t lo = 0, len = n;
  while (len > kWindow) {
    const size_t half = len / 2;
    if (a[lo + half - 1] < key) {
      lo += half;
      len -= half;
    } else {
      len = half;
    }
  }
  const __m256i vkey = _mm256_set1_epi64x(key);
  size_t cnt = 0, i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + lo + i));
    cnt += PopCount(Mask4(_mm256_cmpgt_epi64(vkey, v)));
  }
  for (; i < len; ++i) cnt += a[lo + i] < key ? 1 : 0;
  return lo + cnt;
}

size_t UpperBoundI64Avx2(const int64_t* a, size_t n, int64_t key) {
  size_t lo = 0, len = n;
  while (len > kWindow) {
    const size_t half = len / 2;
    if (a[lo + half - 1] <= key) {
      lo += half;
      len -= half;
    } else {
      len = half;
    }
  }
  const __m256i vkey = _mm256_set1_epi64x(key);
  size_t gt = 0, i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + lo + i));
    gt += PopCount(Mask4(_mm256_cmpgt_epi64(v, vkey)));
  }
  for (; i < len; ++i) gt += a[lo + i] > key ? 1 : 0;
  return lo + len - gt;
}

namespace {

// Counts records r in the window with r < (key, value) or, when
// kCountGreater, r > (key, value).  Four 16-byte records load as two
// 256-bit vectors; per-128-lane unpacklo/hi deinterleaves them into a
// keys vector and a values vector with consistent lane pairing (the lane
// order is scrambled — k0,k2,k1,k3 — which a popcount never notices).
template <bool kCountGreater>
inline size_t CountKVAvx2(const void* recs, size_t lo, size_t len,
                          int64_t key, uint64_t value) {
  const char* base = static_cast<const char*>(recs) + lo * 16;
  const __m256i sign = _mm256_set1_epi64x(INT64_MIN);
  const __m256i vkey = _mm256_set1_epi64x(key);
  const __m256i vval =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<int64_t>(value)), sign);
  size_t cnt = 0, i = 0;
  for (; i + 4 <= len; i += 4) {
    const char* p = base + i * 16;
    const __m256i r01 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i r23 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    const __m256i keys = _mm256_unpacklo_epi64(r01, r23);
    const __m256i vals =
        _mm256_xor_si256(_mm256_unpackhi_epi64(r01, r23), sign);
    const __m256i eqk = _mm256_cmpeq_epi64(keys, vkey);
    __m256i pred;
    if (kCountGreater) {
      pred = _mm256_or_si256(
          _mm256_cmpgt_epi64(keys, vkey),
          _mm256_and_si256(eqk, _mm256_cmpgt_epi64(vals, vval)));
    } else {
      pred = _mm256_or_si256(
          _mm256_cmpgt_epi64(vkey, keys),
          _mm256_and_si256(eqk, _mm256_cmpgt_epi64(vval, vals)));
    }
    cnt += PopCount(Mask4(pred));
  }
  for (; i < len; ++i) {
    const char* p = base + i * 16;
    if (kCountGreater) {
      cnt += RecLessEq(p, key, value) ? 0 : 1;
    } else {
      cnt += RecLess(p, key, value) ? 1 : 0;
    }
  }
  return cnt;
}

}  // namespace

size_t LowerBoundKVAvx2(const void* recs, size_t n, int64_t key,
                        uint64_t value) {
  const char* base = static_cast<const char*>(recs);
  size_t lo = 0, len = n;
  while (len > kWindow) {
    const size_t half = len / 2;
    if (RecLess(base + (lo + half - 1) * 16, key, value)) {
      lo += half;
      len -= half;
    } else {
      len = half;
    }
  }
  return lo + CountKVAvx2<false>(recs, lo, len, key, value);
}

size_t UpperBoundKVAvx2(const void* recs, size_t n, int64_t key,
                        uint64_t value) {
  const char* base = static_cast<const char*>(recs);
  size_t lo = 0, len = n;
  while (len > kWindow) {
    const size_t half = len / 2;
    if (RecLessEq(base + (lo + half - 1) * 16, key, value)) {
      lo += half;
      len -= half;
    } else {
      len = half;
    }
  }
  return lo + len - CountKVAvx2<true>(recs, lo, len, key, value);
}

namespace {

// Shared first-match skeleton: loads four keys per step (contiguous loads
// when stride == 8, byte-offset gathers otherwise), compares, and converts
// the first set movemask lane to the exact scalar index.
template <bool kBelow>
inline size_t FindFirstAvx2(const void* base, size_t stride, size_t n,
                            int64_t bound) {
  const char* p = static_cast<const char*>(base);
  const __m256i vb = _mm256_set1_epi64x(bound);
  size_t i = 0;
  if (stride == sizeof(int64_t)) {
    const int64_t* a = static_cast<const int64_t*>(base);
    for (; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const int m = kBelow ? Mask4(_mm256_cmpgt_epi64(vb, v))
                           : Mask4(_mm256_cmpgt_epi64(v, vb));
      if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
    }
  } else {
    const __m256i offs = _mm256_setr_epi64x(
        0, static_cast<int64_t>(stride), static_cast<int64_t>(2 * stride),
        static_cast<int64_t>(3 * stride));
    for (; i + 4 <= n; i += 4) {
      const __m256i v = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(p + i * stride), offs, 1);
      const int m = kBelow ? Mask4(_mm256_cmpgt_epi64(vb, v))
                           : Mask4(_mm256_cmpgt_epi64(v, vb));
      if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
    }
  }
  for (; i < n; ++i) {
    const int64_t k = LoadI64(p + i * stride);
    if (kBelow ? (k < bound) : (k > bound)) return i;
  }
  return n;
}

}  // namespace

size_t FindFirstBelowAvx2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstAvx2<true>(base, stride, n, bound);
}

size_t FindFirstAboveAvx2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstAvx2<false>(base, stride, n, bound);
}

bool AllContain24Avx2(const void* recs, size_t n, int64_t q) {
  const char* p = static_cast<const char*>(recs);
  const __m256i vq = _mm256_set1_epi64x(q);
  const __m256i lo_offs = _mm256_setr_epi64x(0, 24, 48, 72);
  const __m256i hi_offs = _mm256_setr_epi64x(8, 32, 56, 80);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const long long* b = reinterpret_cast<const long long*>(p + i * 24);
    const __m256i lo = _mm256_i64gather_epi64(b, lo_offs, 1);
    const __m256i hi = _mm256_i64gather_epi64(b, hi_offs, 1);
    const __m256i viol = _mm256_or_si256(_mm256_cmpgt_epi64(lo, vq),
                                         _mm256_cmpgt_epi64(vq, hi));
    if (Mask4(viol) != 0) return false;
  }
  for (; i < n; ++i) {
    const char* r = p + i * 24;
    if (LoadI64(r) > q || LoadI64(r + 8) < q) return false;
  }
  return true;
}

}  // namespace internal
}  // namespace kernels
}  // namespace pathcache

#else  // !__AVX2__

namespace pathcache {
namespace kernels {
namespace internal {

const bool kCompiledAvx2 = false;

size_t LowerBoundI64Avx2(const int64_t* a, size_t n, int64_t key) {
  return LowerBoundI64Scalar(a, n, key);
}
size_t UpperBoundI64Avx2(const int64_t* a, size_t n, int64_t key) {
  return UpperBoundI64Scalar(a, n, key);
}
size_t LowerBoundKVAvx2(const void* recs, size_t n, int64_t key,
                        uint64_t value) {
  return LowerBoundKVScalar(recs, n, key, value);
}
size_t UpperBoundKVAvx2(const void* recs, size_t n, int64_t key,
                        uint64_t value) {
  return UpperBoundKVScalar(recs, n, key, value);
}
size_t FindFirstBelowAvx2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstBelowScalar(base, stride, n, bound);
}
size_t FindFirstAboveAvx2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstAboveScalar(base, stride, n, bound);
}
bool AllContain24Avx2(const void* recs, size_t n, int64_t q) {
  return AllContain24Scalar(recs, n, q);
}

}  // namespace internal
}  // namespace kernels
}  // namespace pathcache

#endif  // __AVX2__
