#include "kernels/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/search_impl.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif
#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace pathcache {
namespace kernels {

namespace {

struct CpuFeatures {
  Tier best = Tier::kScalar;
  bool crc32c = false;
};

#if defined(__x86_64__) || defined(__i386__)
CpuFeatures ProbeCpu() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool sse2 = (edx & (1u << 26)) != 0;
  const bool sse42 = (ecx & (1u << 20)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (sse2) f.best = Tier::kSse2;
  f.crc32c = sse42 && internal::kCompiledHwCrc;
  // AVX2 requires the OS to have enabled YMM state (XCR0 bits 1+2) on top of
  // the cpuid feature bit, and this build to have compiled the AVX2 TU.
  if (avx && osxsave && internal::kCompiledAvx2) {
    unsigned xcr0_lo, xcr0_hi;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    if ((xcr0_lo & 0x6) == 0x6) {
      unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
      if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) &&
          (ebx7 & (1u << 5)) != 0) {
        f.best = Tier::kAvx2;
      }
    }
  }
  return f;
}
#elif defined(__aarch64__)
CpuFeatures ProbeCpu() {
  CpuFeatures f;
  f.best = Tier::kNeon;  // ASIMD is architecturally baseline on aarch64
#if defined(__linux__)
  f.crc32c =
      internal::kCompiledHwCrc && (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#endif
  return f;
}
#else
CpuFeatures ProbeCpu() { return CpuFeatures{}; }
#endif

const CpuFeatures& Cpu() {
  static const CpuFeatures f = ProbeCpu();
  return f;
}

Tier ClampToCpu(Tier t) {
  return static_cast<int>(t) <= static_cast<int>(Cpu().best) ? t : Cpu().best;
}

// Environment-derived default, resolved once.
Tier EnvTier() {
  static const Tier t = [] {
    const char* off = std::getenv("PATHCACHE_DISABLE_SIMD");
    if (off != nullptr && off[0] != '\0' && off[0] != '0') {
      return Tier::kScalar;
    }
    const char* name = std::getenv("PATHCACHE_KERNEL_TIER");
    if (name != nullptr) {
      if (std::strcmp(name, "scalar") == 0) return Tier::kScalar;
      if (std::strcmp(name, "neon") == 0) return ClampToCpu(Tier::kNeon);
      if (std::strcmp(name, "sse2") == 0) return ClampToCpu(Tier::kSse2);
      if (std::strcmp(name, "avx2") == 0) return ClampToCpu(Tier::kAvx2);
    }
    return Cpu().best;
  }();
  return t;
}

// -1 = no override; otherwise the forced tier.
std::atomic<int> g_forced{-1};

}  // namespace

Tier DetectedTier() { return Cpu().best; }

Tier ActiveTier() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  return EnvTier();
}

void ForceTier(Tier t) {
  g_forced.store(static_cast<int>(ClampToCpu(t)), std::memory_order_relaxed);
}

void ResetTier() { g_forced.store(-1, std::memory_order_relaxed); }

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kNeon:
      return "neon";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool HwCrc32cActive() {
  return Cpu().crc32c && ActiveTier() != Tier::kScalar;
}

unsigned int Crc32cUpdateHw(unsigned int state, const void* data,
                            unsigned long n) {
  return internal::Crc32cUpdateHwImpl(state, data, n);
}

}  // namespace kernels
}  // namespace pathcache
