#include "kernels/search.h"

#include <cstring>

#include "kernels/search_impl.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#define PATHCACHE_KERNELS_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace pathcache {
namespace kernels {
namespace internal {

namespace {

// Alignment-free loads: record pages come out of byte buffers, so every key
// access goes through memcpy (compiles to a plain mov).
inline int64_t LoadI64(const void* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadU64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Lexicographic predicates over a {key, value} record at `p`.
inline bool RecLess(const void* p, int64_t key, uint64_t value) {
  const int64_t k = LoadI64(p);
  if (k != key) return k < key;
  return LoadU64(static_cast<const char*>(p) + 8) < value;
}
inline bool RecLessEq(const void* p, int64_t key, uint64_t value) {
  const int64_t k = LoadI64(p);
  if (k != key) return k < key;
  return LoadU64(static_cast<const char*>(p) + 8) <= value;
}

// Branchless binary search over records of `stride` bytes: returns the
// number of records for which `pred` holds, assuming pred is monotone
// (true-prefix) over the array.  The ternary compiles to a cmov, so the
// loop runs without a mispredictable branch.
template <typename Pred>
inline size_t BranchlessCount(const void* recs, size_t stride, size_t n,
                              const Pred& pred) {
  const char* base = static_cast<const char*>(recs);
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base += pred(base + (half - 1) * stride) ? half * stride : 0;
    len -= half;
  }
  const size_t off =
      static_cast<size_t>(base - static_cast<const char*>(recs)) / stride;
  return off + ((len == 1 && pred(base)) ? 1 : 0);
}

}  // namespace

// ---------------------------------------------------------------- scalar --

size_t LowerBoundI64Scalar(const int64_t* a, size_t n, int64_t key) {
  return BranchlessCount(a, sizeof(int64_t), n,
                         [key](const void* p) { return LoadI64(p) < key; });
}

size_t UpperBoundI64Scalar(const int64_t* a, size_t n, int64_t key) {
  return BranchlessCount(a, sizeof(int64_t), n,
                         [key](const void* p) { return LoadI64(p) <= key; });
}

size_t LowerBoundKVScalar(const void* recs, size_t n, int64_t key,
                          uint64_t value) {
  return BranchlessCount(recs, 16, n, [key, value](const void* p) {
    return RecLess(p, key, value);
  });
}

size_t UpperBoundKVScalar(const void* recs, size_t n, int64_t key,
                          uint64_t value) {
  return BranchlessCount(recs, 16, n, [key, value](const void* p) {
    return RecLessEq(p, key, value);
  });
}

size_t FindFirstBelowScalar(const void* base, size_t stride, size_t n,
                            int64_t bound) {
  const char* p = static_cast<const char*>(base);
  for (size_t i = 0; i < n; ++i, p += stride) {
    if (LoadI64(p) < bound) return i;
  }
  return n;
}

size_t FindFirstAboveScalar(const void* base, size_t stride, size_t n,
                            int64_t bound) {
  const char* p = static_cast<const char*>(base);
  for (size_t i = 0; i < n; ++i, p += stride) {
    if (LoadI64(p) > bound) return i;
  }
  return n;
}

bool AllContain24Scalar(const void* recs, size_t n, int64_t q) {
  const char* p = static_cast<const char*>(recs);
  for (size_t i = 0; i < n; ++i, p += 24) {
    if (LoadI64(p) > q || LoadI64(p + 8) < q) return false;
  }
  return true;
}

// ------------------------------------------------------------------ SSE2 --

#if PATHCACHE_KERNELS_X86

namespace {

// SSE2 has no 64-bit compares; synthesize them from 32-bit ops.  Signed
// a > b per 64-bit lane: decide on the high dwords, breaking high-dword
// ties with the borrow sign of the full 64-bit subtraction b - a.
inline __m128i CmpGtI64Sse2(__m128i a, __m128i b) {
  const __m128i sub = _mm_sub_epi64(b, a);
  const __m128i eq = _mm_cmpeq_epi32(a, b);
  const __m128i gt = _mm_cmpgt_epi32(a, b);
  __m128i r = _mm_or_si128(_mm_and_si128(eq, sub), gt);
  r = _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));  // broadcast high dwords
  return _mm_srai_epi32(r, 31);  // sign bit -> full-lane mask
}

inline int Mask2(__m128i m) {
  return _mm_movemask_pd(_mm_castsi128_pd(m));
}

constexpr size_t kSse2Window = 16;

// Narrows [lo, lo+len) with a binary search on `less_than_key` applied to
// a[idx], stopping once the window fits the vector loop.
template <typename Pred>
inline void NarrowWindow(const int64_t* a, size_t* lo, size_t* len,
                         size_t window, const Pred& pred) {
  while (*len > window) {
    const size_t half = *len / 2;
    if (pred(a[*lo + half - 1])) {
      *lo += half;
      *len -= half;
    } else {
      *len = half;
    }
  }
}

}  // namespace

size_t LowerBoundI64Sse2(const int64_t* a, size_t n, int64_t key) {
  size_t lo = 0, len = n;
  NarrowWindow(a, &lo, &len, kSse2Window,
               [key](int64_t v) { return v < key; });
  const __m128i vkey = _mm_set1_epi64x(key);
  size_t cnt = 0, i = 0;
  for (; i + 2 <= len; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + lo + i));
    cnt += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(Mask2(CmpGtI64Sse2(vkey, v)))));
  }
  for (; i < len; ++i) cnt += a[lo + i] < key ? 1 : 0;
  return lo + cnt;
}

size_t UpperBoundI64Sse2(const int64_t* a, size_t n, int64_t key) {
  size_t lo = 0, len = n;
  NarrowWindow(a, &lo, &len, kSse2Window,
               [key](int64_t v) { return v <= key; });
  const __m128i vkey = _mm_set1_epi64x(key);
  size_t gt = 0, i = 0;
  for (; i + 2 <= len; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + lo + i));
    gt += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(Mask2(CmpGtI64Sse2(v, vkey)))));
  }
  for (; i < len; ++i) gt += a[lo + i] > key ? 1 : 0;
  return lo + len - gt;
}

size_t FindFirstBelowSse2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  // Only the contiguous case vectorizes without gathers; strided keys fall
  // back to the scalar scan (bit-identical result).
  if (stride != sizeof(int64_t)) {
    return FindFirstBelowScalar(base, stride, n, bound);
  }
  const int64_t* a = static_cast<const int64_t*>(base);
  const __m128i vb = _mm_set1_epi64x(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const int m = Mask2(CmpGtI64Sse2(vb, v));
    if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (a[i] < bound) return i;
  }
  return n;
}

size_t FindFirstAboveSse2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  if (stride != sizeof(int64_t)) {
    return FindFirstAboveScalar(base, stride, n, bound);
  }
  const int64_t* a = static_cast<const int64_t*>(base);
  const __m128i vb = _mm_set1_epi64x(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const int m = Mask2(CmpGtI64Sse2(v, vb));
    if (m != 0) return i + static_cast<size_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (a[i] > bound) return i;
  }
  return n;
}

#else  // !PATHCACHE_KERNELS_X86: forward so the dispatcher always links.

size_t LowerBoundI64Sse2(const int64_t* a, size_t n, int64_t key) {
  return LowerBoundI64Scalar(a, n, key);
}
size_t UpperBoundI64Sse2(const int64_t* a, size_t n, int64_t key) {
  return UpperBoundI64Scalar(a, n, key);
}
size_t FindFirstBelowSse2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstBelowScalar(base, stride, n, bound);
}
size_t FindFirstAboveSse2(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstAboveScalar(base, stride, n, bound);
}

#endif  // PATHCACHE_KERNELS_X86

// ------------------------------------------------------------------ NEON --

#if defined(__aarch64__)

size_t LowerBoundI64Neon(const int64_t* a, size_t n, int64_t key) {
  size_t lo = 0, len = n;
  while (len > 16) {
    const size_t half = len / 2;
    if (a[lo + half - 1] < key) {
      lo += half;
      len -= half;
    } else {
      len = half;
    }
  }
  const int64x2_t vkey = vdupq_n_s64(key);
  size_t cnt = 0, i = 0;
  for (; i + 2 <= len; i += 2) {
    const int64x2_t v = vld1q_s64(a + lo + i);
    const uint64x2_t m = vcgtq_s64(vkey, v);
    cnt += (vgetq_lane_u64(m, 0) & 1) + (vgetq_lane_u64(m, 1) & 1);
  }
  for (; i < len; ++i) cnt += a[lo + i] < key ? 1 : 0;
  return lo + cnt;
}

size_t UpperBoundI64Neon(const int64_t* a, size_t n, int64_t key) {
  size_t lo = 0, len = n;
  while (len > 16) {
    const size_t half = len / 2;
    if (a[lo + half - 1] <= key) {
      lo += half;
      len -= half;
    } else {
      len = half;
    }
  }
  const int64x2_t vkey = vdupq_n_s64(key);
  size_t gt = 0, i = 0;
  for (; i + 2 <= len; i += 2) {
    const int64x2_t v = vld1q_s64(a + lo + i);
    const uint64x2_t m = vcgtq_s64(v, vkey);
    gt += (vgetq_lane_u64(m, 0) & 1) + (vgetq_lane_u64(m, 1) & 1);
  }
  for (; i < len; ++i) gt += a[lo + i] > key ? 1 : 0;
  return lo + len - gt;
}

size_t FindFirstBelowNeon(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  if (stride != sizeof(int64_t)) {
    return FindFirstBelowScalar(base, stride, n, bound);
  }
  const int64_t* a = static_cast<const int64_t*>(base);
  const int64x2_t vb = vdupq_n_s64(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t m = vcgtq_s64(vb, vld1q_s64(a + i));
    if (vgetq_lane_u64(m, 0) != 0) return i;
    if (vgetq_lane_u64(m, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (a[i] < bound) return i;
  }
  return n;
}

size_t FindFirstAboveNeon(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  if (stride != sizeof(int64_t)) {
    return FindFirstAboveScalar(base, stride, n, bound);
  }
  const int64_t* a = static_cast<const int64_t*>(base);
  const int64x2_t vb = vdupq_n_s64(bound);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t m = vcgtq_s64(vld1q_s64(a + i), vb);
    if (vgetq_lane_u64(m, 0) != 0) return i;
    if (vgetq_lane_u64(m, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (a[i] > bound) return i;
  }
  return n;
}

#else

size_t LowerBoundI64Neon(const int64_t* a, size_t n, int64_t key) {
  return LowerBoundI64Scalar(a, n, key);
}
size_t UpperBoundI64Neon(const int64_t* a, size_t n, int64_t key) {
  return UpperBoundI64Scalar(a, n, key);
}
size_t FindFirstBelowNeon(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstBelowScalar(base, stride, n, bound);
}
size_t FindFirstAboveNeon(const void* base, size_t stride, size_t n,
                          int64_t bound) {
  return FindFirstAboveScalar(base, stride, n, bound);
}

#endif  // __aarch64__

// ---- packed-KV bounds (page-format v3 deinterleaved nodes) ----
//
// With the 8-byte keys dense and the values parallel, a lexicographic
// (key, value) bound decomposes into dense probes: the tier's I64 lower
// bound locates the first candidate; only when it actually landed on an
// equal key (rare — bounds probe between keys far more often than at them)
// is the run's extent found with a second probe confined to the tail, and
// a branchless scalar bound over vals settles the tie.  The common case is
// thus ONE dense key probe, which is where the vector win lives; each tier
// still runs its own key code (unlike the interleaved KV bounds, where
// SSE2/NEON fall back to scalar wholesale).

namespace {

// Branchless (cmov-shaped) lower/upper bound over an ascending uint64
// array — the value tie-break run, usually 0 or 1 elements long.
size_t LowerBoundU64Branchless(const uint64_t* a, size_t n, uint64_t v) {
  size_t lo = 0, len = n;
  while (len > 0) {
    const size_t half = len / 2;
    const bool less = a[lo + half] < v;
    lo = less ? lo + half + 1 : lo;
    len = less ? len - half - 1 : half;
  }
  return lo;
}

size_t UpperBoundU64Branchless(const uint64_t* a, size_t n, uint64_t v) {
  size_t lo = 0, len = n;
  while (len > 0) {
    const size_t half = len / 2;
    const bool le = a[lo + half] <= v;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  return lo;
}

template <size_t (*KeyLb)(const int64_t*, size_t, int64_t),
          size_t (*KeyUb)(const int64_t*, size_t, int64_t)>
size_t LowerBoundKVPackedImpl(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  const size_t lo = KeyLb(keys, n, key);
  if (lo == n || keys[lo] != key) return lo;  // empty equal-key run
  const size_t run = KeyUb(keys + lo, n - lo, key);
  return lo + LowerBoundU64Branchless(vals + lo, run, value);
}

template <size_t (*KeyLb)(const int64_t*, size_t, int64_t),
          size_t (*KeyUb)(const int64_t*, size_t, int64_t)>
size_t UpperBoundKVPackedImpl(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  const size_t lo = KeyLb(keys, n, key);
  if (lo == n || keys[lo] != key) return lo;  // empty equal-key run
  const size_t run = KeyUb(keys + lo, n - lo, key);
  return lo + UpperBoundU64Branchless(vals + lo, run, value);
}

}  // namespace

size_t LowerBoundKVPackedScalar(const int64_t* keys, const uint64_t* vals,
                                size_t n, int64_t key, uint64_t value) {
  return LowerBoundKVPackedImpl<LowerBoundI64Scalar, UpperBoundI64Scalar>(
      keys, vals, n, key, value);
}
size_t UpperBoundKVPackedScalar(const int64_t* keys, const uint64_t* vals,
                                size_t n, int64_t key, uint64_t value) {
  return UpperBoundKVPackedImpl<LowerBoundI64Scalar, UpperBoundI64Scalar>(
      keys, vals, n, key, value);
}
size_t LowerBoundKVPackedSse2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  return LowerBoundKVPackedImpl<LowerBoundI64Sse2, UpperBoundI64Sse2>(
      keys, vals, n, key, value);
}
size_t UpperBoundKVPackedSse2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  return UpperBoundKVPackedImpl<LowerBoundI64Sse2, UpperBoundI64Sse2>(
      keys, vals, n, key, value);
}
size_t LowerBoundKVPackedNeon(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  return LowerBoundKVPackedImpl<LowerBoundI64Neon, UpperBoundI64Neon>(
      keys, vals, n, key, value);
}
size_t UpperBoundKVPackedNeon(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  return UpperBoundKVPackedImpl<LowerBoundI64Neon, UpperBoundI64Neon>(
      keys, vals, n, key, value);
}
size_t LowerBoundKVPackedAvx2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  return LowerBoundKVPackedImpl<LowerBoundI64Avx2, UpperBoundI64Avx2>(
      keys, vals, n, key, value);
}
size_t UpperBoundKVPackedAvx2(const int64_t* keys, const uint64_t* vals,
                              size_t n, int64_t key, uint64_t value) {
  return UpperBoundKVPackedImpl<LowerBoundI64Avx2, UpperBoundI64Avx2>(
      keys, vals, n, key, value);
}

}  // namespace internal

// -------------------------------------------------------------- dispatch --

using internal::AllContain24Scalar;

size_t LowerBoundI64(const int64_t* a, size_t n, int64_t key) {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return internal::LowerBoundI64Avx2(a, n, key);
    case Tier::kSse2:
      return internal::LowerBoundI64Sse2(a, n, key);
    case Tier::kNeon:
      return internal::LowerBoundI64Neon(a, n, key);
    case Tier::kScalar:
      break;
  }
  return internal::LowerBoundI64Scalar(a, n, key);
}

size_t UpperBoundI64(const int64_t* a, size_t n, int64_t key) {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return internal::UpperBoundI64Avx2(a, n, key);
    case Tier::kSse2:
      return internal::UpperBoundI64Sse2(a, n, key);
    case Tier::kNeon:
      return internal::UpperBoundI64Neon(a, n, key);
    case Tier::kScalar:
      break;
  }
  return internal::UpperBoundI64Scalar(a, n, key);
}

size_t LowerBoundKV(const void* recs, size_t n, int64_t key, uint64_t value) {
  // Only AVX2 has a native 64-bit compare; synthesizing the lexicographic
  // KV predicate from SSE2 32-bit ops measured slower than the branchless
  // scalar search at every size (bench_kernels), so kSse2 and kNeon both
  // take the scalar path here.
  if (ActiveTier() == Tier::kAvx2) {
    return internal::LowerBoundKVAvx2(recs, n, key, value);
  }
  return internal::LowerBoundKVScalar(recs, n, key, value);
}

size_t UpperBoundKV(const void* recs, size_t n, int64_t key, uint64_t value) {
  if (ActiveTier() == Tier::kAvx2) {
    return internal::UpperBoundKVAvx2(recs, n, key, value);
  }
  return internal::UpperBoundKVScalar(recs, n, key, value);
}

Tier KvBoundsImplTier(Tier t) {
  // Mirrors the LowerBoundKV/UpperBoundKV dispatch above: only AVX2 has a
  // native 64-bit compare worth using on interleaved records.
  return t == Tier::kAvx2 ? Tier::kAvx2 : Tier::kScalar;
}

Tier KvPackedBoundsImplTier(Tier t) {
  // Deinterleaved keys turn the KV bound into dense I64 probes, which every
  // vector tier implements natively.
  return t;
}

size_t LowerBoundKVPacked(const int64_t* keys, const uint64_t* vals, size_t n,
                          int64_t key, uint64_t value) {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return internal::LowerBoundKVPackedAvx2(keys, vals, n, key, value);
    case Tier::kSse2:
      return internal::LowerBoundKVPackedSse2(keys, vals, n, key, value);
    case Tier::kNeon:
      return internal::LowerBoundKVPackedNeon(keys, vals, n, key, value);
    case Tier::kScalar:
      break;
  }
  return internal::LowerBoundKVPackedScalar(keys, vals, n, key, value);
}

size_t UpperBoundKVPacked(const int64_t* keys, const uint64_t* vals, size_t n,
                          int64_t key, uint64_t value) {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return internal::UpperBoundKVPackedAvx2(keys, vals, n, key, value);
    case Tier::kSse2:
      return internal::UpperBoundKVPackedSse2(keys, vals, n, key, value);
    case Tier::kNeon:
      return internal::UpperBoundKVPackedNeon(keys, vals, n, key, value);
    case Tier::kScalar:
      break;
  }
  return internal::UpperBoundKVPackedScalar(keys, vals, n, key, value);
}

size_t UpperBoundKVStrided(const void* recs, size_t stride, size_t n,
                           int64_t key, uint64_t value) {
  // Log-dominated fan-out search: branchless binary at every tier.
  return internal::BranchlessCount(
      recs, stride, n, [key, value](const void* p) {
        return internal::RecLessEq(p, key, value);
      });
}

size_t FindFirstBelow(const void* base, size_t stride, size_t n,
                      int64_t bound) {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return internal::FindFirstBelowAvx2(base, stride, n, bound);
    case Tier::kSse2:
      return internal::FindFirstBelowSse2(base, stride, n, bound);
    case Tier::kNeon:
      return internal::FindFirstBelowNeon(base, stride, n, bound);
    case Tier::kScalar:
      break;
  }
  return internal::FindFirstBelowScalar(base, stride, n, bound);
}

size_t FindFirstAbove(const void* base, size_t stride, size_t n,
                      int64_t bound) {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return internal::FindFirstAboveAvx2(base, stride, n, bound);
    case Tier::kSse2:
      return internal::FindFirstAboveSse2(base, stride, n, bound);
    case Tier::kNeon:
      return internal::FindFirstAboveNeon(base, stride, n, bound);
    case Tier::kScalar:
      break;
  }
  return internal::FindFirstAboveScalar(base, stride, n, bound);
}

bool AllContain24(const void* recs, size_t n, int64_t q) {
  if (ActiveTier() == Tier::kAvx2) {
    return internal::AllContain24Avx2(recs, n, q);
  }
  return AllContain24Scalar(recs, n, q);
}

}  // namespace kernels
}  // namespace pathcache
