// In-page search kernels: branchless / SIMD primitives over the sorted key
// arrays the external structures probe on every query.
//
// Two families, with different semantics:
//
//  * Sorted-array bounds (LowerBound*/UpperBound*): exactly
//    std::lower_bound / std::upper_bound on a sorted array — a hybrid of
//    branchless binary narrowing and a vectorized count inside the final
//    window.  Input must be sorted (same precondition as the std
//    algorithms); used by B+-tree node search.
//
//  * First-match scans (FindFirst*): the literal early-exit loop "first
//    index whose key crosses the bound", vectorized block-at-a-time with an
//    exact first-set-lane exit.  These have well-defined results on ANY
//    input, sorted or not — important because they run over record pages
//    read from untrusted storage, where a corrupt (unsorted) page must
//    yield the same scan prefix on every tier so counted I/O stays
//    tier-independent.  Used by the tail-key directory probes and the
//    in-page stop checks of all four structures.
//
// Every function dispatches on kernels::ActiveTier() (see dispatch.h) and
// every tier returns bit-identical results; tests/kernels_test.cpp forces
// each tier through exhaustive (n <= 64) and randomized differential sweeps
// against the std algorithms / naive loops.
//
// Alignment: all kernels use alignment-free loads, so they are correct on
// any pointer; the 64-byte frame alignment guaranteed by io/aligned.h makes
// the common case fast, never correct.

#ifndef PATHCACHE_KERNELS_SEARCH_H_
#define PATHCACHE_KERNELS_SEARCH_H_

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.h"

namespace pathcache {
namespace kernels {

/// First index i with a[i] >= key; a[0..n) ascending.  == std::lower_bound.
size_t LowerBoundI64(const int64_t* a, size_t n, int64_t key);

/// First index i with a[i] > key; a[0..n) ascending.  == std::upper_bound.
size_t UpperBoundI64(const int64_t* a, size_t n, int64_t key);

/// Lexicographic bounds over packed 16-byte {int64_t key, uint64_t value}
/// records (BTreeEntry layout), ordered by (key, value).  `recs` points at
/// the first record; records are contiguous.
size_t LowerBoundKV(const void* recs, size_t n, int64_t key, uint64_t value);
size_t UpperBoundKV(const void* recs, size_t n, int64_t key, uint64_t value);

/// Lexicographic bounds over DEINTERLEAVED records: `keys[0..n)` and
/// `vals[0..n)` are parallel arrays sorted ascending by (key, value) — the
/// shape of a page-format v3 packed node (io/page_codec.h), where the keys
/// sit eight to a cache line instead of one per record.  Every tier
/// composes its dense I64 key bounds (the fast part — the probe that used
/// to stride across records) with a branchless value tie-break confined to
/// the equal-key run, so unlike the interleaved KV bounds the SSE2/NEON
/// tiers genuinely vectorize here.
size_t LowerBoundKVPacked(const int64_t* keys, const uint64_t* vals, size_t n,
                          int64_t key, uint64_t value);
size_t UpperBoundKVPacked(const int64_t* keys, const uint64_t* vals, size_t n,
                          int64_t key, uint64_t value);

/// Dispatch introspection: the tier whose code the interleaved KV bounds
/// (LowerBoundKV/UpperBoundKV) actually run when `t` is active.  kSse2 and
/// kNeon deliberately route to kScalar — the lexicographic predicate
/// synthesized from their narrower compares measured slower than branchless
/// scalar at every size — and tests pin that table so a regression
/// re-enabling a slow path fails loudly instead of silently.
Tier KvBoundsImplTier(Tier t);

/// Same question for the packed-key KV bounds: every tier runs its own
/// code (the key probes reuse the tier's dense I64 kernels).
Tier KvPackedBoundsImplTier(Tier t);

/// Branchless lexicographic upper bound over records of `stride` bytes
/// whose first 16 bytes are {int64_t key, uint64_t value} (e.g. the B+-tree
/// 24-byte ChildEntry).  Strided records are binary-searched branchlessly
/// at every tier — fan-out search is log-dominated, so vector width buys
/// nothing there.
size_t UpperBoundKVStrided(const void* recs, size_t stride, size_t n,
                           int64_t key, uint64_t value);

/// First index i whose int64 key at (base + i*stride) is < bound
/// (FindFirstBelow) or > bound (FindFirstAbove); n if none.  Pass
/// stride = sizeof(int64_t) for a plain array, or point `base` at the key
/// field inside the first record (e.g. &recs[0].y) for record scans.
size_t FindFirstBelow(const void* base, size_t stride, size_t n,
                      int64_t bound);
size_t FindFirstAbove(const void* base, size_t stride, size_t n,
                      int64_t bound);

/// True when every 24-byte record {int64_t lo, int64_t hi, ...} in
/// recs[0..n) satisfies lo <= q <= hi (vacuously true for n == 0).  The
/// fast path of segment-tree cover lists, where the structure invariant
/// makes "all records qualify" the common case.
bool AllContain24(const void* recs, size_t n, int64_t q);

}  // namespace kernels
}  // namespace pathcache

#endif  // PATHCACHE_KERNELS_SEARCH_H_
