// ShardedStore: N independent single-shard serving stacks behind one
// key-range partition.
//
// Each shard owns its whole device stack — a page device (an in-memory
// device by default, or an injected one so tests can put a FaultPageDevice
// under exactly one shard), a SharedBufferPool holding that shard's slice
// of the total buffer budget (pool_pages_total / N pages; the
// cache-adaptivity knob from the dynamic-optimality discussion in
// PAPERS.md), and a QueryEngine with its own workers and bounded queue.
// Nothing is shared between shards, so a fault, a slow device, or a full
// queue on one shard cannot touch another — the isolation ShardRouter's
// partial-failure semantics are built on.
//
// Records partition by their x key (points) or replicate across every
// intersecting shard (intervals): a stab key lives in exactly one shard, so
// stabbing queries route to one engine and merged results never need
// deduplication.  Structure ids are aligned across shards — Add* returns
// one id valid on every shard; StructureInfo maps it to the per-shard
// engine ids (-1 where the shard's slice of the data was empty).
//
// Setup-phase object: Add* / SetTenantQuota / Start single-threaded, then
// the engines serve concurrently until Stop.

#ifndef PATHCACHE_SHARD_SHARDED_STORE_H_
#define PATHCACHE_SHARD_SHARDED_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "io/mem_page_device.h"
#include "io/page_device.h"
#include "io/shared_buffer_pool.h"
#include "serve/query_engine.h"
#include "shard/shard_map.h"
#include "util/geometry.h"
#include "util/status.h"

namespace pathcache {

struct ShardedStoreOptions {
  uint32_t shards = 4;
  /// Total buffer-pool pages, split evenly across shards (each shard's pool
  /// gets pool_pages_total / shards).  0 makes every pool a pass-through.
  size_t pool_pages_total = 1024;
  /// Per-shard QueryEngine sizing.
  uint32_t engine_workers = 2;
  size_t queue_capacity = 256;
  uint32_t batch_size = 8;
  /// Deadline clock shared by every shard engine; nullptr = SystemClock.
  Clock* clock = nullptr;
  /// Explicit partition cuts (ascending, at most shards-1 of them).  Empty
  /// derives equal-count cuts from the first Add*'s keys.
  std::vector<int64_t> cuts;
  /// Per-shard device override (size must equal `shards`), not owned; tests
  /// use it to slide a FaultPageDevice under a single shard.  Empty = the
  /// store owns one MemPageDevice per shard.
  std::vector<PageDevice*> devices;
};

class ShardedStore {
 public:
  /// Structure-id alignment across shards: `engine_id[k]` is the id this
  /// structure got on shard k's engine, or -1 when shard k holds none of
  /// its records (the router skips those shards; they contribute nothing).
  struct StructureInfo {
    QueryKind kind = QueryKind::kTwoSided;
    std::vector<int32_t> engine_id;
  };

  explicit ShardedStore(ShardedStoreOptions opts = {});

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;
  ~ShardedStore();

  /// Partition `pts` by x and build + register an ExternalPst per non-empty
  /// shard.  The first Add* fixes the shard map (from these keys unless
  /// options gave explicit cuts).  Returns the cross-shard structure id.
  Result<uint32_t> AddTwoSided(std::span<const Point> pts);

  /// Same partitioning, ThreeSidedPst per shard.
  Result<uint32_t> AddThreeSided(std::span<const Point> pts);

  /// Replicate each interval into every shard whose key range it intersects
  /// and build an ExtSegmentTree per non-empty shard.  A stab key belongs
  /// to exactly one shard, so replication never produces duplicate results.
  Result<uint32_t> AddStabbing(std::span<const Interval> ivs);

  /// Applies the quota on every shard engine (each shard admits the tenant
  /// against its own queue).  Setup-phase only.
  Status SetTenantQuota(uint32_t tenant, uint64_t tokens);

  /// Starts every shard engine.
  Status Start();

  /// Stops every shard engine.  Idempotent.
  void Stop();

  const ShardMap& map() const { return map_; }
  uint32_t shards() const { return opts_.shards; }
  size_t num_structures() const { return infos_.size(); }
  const StructureInfo& info(uint32_t id) const { return infos_[id]; }

  QueryEngine* engine(uint32_t shard) { return engines_[shard].get(); }
  SharedBufferPool* pool(uint32_t shard) { return pools_[shard].get(); }
  PageDevice* device(uint32_t shard) { return devices_[shard]; }
  Clock* clock() const { return clock_; }

 private:
  /// Fixes the shard map on first use: explicit cuts win, otherwise
  /// equal-count cuts over `keys`.
  void EnsureMap(std::vector<int64_t> keys);
  template <typename Structure>
  Result<uint32_t> AddPartitioned(QueryKind kind,
                                  std::vector<std::vector<Point>> parts);

  ShardedStoreOptions opts_;
  Clock* clock_;
  ShardMap map_;
  bool map_fixed_ = false;

  std::vector<std::unique_ptr<MemPageDevice>> owned_devices_;
  std::vector<PageDevice*> devices_;  // size shards(); owned or injected
  std::vector<std::unique_ptr<SharedBufferPool>> pools_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::vector<StructureInfo> infos_;
};

}  // namespace pathcache

#endif  // PATHCACHE_SHARD_SHARDED_STORE_H_
