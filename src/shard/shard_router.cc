#include "shard/shard_router.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pathcache {
namespace {

/// Rebuilds `st` with a "shard K: " message prefix, preserving its code so
/// callers (and the wire layer) still see kOverloaded / kDeadlineExceeded /
/// kIoError through the router.
Status PrefixShard(uint32_t shard, const Status& st) {
  std::string msg =
      "shard " + std::to_string(shard) + ": " + std::string(st.message());
  switch (st.code()) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kIoError:
      return Status::IoError(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kOverloaded:
      return Status::Overloaded(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    default:
      return Status::Corruption(std::move(msg));
  }
}

void Accumulate(IoStats* a, const IoStats& b) {
  a->reads += b.reads;
  a->writes += b.writes;
  a->allocs += b.allocs;
  a->frees += b.frees;
  a->batch_reads += b.batch_reads;
  a->syncs += b.syncs;
}

/// Gather state shared by every in-flight sub-query of one routed request.
/// The last slice to land (under mu) finalizes and fires `done` outside the
/// lock, so a completion callback can re-submit without deadlocking.
struct Gather {
  std::mutex mu;
  QueryResult merged;
  size_t pending = 0;
  QueryDoneCallback done;
  Clock* clock = nullptr;
  uint64_t start_micros = 0;
};

void CompleteSlice(const std::shared_ptr<Gather>& g, uint32_t shard,
                   QueryResult sub) {
  QueryDoneCallback fire;
  QueryResult out;
  {
    std::lock_guard<std::mutex> lock(g->mu);
    ShardSlice slice;
    slice.shard = shard;
    slice.status = sub.status;
    slice.io = sub.io;
    slice.latency_micros = sub.latency_micros;
    g->merged.shards.push_back(std::move(slice));
    if (sub.status.ok()) {
      g->merged.points.insert(g->merged.points.end(), sub.points.begin(),
                              sub.points.end());
      g->merged.intervals.insert(g->merged.intervals.end(),
                                 sub.intervals.begin(), sub.intervals.end());
      Accumulate(&g->merged.io, sub.io);
      g->merged.stats += sub.stats;
    }
    if (--g->pending != 0) return;
    // Canonical, shard-count-independent order: the differential oracle
    // compares this byte-for-byte against an unsharded twin.
    std::sort(g->merged.shards.begin(), g->merged.shards.end(),
              [](const ShardSlice& a, const ShardSlice& b) {
                return a.shard < b.shard;
              });
    std::sort(g->merged.points.begin(), g->merged.points.end(),
              [](const Point& a, const Point& b) {
                return std::tie(a.x, a.y, a.id) < std::tie(b.x, b.y, b.id);
              });
    std::sort(g->merged.intervals.begin(), g->merged.intervals.end(),
              [](const Interval& a, const Interval& b) {
                return std::tie(a.lo, a.hi, a.id) <
                       std::tie(b.lo, b.hi, b.id);
              });
    for (const ShardSlice& s : g->merged.shards) {
      if (!s.status.ok()) {
        g->merged.status = PrefixShard(s.shard, s.status);
        break;
      }
    }
    g->merged.latency_micros = g->clock->NowMicros() - g->start_micros;
    fire = std::move(g->done);
    out = std::move(g->merged);
  }
  fire(std::move(out));
}

}  // namespace

Status ShardRouter::Submit(uint32_t structure_id, const ServeQuery& query,
                           QueryDoneCallback done, uint64_t deadline_micros,
                           uint32_t tenant) {
  if (structure_id >= store_->num_structures()) {
    return Status::InvalidArgument("unknown structure id " +
                                   std::to_string(structure_id));
  }
  const ShardedStore::StructureInfo& info = store_->info(structure_id);
  const ShardMap& map = store_->map();

  uint32_t first = 0;
  uint32_t last = 0;
  switch (info.kind) {
    case QueryKind::kStabbing:
      first = last = map.ShardOf(query.stab);
      break;
    case QueryKind::kTwoSided: {
      auto [f, l] = map.Overlapping(query.two_sided.x_min,
                                    std::numeric_limits<int64_t>::max());
      first = f;
      last = l;
      break;
    }
    case QueryKind::kThreeSided: {
      if (query.three_sided.x_min > query.three_sided.x_max) {
        first = 1;
        last = 0;  // empty range
        break;
      }
      auto [f, l] =
          map.Overlapping(query.three_sided.x_min, query.three_sided.x_max);
      first = f;
      last = l;
      break;
    }
  }

  std::vector<uint32_t> targets;
  for (uint32_t k = first; k <= last && k < store_->shards(); ++k) {
    if (info.engine_id[k] >= 0) targets.push_back(k);
  }

  const uint64_t start = clock()->NowMicros();
  if (targets.empty()) {
    QueryResult empty;
    done(std::move(empty));
    return Status::OK();
  }

  uint64_t sub_deadline = deadline_micros;
  if (opts_.per_shard_budget_micros != 0) {
    const uint64_t budget_deadline = start + opts_.per_shard_budget_micros;
    if (sub_deadline == 0 || budget_deadline < sub_deadline) {
      sub_deadline = budget_deadline;
    }
  }

  auto g = std::make_shared<Gather>();
  g->pending = targets.size();
  g->done = std::move(done);
  g->clock = clock();
  g->start_micros = start;

  for (uint32_t k : targets) {
    const uint32_t engine_id = static_cast<uint32_t>(info.engine_id[k]);
    Status st = store_->engine(k)->Submit(
        engine_id, query,
        [g, k](QueryResult sub) { CompleteSlice(g, k, std::move(sub)); },
        sub_deadline, tenant);
    if (!st.ok()) {
      // A synchronous bounce (full queue, tenant quota) becomes a failed
      // slice so the gather always completes and the caller still gets the
      // healthy shards' answer.
      QueryResult bounced;
      bounced.status = std::move(st);
      CompleteSlice(g, k, std::move(bounced));
    }
  }
  return Status::OK();
}

Status ShardRouter::SubmitUpdate(uint32_t, std::span<const DynamicUpdate>,
                                 QueryDoneCallback, uint64_t, uint32_t) {
  return Status::NotSupported("routed updates are not supported");
}

}  // namespace pathcache
