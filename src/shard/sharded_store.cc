#include "shard/sharded_store.h"

#include <utility>

#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "core/three_sided.h"

namespace pathcache {

ShardedStore::ShardedStore(ShardedStoreOptions opts)
    : opts_(std::move(opts)),
      clock_(opts_.clock != nullptr ? opts_.clock : SystemClock::Default()) {
  if (opts_.shards == 0) opts_.shards = 1;
  if (!opts_.cuts.empty()) {
    map_ = ShardMap(opts_.cuts);
    map_fixed_ = true;
    // Explicit cuts define the shard count; an options mismatch would
    // silently misroute, so the wider of the two wins and extra shards
    // just stay empty.
    if (map_.shards() > opts_.shards) opts_.shards = map_.shards();
  }
  devices_.resize(opts_.shards, nullptr);
  if (!opts_.devices.empty() && opts_.devices.size() == opts_.shards) {
    for (uint32_t k = 0; k < opts_.shards; ++k) devices_[k] = opts_.devices[k];
  } else {
    for (uint32_t k = 0; k < opts_.shards; ++k) {
      owned_devices_.push_back(std::make_unique<MemPageDevice>());
      devices_[k] = owned_devices_.back().get();
    }
  }
  const size_t per_shard_pool = opts_.pool_pages_total / opts_.shards;
  QueryEngineOptions eopts;
  eopts.num_workers = opts_.engine_workers;
  eopts.queue_capacity = opts_.queue_capacity;
  eopts.batch_size = opts_.batch_size;
  eopts.clock = clock_;
  for (uint32_t k = 0; k < opts_.shards; ++k) {
    pools_.push_back(
        std::make_unique<SharedBufferPool>(devices_[k], per_shard_pool));
    engines_.push_back(std::make_unique<QueryEngine>(pools_.back().get(),
                                                     eopts));
  }
}

ShardedStore::~ShardedStore() { Stop(); }

void ShardedStore::EnsureMap(std::vector<int64_t> keys) {
  if (map_fixed_) return;
  map_ = ShardMap::FromKeys(std::move(keys), opts_.shards);
  map_fixed_ = true;
}

template <typename Structure>
Result<uint32_t> ShardedStore::AddPartitioned(
    QueryKind kind, std::vector<std::vector<Point>> parts) {
  StructureInfo info;
  info.kind = kind;
  info.engine_id.assign(opts_.shards, -1);
  for (uint32_t k = 0; k < opts_.shards; ++k) {
    if (parts[k].empty()) continue;
    Structure s(pools_[k].get());
    PC_RETURN_IF_ERROR(s.Build(std::move(parts[k])));
    PC_ASSIGN_OR_RETURN(PageId manifest, s.Save());
    PC_ASSIGN_OR_RETURN(uint32_t id, engines_[k]->AddStructure(manifest));
    info.engine_id[k] = static_cast<int32_t>(id);
  }
  infos_.push_back(std::move(info));
  return static_cast<uint32_t>(infos_.size() - 1);
}

Result<uint32_t> ShardedStore::AddTwoSided(std::span<const Point> pts) {
  std::vector<int64_t> keys;
  keys.reserve(pts.size());
  for (const Point& p : pts) keys.push_back(p.x);
  EnsureMap(std::move(keys));
  std::vector<std::vector<Point>> parts(opts_.shards);
  for (const Point& p : pts) parts[map_.ShardOf(p.x)].push_back(p);
  return AddPartitioned<ExternalPst>(QueryKind::kTwoSided, std::move(parts));
}

Result<uint32_t> ShardedStore::AddThreeSided(std::span<const Point> pts) {
  std::vector<int64_t> keys;
  keys.reserve(pts.size());
  for (const Point& p : pts) keys.push_back(p.x);
  EnsureMap(std::move(keys));
  std::vector<std::vector<Point>> parts(opts_.shards);
  for (const Point& p : pts) parts[map_.ShardOf(p.x)].push_back(p);
  return AddPartitioned<ThreeSidedPst>(QueryKind::kThreeSided,
                                       std::move(parts));
}

Result<uint32_t> ShardedStore::AddStabbing(std::span<const Interval> ivs) {
  std::vector<int64_t> keys;
  keys.reserve(ivs.size());
  for (const Interval& iv : ivs) keys.push_back(iv.lo);
  EnsureMap(std::move(keys));
  std::vector<std::vector<Interval>> parts(opts_.shards);
  for (const Interval& iv : ivs) {
    const auto [first, last] = map_.Overlapping(iv.lo, iv.hi);
    for (uint32_t k = first; k <= last; ++k) parts[k].push_back(iv);
  }
  StructureInfo info;
  info.kind = QueryKind::kStabbing;
  info.engine_id.assign(opts_.shards, -1);
  for (uint32_t k = 0; k < opts_.shards; ++k) {
    if (parts[k].empty()) continue;
    ExtSegmentTree st(pools_[k].get());
    PC_RETURN_IF_ERROR(st.Build(std::move(parts[k])));
    PC_ASSIGN_OR_RETURN(PageId manifest, st.Save());
    PC_ASSIGN_OR_RETURN(uint32_t id, engines_[k]->AddStructure(manifest));
    info.engine_id[k] = static_cast<int32_t>(id);
  }
  infos_.push_back(std::move(info));
  return static_cast<uint32_t>(infos_.size() - 1);
}

Status ShardedStore::SetTenantQuota(uint32_t tenant, uint64_t tokens) {
  for (auto& e : engines_) {
    PC_RETURN_IF_ERROR(e->SetTenantQuota(tenant, tokens));
  }
  return Status::OK();
}

Status ShardedStore::Start() {
  for (auto& e : engines_) {
    PC_RETURN_IF_ERROR(e->Start());
  }
  return Status::OK();
}

void ShardedStore::Stop() {
  for (auto& e : engines_) e->Stop();
}

}  // namespace pathcache
