// ShardMap: the key-range partition behind ShardedStore and ShardRouter.
//
// The key space splits into N contiguous ranges by N-1 ascending cut keys;
// shard i serves keys k with cuts[i-1] <= k < cuts[i] (first and last ranges
// unbounded below/above).  Contiguity is what makes routing cheap AND
// partial: a stab lands in exactly one shard, and a [lo, hi] range
// intersects exactly the consecutive run Overlapping() returns — never a
// scatter to all N.
//
// Header-only and immutable after construction, so every router thread can
// read it without synchronization.

#ifndef PATHCACHE_SHARD_SHARD_MAP_H_
#define PATHCACHE_SHARD_SHARD_MAP_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace pathcache {

class ShardMap {
 public:
  /// A single-shard map: everything routes to shard 0.
  ShardMap() = default;

  /// Explicit cuts (must be strictly ascending); shards() == cuts.size()+1.
  explicit ShardMap(std::vector<int64_t> cuts) : cuts_(std::move(cuts)) {}

  /// Equal-count cuts from a key sample: sorts a copy and picks the keys at
  /// the s/N record boundaries, so each shard holds roughly keys.size()/N
  /// of the sample.  Duplicate boundary keys collapse (a key lives in
  /// exactly one shard), which can leave trailing shards empty — the store
  /// marks those and the router skips them.
  static ShardMap FromKeys(std::vector<int64_t> keys, uint32_t shards) {
    if (shards <= 1 || keys.empty()) return ShardMap();
    std::sort(keys.begin(), keys.end());
    std::vector<int64_t> cuts;
    cuts.reserve(shards - 1);
    for (uint32_t s = 1; s < shards; ++s) {
      const int64_t cut = keys[keys.size() * s / shards];
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    return ShardMap(std::move(cuts));
  }

  uint32_t shards() const { return static_cast<uint32_t>(cuts_.size()) + 1; }

  /// The unique shard owning `key`: the number of cuts <= key.
  uint32_t ShardOf(int64_t key) const {
    return static_cast<uint32_t>(
        std::upper_bound(cuts_.begin(), cuts_.end(), key) - cuts_.begin());
  }

  /// The inclusive shard range [first, last] intersecting [lo, hi].
  /// Requires lo <= hi.
  std::pair<uint32_t, uint32_t> Overlapping(int64_t lo, int64_t hi) const {
    return {ShardOf(lo), ShardOf(hi)};
  }

  const std::vector<int64_t>& cuts() const { return cuts_; }

 private:
  std::vector<int64_t> cuts_;
};

}  // namespace pathcache

#endif  // PATHCACHE_SHARD_SHARD_MAP_H_
