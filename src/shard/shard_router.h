// ShardRouter: scatter-gather QueryService over a ShardedStore.
//
// Routing uses the store's contiguous key-range map, so a query touches the
// minimum set of shards its predicate can intersect:
//
//   stabbing      -> exactly ShardOf(stab)
//   two-sided     -> Overlapping(x_min, INT64_MAX)   (open above in x)
//   three-sided   -> Overlapping(x_min, x_max)
//
// Shards whose slice of the structure is empty (engine_id -1) are skipped
// outright.  Each routed sub-query runs on its shard's own engine with a
// per-shard deadline — the tighter of the caller's absolute deadline and
// now + per_shard_budget_micros — so one slow or faulted shard can neither
// hang the merged request nor silently shorten its answer: the shard's
// typed Status lands in QueryResult::shards[k] while the healthy shards'
// records still merge.  The merged status is OK only when every slice is
// OK; otherwise it mirrors the first failing slice ("shard K: ..."),
// keeping the code so the wire layer's overload/deadline mapping still
// applies.
//
// Merged points sort by (x, y, id) and intervals by (lo, hi, id) — a
// canonical order independent of shard count, which is what lets the
// differential oracle demand byte-identical answers from a sharded store
// and its unsharded twin.
//
// Thread-safety: Submit may be called from any thread after the store
// Start()s; completion runs on whichever shard engine finishes last.

#ifndef PATHCACHE_SHARD_SHARD_ROUTER_H_
#define PATHCACHE_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <span>

#include "serve/query_service.h"
#include "shard/sharded_store.h"
#include "util/status.h"

namespace pathcache {

struct ShardRouterOptions {
  /// Per-shard time budget in microseconds, applied as an absolute deadline
  /// of now + budget on each routed sub-query (tightened further by the
  /// caller's own deadline if that comes sooner).  0 = no router-imposed
  /// budget.
  uint64_t per_shard_budget_micros = 0;
};

class ShardRouter final : public QueryService {
 public:
  explicit ShardRouter(ShardedStore* store, ShardRouterOptions opts = {})
      : store_(store), opts_(opts) {}

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Scatters to the shards the query can intersect and gathers one merged
  /// QueryResult with a per-shard ShardSlice breakdown.  When no shard
  /// holds intersecting records, `done` fires inline with an empty OK
  /// result.  Synchronous per-shard rejections (e.g. a full queue) become
  /// failed slices, never a lost callback.
  Status Submit(uint32_t structure_id, const ServeQuery& query,
                QueryDoneCallback done, uint64_t deadline_micros = 0,
                uint32_t tenant = 0) override;

  /// Routed updates are not supported yet (dynamic structures are
  /// registered per-engine); returns kNotSupported.
  Status SubmitUpdate(uint32_t structure_id,
                      std::span<const DynamicUpdate> updates,
                      QueryDoneCallback done, uint64_t deadline_micros = 0,
                      uint32_t tenant = 0) override;

  size_t num_structures() const override { return store_->num_structures(); }
  QueryKind structure_kind(uint32_t id) const override {
    return store_->info(id).kind;
  }
  bool structure_dynamic(uint32_t) const override { return false; }
  Clock* clock() const override { return store_->clock(); }

 private:
  ShardedStore* store_;
  ShardRouterOptions opts_;
};

}  // namespace pathcache

#endif  // PATHCACHE_SHARD_SHARD_ROUTER_H_
