// In-core interval tree (Edelsbrunner) for stabbing queries: a balanced tree
// of center points; intervals containing a node's center live in two sorted
// lists (ascending lo, descending hi); others recurse left/right.  Query
// O(log n + t), space O(n).

#ifndef PATHCACHE_INCORE_INTERVAL_TREE_H_
#define PATHCACHE_INCORE_INTERVAL_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/geometry.h"

namespace pathcache {

class IntervalTree {
 public:
  IntervalTree() = default;
  explicit IntervalTree(std::span<const Interval> intervals) {
    Build(intervals);
  }

  void Build(std::span<const Interval> intervals);

  /// Appends every interval containing q to `out`.
  void Stab(int64_t q, std::vector<Interval>* out) const;

  size_t size() const { return num_intervals_; }

 private:
  struct Node {
    int64_t center = 0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<Interval> by_lo;  // intervals crossing center, lo ascending
    std::vector<Interval> by_hi;  // same intervals, hi descending
  };

  int32_t BuildRec(std::vector<Interval> pool, std::span<const int64_t> pts,
                   size_t plo, size_t phi);

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t num_intervals_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_INCORE_INTERVAL_TREE_H_
