#include "incore/dynamic_pst.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace pathcache {

namespace {
constexpr double kAlpha = 0.7;  // scapegoat weight-balance factor
}

DynamicPrioritySearchTree::DynamicPrioritySearchTree(
    std::span<const Point> points) {
  for (const Point& p : points) Insert(p);
}

int32_t DynamicPrioritySearchTree::NewNode() {
  if (!free_list_.empty()) {
    int32_t idx = free_list_.back();
    free_list_.pop_back();
    nodes_[idx] = Node{};
    return idx;
  }
  nodes_.push_back(Node{});
  return static_cast<int32_t>(nodes_.size() - 1);
}

void DynamicPrioritySearchTree::FreeNode(int32_t idx) {
  free_list_.push_back(idx);
}

void DynamicPrioritySearchTree::PushDown(int32_t from, Point p) {
  int32_t v = from;
  for (;;) {
    Node& nd = nodes_[v];
    if (!nd.has_pt) {
      nd.pt = p;
      nd.has_pt = true;
      return;
    }
    if (StrongerY(p, nd.pt)) std::swap(p, nd.pt);
    if (nd.is_leaf) {
      // Unique keys make this unreachable: the only point whose route ends
      // here shares this leaf's key.  Overwrite defensively.
      nd.pt = p;
      return;
    }
    v = KeyLess(p.x, p.id, nd.key_x, nd.key_id) ||
                (p.x == nd.key_x && p.id == nd.key_id)
            ? nd.left
            : nd.right;
  }
}

void DynamicPrioritySearchTree::PullUp(int32_t v) {
  // nodes_[v].has_pt was just cleared; refill from the stronger child,
  // cascading the hole downward until it reaches slot-free territory.
  int32_t cur = v;
  for (;;) {
    Node& nd = nodes_[cur];
    if (nd.is_leaf) return;
    int32_t l = nd.left, r = nd.right;
    int32_t pick = -1;
    if (l >= 0 && nodes_[l].has_pt) pick = l;
    if (r >= 0 && nodes_[r].has_pt &&
        (pick < 0 || StrongerY(nodes_[r].pt, nodes_[pick].pt))) {
      pick = r;
    }
    if (pick < 0) return;
    nd.pt = nodes_[pick].pt;
    nd.has_pt = true;
    nodes_[pick].has_pt = false;
    cur = pick;
  }
}

void DynamicPrioritySearchTree::Insert(const Point& p) {
  if (root_ < 0) {
    root_ = NewNode();
    Node& nd = nodes_[root_];
    nd.key_x = p.x;
    nd.key_id = p.id;
    nd.pt = p;
    nd.has_pt = true;
    n_ = leaf_count_ = 1;
    return;
  }

  // Descend to the leaf position for (p.x, p.id), recording the path.
  std::vector<int32_t> path;
  int32_t v = root_;
  for (;;) {
    path.push_back(v);
    Node& nd = nodes_[v];
    if (nd.is_leaf) break;
    v = (KeyLess(p.x, p.id, nd.key_x, nd.key_id) ||
         (p.x == nd.key_x && p.id == nd.key_id))
            ? nd.left
            : nd.right;
  }

  Node& leaf = nodes_[v];
  if (leaf.key_x == p.x && leaf.key_id == p.id) {
    // Same key: replace the existing point (erase + reinsert semantics).
    for (int32_t u : path) {
      if (nodes_[u].has_pt && nodes_[u].pt.x == p.x &&
          nodes_[u].pt.id == p.id) {
        nodes_[u].has_pt = false;
        PullUp(u);
        break;
      }
    }
    PushDown(root_, p);
    return;
  }

  // Split the leaf: a new internal node with the two keyed leaves.  The old
  // leaf's point is hoisted into the internal node to preserve the
  // top-down-fill invariant (an empty slot never has a nonempty
  // descendant), which is what makes parking a pushed-down point at the
  // first empty slot heap-safe.
  int32_t nl = NewNode();
  int32_t ni = NewNode();
  {
    Node& newleaf = nodes_[nl];
    newleaf.key_x = p.x;
    newleaf.key_id = p.id;
    Node& internal = nodes_[ni];
    internal.is_leaf = false;
    internal.leaves = 2;
    const bool p_smaller = KeyLess(p.x, p.id, nodes_[v].key_x,
                                   nodes_[v].key_id);
    internal.left = p_smaller ? nl : v;
    internal.right = p_smaller ? v : nl;
    const Node& lchild = nodes_[internal.left];
    internal.key_x = lchild.key_x;
    internal.key_id = lchild.key_id;
    Node& old_leaf = nodes_[v];
    if (old_leaf.has_pt) {
      internal.pt = old_leaf.pt;
      internal.has_pt = true;
      old_leaf.has_pt = false;
    }
  }
  if (path.size() == 1) {
    root_ = ni;
  } else {
    Node& parent = nodes_[path[path.size() - 2]];
    (parent.left == v ? parent.left : parent.right) = ni;
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) ++nodes_[path[i]].leaves;
  ++n_;
  ++leaf_count_;

  PushDown(root_, p);

  // Scapegoat rebalance when the insertion went too deep.
  const double limit =
      std::log(static_cast<double>(std::max<size_t>(leaf_count_, 2))) /
          std::log(1.0 / kAlpha) +
      2.0;
  if (static_cast<double>(path.size()) > limit) {
    // Find the highest weight-unbalanced node on the path and rebuild it.
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const Node& nd = nodes_[path[i]];
      const uint32_t child_leaves = nodes_[path[i + 1]].leaves;
      if (static_cast<double>(child_leaves) >
          kAlpha * static_cast<double>(nd.leaves)) {
        int32_t parent = (i == 0) ? -1 : path[i - 1];
        int32_t rebuilt;
        {
          std::vector<Point> pts;
          std::vector<std::pair<int64_t, uint64_t>> keys;
          CollectSubtree(path[i], &pts, &keys, /*free_nodes=*/true);
          std::sort(keys.begin(), keys.end());
          rebuilt = BuildBalanced(keys, 0, keys.size());
          for (const Point& q : pts) PushDown(rebuilt, q);
        }
        if (parent < 0) {
          root_ = rebuilt;
        } else {
          Node& pn = nodes_[parent];
          (pn.left == path[i] ? pn.left : pn.right) = rebuilt;
        }
        ++rebuilds_;
        break;
      }
    }
  }
}

bool DynamicPrioritySearchTree::Erase(const Point& p) {
  if (root_ < 0) return false;
  // Locate the slot holding p along the route to its leaf.
  std::vector<int32_t> path;
  int32_t holder = -1;
  int32_t v = root_;
  for (;;) {
    Node& nd = nodes_[v];
    path.push_back(v);
    if (nd.has_pt && nd.pt == p) {
      holder = v;
      break;
    }
    if (nd.has_pt && StrongerY(p, nd.pt)) return false;  // heap prune
    if (nd.is_leaf) return false;
    v = (KeyLess(p.x, p.id, nd.key_x, nd.key_id) ||
         (p.x == nd.key_x && p.id == nd.key_id))
            ? nd.left
            : nd.right;
  }
  nodes_[holder].has_pt = false;
  PullUp(holder);

  // Remove the leaf keyed (p.x, p.id): continue the descent to it.
  path.clear();
  v = root_;
  for (;;) {
    path.push_back(v);
    Node& nd = nodes_[v];
    if (nd.is_leaf) break;
    v = (KeyLess(p.x, p.id, nd.key_x, nd.key_id) ||
         (p.x == nd.key_x && p.id == nd.key_id))
            ? nd.left
            : nd.right;
  }
  // By the unique-key argument the leaf's slot is empty now.
  if (path.size() == 1) {
    FreeNode(root_);
    root_ = -1;
    n_ = leaf_count_ = 0;
    return true;
  }
  const int32_t leaf = path.back();
  const int32_t parent = path[path.size() - 2];
  const int32_t sibling =
      nodes_[parent].left == leaf ? nodes_[parent].right : nodes_[parent].left;
  Point displaced;
  bool has_displaced = nodes_[parent].has_pt;
  if (has_displaced) displaced = nodes_[parent].pt;
  if (path.size() == 2) {
    root_ = sibling;
  } else {
    Node& gp = nodes_[path[path.size() - 3]];
    (gp.left == parent ? gp.left : gp.right) = sibling;
  }
  for (size_t i = 0; i + 2 < path.size(); ++i) --nodes_[path[i]].leaves;
  FreeNode(leaf);
  FreeNode(parent);
  if (has_displaced) PushDown(sibling, displaced);

  --n_;
  --leaf_count_;
  ++erased_since_rebuild_;
  if (erased_since_rebuild_ > n_ + 1) GlobalRebuild();
  return true;
}

int32_t DynamicPrioritySearchTree::BuildBalanced(
    std::vector<std::pair<int64_t, uint64_t>>& keys, size_t lo, size_t hi) {
  int32_t idx = NewNode();
  if (hi - lo == 1) {
    nodes_[idx].key_x = keys[lo].first;
    nodes_[idx].key_id = keys[lo].second;
    return idx;
  }
  size_t mid = (lo + hi + 1) / 2;  // left gets ceil
  int32_t l = BuildBalanced(keys, lo, mid);
  int32_t r = BuildBalanced(keys, mid, hi);
  Node& nd = nodes_[idx];
  nd.is_leaf = false;
  nd.left = l;
  nd.right = r;
  nd.key_x = keys[mid - 1].first;  // max key of the left subtree
  nd.key_id = keys[mid - 1].second;
  nd.leaves = nodes_[l].leaves + nodes_[r].leaves;
  return idx;
}

void DynamicPrioritySearchTree::CollectSubtree(
    int32_t v, std::vector<Point>* pts,
    std::vector<std::pair<int64_t, uint64_t>>* keys, bool free_nodes) {
  if (v < 0) return;
  const Node nd = nodes_[v];
  if (nd.has_pt) pts->push_back(nd.pt);
  if (nd.is_leaf) {
    keys->push_back({nd.key_x, nd.key_id});
  } else {
    CollectSubtree(nd.left, pts, keys, free_nodes);
    CollectSubtree(nd.right, pts, keys, free_nodes);
  }
  if (free_nodes) FreeNode(v);
}

void DynamicPrioritySearchTree::GlobalRebuild() {
  if (root_ < 0) return;
  std::vector<Point> pts;
  std::vector<std::pair<int64_t, uint64_t>> keys;
  CollectSubtree(root_, &pts, &keys, /*free_nodes=*/true);
  std::sort(keys.begin(), keys.end());
  root_ = keys.empty() ? -1 : BuildBalanced(keys, 0, keys.size());
  for (const Point& q : pts) PushDown(root_, q);
  erased_since_rebuild_ = 0;
  ++rebuilds_;
}

void DynamicPrioritySearchTree::QueryRec(int32_t v, int64_t x1, int64_t x2,
                                         int64_t y_min,
                                         std::vector<Point>* out) const {
  if (v < 0) return;
  const Node& nd = nodes_[v];
  if (nd.has_pt) {
    if (nd.pt.y < y_min) return;  // heap prune: everything below is weaker
    if (nd.pt.x >= x1 && nd.pt.x <= x2) out->push_back(nd.pt);
  }
  if (nd.is_leaf) return;
  if (x1 <= nd.key_x) QueryRec(nd.left, x1, x2, y_min, out);
  if (x2 >= nd.key_x) QueryRec(nd.right, x1, x2, y_min, out);
}

void DynamicPrioritySearchTree::QueryThreeSided(int64_t x1, int64_t x2,
                                                int64_t y_min,
                                                std::vector<Point>* out) const {
  QueryRec(root_, x1, x2, y_min, out);
}

std::string DynamicPrioritySearchTree::CheckInvariants() const {
  if (root_ < 0) return n_ == 0 ? "" : "empty tree with live points";
  size_t points = 0, leaves = 0;
  std::string err;

  struct Item {
    int32_t v;
    bool has_anc;
    Point anc;  // weakest slot seen above
    int64_t klo_x;
    uint64_t klo_id;
    bool has_klo;
    int64_t khi_x;
    uint64_t khi_id;
    bool has_khi;
  };
  std::vector<Item> stack{{root_, false, {}, 0, 0, false, 0, 0, false}};
  while (!stack.empty() && err.empty()) {
    Item it = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[it.v];
    if (nd.has_pt) {
      ++points;
      if (it.has_anc && StrongerY(nd.pt, it.anc)) {
        err = "heap order violated";
        break;
      }
      // The point's key must lie within this subtree's key range.
      if (it.has_klo &&
          KeyLess(nd.pt.x, nd.pt.id, it.klo_x, it.klo_id)) {
        err = "slot point left of subtree range";
        break;
      }
      if (it.has_khi &&
          KeyLess(it.khi_x, it.khi_id, nd.pt.x, nd.pt.id)) {
        err = "slot point right of subtree range";
        break;
      }
    }
    Point anc = nd.has_pt ? nd.pt : it.anc;
    bool has_anc = nd.has_pt || it.has_anc;
    if (nd.is_leaf) {
      ++leaves;
      continue;
    }
    if (nd.leaves != nodes_[nd.left].leaves + nodes_[nd.right].leaves) {
      err = "leaf count mismatch";
      break;
    }
    Item l{nd.left, has_anc, anc, it.klo_x, it.klo_id,
           it.has_klo, nd.key_x, nd.key_id, true};
    Item r{nd.right, has_anc, anc, nd.key_x, nd.key_id,
           true, it.khi_x, it.khi_id, it.has_khi};
    stack.push_back(l);
    stack.push_back(r);
  }
  if (!err.empty()) return err;
  if (points != n_) return "point count mismatch";
  if (leaves != leaf_count_) return "leaf count total mismatch";
  return "";
}

}  // namespace pathcache
