// In-core segment tree (Bentley) for stabbing queries, as described in
// Section 2 of the paper: a binary search tree over the 2n interval
// endpoints, each input interval stored in the cover-lists of its at most
// 2 log n allocation nodes.  Query O(log n + t), space O(n log n).

#ifndef PATHCACHE_INCORE_SEGMENT_TREE_H_
#define PATHCACHE_INCORE_SEGMENT_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/geometry.h"

namespace pathcache {

class SegmentTree {
 public:
  SegmentTree() = default;
  explicit SegmentTree(std::span<const Interval> intervals) {
    Build(intervals);
  }

  void Build(std::span<const Interval> intervals);

  /// Appends every interval containing q to `out`.
  void Stab(int64_t q, std::vector<Interval>* out) const;

  size_t size() const { return num_intervals_; }

  /// Total interval copies across all cover-lists (the O(n log n) term).
  uint64_t stored_copies() const { return stored_copies_; }

 private:
  struct Node {
    int64_t lo = 0;  // cover-interval [lo, hi)
    int64_t hi = 0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<Interval> cover;
  };

  int32_t BuildRec(std::span<const int64_t> endpoints, size_t lo, size_t hi);
  void InsertRec(int32_t node, const Interval& iv);

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t num_intervals_ = 0;
  uint64_t stored_copies_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_INCORE_SEGMENT_TREE_H_
