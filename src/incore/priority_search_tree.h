// In-core priority search tree (McCreight, SIAM J. Comput. 1985).
//
// A max-heap on y superimposed on a balanced search structure on x: the root
// holds the highest-y point, the rest is split at the median x.  Answers
// 3-sided queries [x1, x2] x [y, inf) in O(log n + t) and 2-sided queries as
// the x2 = +inf special case.  This is the structure Sections 3-5 of the
// paper externalize via path caching.

#ifndef PATHCACHE_INCORE_PRIORITY_SEARCH_TREE_H_
#define PATHCACHE_INCORE_PRIORITY_SEARCH_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/geometry.h"

namespace pathcache {

class PrioritySearchTree {
 public:
  PrioritySearchTree() = default;

  /// Builds from an arbitrary point set in O(n log n).
  explicit PrioritySearchTree(std::span<const Point> points) { Build(points); }

  void Build(std::span<const Point> points);

  /// Appends all points with x1 <= x <= x2 and y >= y_min to `out`.
  void QueryThreeSided(int64_t x1, int64_t x2, int64_t y_min,
                       std::vector<Point>* out) const;

  /// Appends all points with x >= x_min and y >= y_min to `out`.
  void QueryTwoSided(int64_t x_min, int64_t y_min,
                     std::vector<Point>* out) const {
    QueryThreeSided(x_min, INT64_MAX, y_min, out);
  }

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Number of nodes touched by the last query (for the O(log n + t)
  /// complexity tests).
  uint64_t last_nodes_visited() const { return visited_; }

 private:
  struct Node {
    Point point;       // the max-y point of this subtree's residual set
    int64_t split;     // x values <= split go left (after removing `point`)
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t BuildRec(std::vector<Point>* pts, size_t lo, size_t hi);
  void QueryRec(int32_t node, int64_t x1, int64_t x2, int64_t y_min,
                std::vector<Point>* out) const;

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  mutable uint64_t visited_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_INCORE_PRIORITY_SEARCH_TREE_H_
