#include "incore/segment_tree.h"

#include <algorithm>

namespace pathcache {

namespace {
// Closed input intervals [lo, hi] are handled over elementary half-open
// pieces by treating hi as exclusive bound hi+1 internally.
int64_t ExclusiveHi(const Interval& iv) { return iv.hi + 1; }
}  // namespace

int32_t SegmentTree::BuildRec(std::span<const int64_t> endpoints, size_t lo,
                              size_t hi) {
  // Builds over elementary slabs [e_lo, e_hi): leaf when one slab remains.
  int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[idx].lo = endpoints[lo];
  nodes_[idx].hi = endpoints[hi];
  if (hi - lo <= 1) return idx;
  size_t mid = (lo + hi) / 2;
  int32_t l = BuildRec(endpoints, lo, mid);
  int32_t r = BuildRec(endpoints, mid, hi);
  nodes_[idx].left = l;
  nodes_[idx].right = r;
  return idx;
}

void SegmentTree::InsertRec(int32_t node, const Interval& iv) {
  Node& n = nodes_[node];
  const int64_t ivhi = ExclusiveHi(iv);
  if (iv.lo <= n.lo && n.hi <= ivhi) {
    n.cover.push_back(iv);
    ++stored_copies_;
    return;
  }
  if (n.left >= 0 && iv.lo < nodes_[n.left].hi) InsertRec(n.left, iv);
  if (n.right >= 0 && ivhi > nodes_[n.right].lo) InsertRec(n.right, iv);
}

void SegmentTree::Build(std::span<const Interval> intervals) {
  nodes_.clear();
  root_ = -1;
  stored_copies_ = 0;
  num_intervals_ = intervals.size();
  if (intervals.empty()) return;

  std::vector<int64_t> endpoints;
  endpoints.reserve(intervals.size() * 2 + 2);
  for (const auto& iv : intervals) {
    endpoints.push_back(iv.lo);
    endpoints.push_back(ExclusiveHi(iv));
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  if (endpoints.size() == 1) endpoints.push_back(endpoints[0] + 1);

  root_ = BuildRec(endpoints, 0, endpoints.size() - 1);
  for (const auto& iv : intervals) InsertRec(root_, iv);
}

void SegmentTree::Stab(int64_t q, std::vector<Interval>* out) const {
  int32_t cur = root_;
  while (cur >= 0) {
    const Node& n = nodes_[cur];
    if (q < n.lo || q >= n.hi) return;  // outside the indexed domain
    for (const auto& iv : n.cover) out->push_back(iv);
    if (n.left >= 0 && q < nodes_[n.left].hi) {
      cur = n.left;
    } else {
      cur = n.right;
    }
  }
}

}  // namespace pathcache
