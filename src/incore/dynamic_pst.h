// Dynamic in-core priority search tree.
//
// McCreight's PST is classically dynamic; this is the leaf-oriented
// ("tournament") formulation with scapegoat rebalancing:
//  * a BST whose LEAVES are the distinct (x, id) keys; internal nodes carry
//    the max-key of their left subtree as the routing fence;
//  * every node (internal or leaf) has one heap slot; a point is pushed
//    down from the root, swapping with weaker slots, along the path towards
//    its own leaf — it always terminates because its leaf's slot can only
//    be empty or hold the point itself (keys are unique);
//  * deletion pulls the stronger child slot upward to refill the hole, then
//    removes the leaf (whose slot, by the key argument, is empty by then)
//    and re-pushes the displaced parent slot;
//  * inserts that land too deep trigger a scapegoat subtree rebuild
//    (alpha-weight-balance); deletions are counted and amortized by a
//    global rebuild once half the tree has been removed.
//
// Insert/Erase run in O(log n) amortized; 3-sided queries in O(log n + t).
// This rounds out the in-core toolbox the paper externalizes and serves as
// a second dynamic oracle for the external DynamicPst.

#ifndef PATHCACHE_INCORE_DYNAMIC_PST_H_
#define PATHCACHE_INCORE_DYNAMIC_PST_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/geometry.h"

namespace pathcache {

class DynamicPrioritySearchTree {
 public:
  DynamicPrioritySearchTree() = default;

  /// Bulk build (equivalent to inserting every point).
  explicit DynamicPrioritySearchTree(std::span<const Point> points);

  /// Inserts a point; (x, id) pairs must be unique among live points.
  void Insert(const Point& p);

  /// Removes a previously inserted point (exact x, y, id).  Returns false
  /// if the point is not present.
  bool Erase(const Point& p);

  /// Appends all points with x1 <= x <= x2 and y >= y_min to `out`.
  void QueryThreeSided(int64_t x1, int64_t x2, int64_t y_min,
                       std::vector<Point>* out) const;

  void QueryTwoSided(int64_t x_min, int64_t y_min,
                     std::vector<Point>* out) const {
    QueryThreeSided(x_min, INT64_MAX, y_min, out);
  }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  uint64_t rebuilds() const { return rebuilds_; }

  /// Structural invariants (heap order, fences, slot-path membership,
  /// sizes); empty string when consistent.  For tests; O(n log n).
  std::string CheckInvariants() const;

 private:
  struct Node {
    int64_t key_x = 0;    // leaf: its key; internal: left subtree's max key
    uint64_t key_id = 0;
    bool is_leaf = true;
    bool has_pt = false;
    Point pt;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t leaves = 1;  // leaves in subtree (weight for balancing)
  };

  static bool KeyLess(int64_t ax, uint64_t aid, int64_t bx, uint64_t bid) {
    if (ax != bx) return ax < bx;
    return aid < bid;
  }
  static bool StrongerY(const Point& a, const Point& b) {
    if (a.y != b.y) return a.y > b.y;
    return a.id > b.id;
  }

  int32_t NewNode();
  void FreeNode(int32_t idx);
  void PushDown(int32_t from, Point p);
  void PullUp(int32_t v);
  int32_t BuildBalanced(std::vector<std::pair<int64_t, uint64_t>>& keys,
                        size_t lo, size_t hi);
  void CollectSubtree(int32_t v, std::vector<Point>* pts,
                      std::vector<std::pair<int64_t, uint64_t>>* keys,
                      bool free_nodes);
  void RebuildSubtree(int32_t* slot);
  void GlobalRebuild();
  void QueryRec(int32_t v, int64_t x1, int64_t x2, int64_t y_min,
                std::vector<Point>* out) const;

  std::vector<Node> nodes_;
  std::vector<int32_t> free_list_;
  int32_t root_ = -1;
  size_t n_ = 0;            // live points
  size_t leaf_count_ = 0;   // live leaves (== live points)
  size_t erased_since_rebuild_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_INCORE_DYNAMIC_PST_H_
