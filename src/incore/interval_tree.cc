#include "incore/interval_tree.h"

#include <algorithm>

namespace pathcache {

int32_t IntervalTree::BuildRec(std::vector<Interval> pool,
                               std::span<const int64_t> pts, size_t plo,
                               size_t phi) {
  if (pool.empty()) return -1;
  size_t pmid = (plo + phi) / 2;
  int64_t center = pts[pmid];

  std::vector<Interval> crossing, left_pool, right_pool;
  for (const auto& iv : pool) {
    if (iv.hi < center) {
      left_pool.push_back(iv);
    } else if (iv.lo > center) {
      right_pool.push_back(iv);
    } else {
      crossing.push_back(iv);
    }
  }
  pool.clear();
  pool.shrink_to_fit();

  int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[idx].center = center;
  {
    Node& n = nodes_[idx];
    n.by_lo = crossing;
    std::sort(n.by_lo.begin(), n.by_lo.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    n.by_hi = std::move(crossing);
    std::sort(n.by_hi.begin(), n.by_hi.end(),
              [](const Interval& a, const Interval& b) { return a.hi > b.hi; });
  }

  int32_t l = plo < pmid ? BuildRec(std::move(left_pool), pts, plo, pmid) : -1;
  int32_t r =
      pmid + 1 < phi ? BuildRec(std::move(right_pool), pts, pmid + 1, phi) : -1;
  nodes_[idx].left = l;
  nodes_[idx].right = r;
  return idx;
}

void IntervalTree::Build(std::span<const Interval> intervals) {
  nodes_.clear();
  root_ = -1;
  num_intervals_ = intervals.size();
  if (intervals.empty()) return;

  std::vector<int64_t> pts;
  pts.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    pts.push_back(iv.lo);
    pts.push_back(iv.hi);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  std::vector<Interval> pool(intervals.begin(), intervals.end());
  root_ = BuildRec(std::move(pool), pts, 0, pts.size());
}

void IntervalTree::Stab(int64_t q, std::vector<Interval>* out) const {
  int32_t cur = root_;
  while (cur >= 0) {
    const Node& n = nodes_[cur];
    if (q < n.center) {
      for (const auto& iv : n.by_lo) {
        if (iv.lo > q) break;
        out->push_back(iv);  // iv.hi >= center > q, so iv contains q
      }
      cur = n.left;
    } else if (q > n.center) {
      for (const auto& iv : n.by_hi) {
        if (iv.hi < q) break;
        out->push_back(iv);  // iv.lo <= center < q, so iv contains q
      }
      cur = n.right;
    } else {
      for (const auto& iv : n.by_lo) out->push_back(iv);  // all contain center
      return;
    }
  }
}

}  // namespace pathcache
