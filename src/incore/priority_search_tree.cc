#include "incore/priority_search_tree.h"

#include <algorithm>

namespace pathcache {

void PrioritySearchTree::Build(std::span<const Point> points) {
  nodes_.clear();
  nodes_.reserve(points.size());
  std::vector<Point> pts(points.begin(), points.end());
  std::sort(pts.begin(), pts.end(), LessByX);
  root_ = BuildRec(&pts, 0, pts.size());
}

int32_t PrioritySearchTree::BuildRec(std::vector<Point>* pts, size_t lo,
                                     size_t hi) {
  if (lo >= hi) return -1;
  // Find the max-y point in [lo, hi); points stay x-sorted otherwise, so we
  // swap it out and re-stitch by rotating it to the end of the range.
  size_t best = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    if (LessByY((*pts)[best], (*pts)[i])) best = i;
  }
  Point top = (*pts)[best];
  // Remove `best` while keeping x-order: shift the tail left by one.
  for (size_t i = best; i + 1 < hi; ++i) (*pts)[i] = (*pts)[i + 1];
  size_t n = hi - lo - 1;  // residual count

  Node node;
  node.point = top;
  int32_t idx = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (n == 0) {
    nodes_[idx].split = top.x;
    return idx;
  }
  size_t mid = lo + (n - 1) / 2;  // left gets ceil(n/2) elements
  nodes_[idx].split = (*pts)[mid].x;
  int32_t l = BuildRec(pts, lo, mid + 1);
  int32_t r = BuildRec(pts, mid + 1, lo + n);
  nodes_[idx].left = l;
  nodes_[idx].right = r;
  return idx;
}

void PrioritySearchTree::QueryRec(int32_t node, int64_t x1, int64_t x2,
                                  int64_t y_min,
                                  std::vector<Point>* out) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  ++visited_;
  if (n.point.y < y_min) return;  // heap order: whole subtree is below y_min
  if (n.point.x >= x1 && n.point.x <= x2) out->push_back(n.point);
  if (x1 <= n.split) QueryRec(n.left, x1, x2, y_min, out);
  // ">=" (not ">") because duplicate x values may straddle the split.
  if (x2 >= n.split) QueryRec(n.right, x1, x2, y_min, out);
}

void PrioritySearchTree::QueryThreeSided(int64_t x1, int64_t x2, int64_t y_min,
                                         std::vector<Point>* out) const {
  visited_ = 0;
  QueryRec(root_, x1, x2, y_min, out);
}

}  // namespace pathcache
