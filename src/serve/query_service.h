// The serving-surface contract shared by QueryEngine and ShardRouter.
//
// The query/result vocabulary used to live in query_engine.h; it moved here
// so the network front-end can serve any QueryService — a single engine or a
// scatter-gather router over many sharded engines — without caring which.
// QueryService is deliberately tiny: submit a query or an update group
// against a registered structure, learn the structure topology, and share a
// deadline clock.  Everything engine-specific (worker counts, queue
// capacities, tenant quotas) stays on the concrete types.

#ifndef PATHCACHE_SERVE_QUERY_SERVICE_H_
#define PATHCACHE_SERVE_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/query_stats.h"
#include "dynamic/update.h"
#include "io/io_types.h"
#include "serve/clock.h"
#include "util/geometry.h"
#include "util/status.h"

namespace pathcache {

/// Which query family a registered structure answers.
enum class QueryKind : uint8_t {
  kTwoSided,    // ExternalPst / TwoLevelPst: x >= x_min && y >= y_min
  kThreeSided,  // ThreeSidedPst: x in [x_min, x_max] && y >= y_min
  kStabbing,    // ExtSegmentTree / ExtIntervalTree: intervals containing q
};

/// A query addressed to one registered structure.  Only the member matching
/// the structure's kind is read.
struct ServeQuery {
  TwoSidedQuery two_sided;
  ThreeSidedQuery three_sided;
  int64_t stab = 0;

  static ServeQuery TwoSided(TwoSidedQuery q) {
    ServeQuery s;
    s.two_sided = q;
    return s;
  }
  static ServeQuery ThreeSided(ThreeSidedQuery q) {
    ServeQuery s;
    s.three_sided = q;
    return s;
  }
  static ServeQuery Stab(int64_t q) {
    ServeQuery s;
    s.stab = q;
    return s;
  }
};

/// Per-shard outcome of a scatter-gather query.  Filled only by ShardRouter;
/// a single engine leaves QueryResult::shards empty.  A faulted or expired
/// shard carries its typed status here while the merged result keeps the
/// healthy shards' records — the caller decides whether a partial answer is
/// acceptable.
struct ShardSlice {
  uint32_t shard = 0;
  Status status = Status::OK();
  /// This shard's isolated page I/O for the request.
  IoStats io;
  uint64_t latency_micros = 0;
};

/// Outcome of one request, delivered to its completion callback on a worker
/// thread.  Exactly one of `points` / `intervals` is populated on success,
/// by the structure's kind.
struct QueryResult {
  Status status = Status::OK();
  std::vector<Point> points;
  std::vector<Interval> intervals;
  /// Pages this request read, isolated per-request via the worker's private
  /// counting device.  Zero for rejected/expired requests (no I/O issued).
  /// For a routed query this is the sum over `shards`.
  IoStats io;
  /// The structure's own per-query accounting (role + useful/wasteful
  /// breakdown); `stats.total_reads()` matches `io` block reads by
  /// construction, and serve_test asserts it byte-for-byte.
  QueryStats stats;
  /// Submit-to-completion time on the engine's clock.
  uint64_t latency_micros = 0;
  /// Scatter-gather breakdown, one entry per shard the query touched (empty
  /// when served by a single engine).  Ordered by shard index.
  std::vector<ShardSlice> shards;
};

using QueryDoneCallback = std::function<void(QueryResult)>;

/// Abstract serving surface.  NetServer talks to this, so a sharded router
/// and a plain engine are interchangeable behind the wire protocol.
///
/// Thread-safety contract: Submit/SubmitUpdate may be called from any thread
/// once the implementation is started; the topology accessors are
/// setup-phase-constant and safe concurrently with submissions.
class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Enqueues a query; `done` fires exactly once on some worker thread
  /// unless the call returns non-OK (then never).  `deadline_micros` is
  /// absolute on clock(); 0 means none.  `tenant` selects an admission
  /// quota when the implementation has one configured (0 = default tenant).
  virtual Status Submit(uint32_t structure_id, const ServeQuery& query,
                        QueryDoneCallback done, uint64_t deadline_micros = 0,
                        uint32_t tenant = 0) = 0;

  /// Enqueues one durable update group; same callback and admission
  /// contract as Submit.  Implementations without updatable structures
  /// return kInvalidArgument / kNotSupported.
  virtual Status SubmitUpdate(uint32_t structure_id,
                              std::span<const DynamicUpdate> updates,
                              QueryDoneCallback done,
                              uint64_t deadline_micros = 0,
                              uint32_t tenant = 0) = 0;

  virtual size_t num_structures() const = 0;
  virtual QueryKind structure_kind(uint32_t id) const = 0;
  virtual bool structure_dynamic(uint32_t id) const = 0;
  /// The deadline clock.  The net front-end uses it to turn relative wire
  /// budgets into absolute deadlines.
  virtual Clock* clock() const = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_SERVE_QUERY_SERVICE_H_
