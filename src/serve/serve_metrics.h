// RegisterServeMetrics: publishes a QueryEngine's ServeStats through a
// MetricsRegistry.  Header-only and in serve/ (not obs/) so the dependency
// arrow stays obs <- serve: the registry knows nothing about the engine.
//
// Every sample callback goes through QueryEngine::stats(), which is safe
// from any thread while the engine serves, so exports can run concurrently
// with traffic.

#ifndef PATHCACHE_SERVE_SERVE_METRICS_H_
#define PATHCACHE_SERVE_SERVE_METRICS_H_

#include <string>

#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "util/status.h"

namespace pathcache {

/// Registers the engine's counters (submitted/completed/rejected/expired/
/// slow), queue-depth gauges, the latency summary, and its aggregate worker
/// IoStats (device="<engine_label>").  `engine` must outlive the registry's
/// exports.
inline Status RegisterServeMetrics(MetricsRegistry* reg,
                                   const std::string& engine_label,
                                   const QueryEngine* engine) {
  const MetricLabels labels = {{"engine", engine_label}};
  struct Row {
    const char* name;
    const char* help;
    uint64_t ServeStats::* field;
  };
  static constexpr Row kCounters[] = {
      {"pathcache_serve_submitted_total", "Requests accepted into the queue",
       &ServeStats::submitted},
      {"pathcache_serve_completed_total",
       "Requests executed (any status code)", &ServeStats::completed},
      {"pathcache_serve_rejected_overload_total",
       "Submissions bounced with kOverloaded", &ServeStats::rejected_overload},
      {"pathcache_serve_rejected_quota_total",
       "Submissions bounced by a tenant admission quota",
       &ServeStats::rejected_quota},
      {"pathcache_serve_expired_total",
       "Requests dropped at dispatch past their deadline",
       &ServeStats::expired},
      {"pathcache_serve_slow_queries_total",
       "Requests captured by the slow-query log", &ServeStats::slow_queries},
      {"pathcache_serve_update_groups_total",
       "Update requests executed (any status)", &ServeStats::update_groups},
      {"pathcache_serve_updates_applied_total",
       "Individual mutations durably committed", &ServeStats::updates_applied},
      {"pathcache_serve_update_failures_total",
       "Update requests that returned non-OK", &ServeStats::update_failures},
      {"pathcache_serve_read_repins_total",
       "Dynamic reads re-pinned because a publish raced the overlay merge",
       &ServeStats::read_repins},
  };
  for (const Row& row : kCounters) {
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        row.name, row.help, labels,
        [engine, field = row.field] { return engine->stats().*field; }));
  }
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_serve_queue_depth", "Requests waiting right now", labels,
      [engine] { return double(engine->stats().queue_depth); }));
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_serve_max_queue_depth", "Queue high-water mark since Start()",
      labels, [engine] { return double(engine->stats().max_queue_depth); }));
  PC_RETURN_IF_ERROR(reg->AddSummaryFn(
      "pathcache_serve_latency_micros",
      "Submit-to-completion latency of executed queries", labels, [engine] {
        const LatencyHistogram::Snapshot s = engine->stats().latency;
        MetricSummary m;
        m.count = s.count;
        m.sum = s.sum;
        m.max = s.max;
        m.p50 = s.p50;
        m.p95 = s.p95;
        m.p99 = s.p99;
        return m;
      }));
  // Per-tenant admission rows, labeled {engine, tenant}.  Quotas are
  // setup-phase-fixed, so the tenant set snapshotted here is complete for
  // the engine's lifetime.
  for (const ServeStats::TenantStats& t : engine->stats().tenants) {
    MetricLabels tlabels = labels;
    tlabels.push_back({"tenant", std::to_string(t.tenant)});
    auto tenant_field = [engine, id = t.tenant](
                            uint64_t ServeStats::TenantStats::* field) {
      for (const ServeStats::TenantStats& ts : engine->stats().tenants) {
        if (ts.tenant == id) return ts.*field;
      }
      return uint64_t{0};
    };
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        "pathcache_serve_tenant_admitted_total",
        "Requests admitted under this tenant's quota", tlabels,
        [tenant_field] {
          return tenant_field(&ServeStats::TenantStats::admitted);
        }));
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        "pathcache_serve_tenant_rejected_total",
        "Requests bounced by this tenant's quota", tlabels, [tenant_field] {
          return tenant_field(&ServeStats::TenantStats::rejected);
        }));
    PC_RETURN_IF_ERROR(reg->AddGaugeFn(
        "pathcache_serve_tenant_queued", "Quota tokens held right now",
        tlabels, [tenant_field] {
          return double(tenant_field(&ServeStats::TenantStats::queued));
        }));
  }
  return RegisterIoStatsMetrics(reg, engine_label,
                                [engine] { return engine->stats().io; });
}

}  // namespace pathcache

#endif  // PATHCACHE_SERVE_SERVE_METRICS_H_
