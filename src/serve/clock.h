// Clock abstraction for the serving layer.
//
// Deadlines are absolute microsecond timestamps against an injected Clock so
// tests can drive expiry deterministically: a FakeClock advanced past a
// queued request's deadline while the workers are parked makes the next
// dispatch drop it, every time, with no sleeps and no flakiness.  Production
// engines use SystemClock, a monotonic (steady_clock) source immune to
// wall-time jumps.

#ifndef PATHCACHE_SERVE_CLOCK_H_
#define PATHCACHE_SERVE_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pathcache {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary fixed origin.  Monotonic:
  /// never decreases across calls on any thread.
  virtual uint64_t NowMicros() const = 0;
};

/// Monotonic real clock.  Stateless; the shared instance is safe to hand to
/// any number of engines.
class SystemClock final : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static SystemClock* Default() {
    static SystemClock clock;
    return &clock;
  }
};

/// Manually advanced clock for deterministic tests.  Thread-safe: workers
/// read while the test thread advances.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }

  void Advance(uint64_t micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace pathcache

#endif  // PATHCACHE_SERVE_CLOCK_H_
