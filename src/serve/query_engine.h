// QueryEngine: a concurrent query-serving layer over the external
// structures.
//
// One engine owns a pool of worker threads fed by a bounded MPMC request
// queue.  Clients Submit() queries against structures registered by their
// Save()d manifests; workers execute them and deliver results through a
// completion callback.  The design goals, in order:
//
//  * Correctness under concurrency: every query runs on a worker-private
//    handle of the structure (opened from the same manifest), so the
//    read-only query paths never share mutable state.  All page I/O funnels
//    through the engine's shared (thread-safe) PageDevice — in practice a
//    SharedBufferPool — so results are byte-identical to single-threaded
//    execution; serve_test asserts exactly that.
//  * Admission control: the queue is bounded.  A Submit() that would exceed
//    `queue_capacity` is rejected immediately with kOverloaded — back
//    pressure at the edge instead of unbounded memory growth.
//  * Deadlines: each request may carry an absolute deadline (microseconds on
//    the engine's Clock).  Workers re-check the deadline when they dequeue a
//    request and drop expired ones with kDeadlineExceeded BEFORE issuing any
//    I/O — a request is never abandoned mid-scan, so a started query always
//    runs to completion and its I/O accounting is whole.
//  * Batch dequeue: workers take up to `batch_size` requests at once and
//    sort them by (structure, query key) before executing, so neighboring
//    queries walk the same skeletal pages back to back and hit the shared
//    pool while those pages are still hot.
//  * Observability: per-request IoStats and QueryStats deltas (from the
//    worker's private CountingPageDevice and the structure's own accounting)
//    ride on every completion; the engine aggregates a latency histogram
//    (p50/p95/p99), queue-depth high-water mark, and rejection/expiry
//    counters, all readable mid-flight via stats().  Optional extras: a
//    slow-query log (requests over a latency or block-read threshold emit a
//    full per-phase breakdown to a sink) and a Tracer that records
//    serve.batch / serve.query / io.* spans for Perfetto.  serve_metrics.h
//    publishes all of it to a MetricsRegistry.
//
// Thread-safety: Submit(), Drain() and stats() may be called from any
// thread once Start() returns.  AddStructure() and Start() are setup-phase
// calls (single-threaded, before serving); Stop() may be called once from
// any thread and blocks until the queue is drained and workers have joined.

#ifndef PATHCACHE_SERVE_QUERY_ENGINE_H_
#define PATHCACHE_SERVE_QUERY_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "core/query_stats.h"
#include "core/three_sided.h"
#include "core/two_sided_index.h"
#include "dynamic/dynamic_store.h"
#include "dynamic/update.h"
#include "io/counting_page_device.h"
#include "io/io_types.h"
#include "io/page_device.h"
#include "obs/trace.h"
#include "obs/tracing_page_device.h"
#include "serve/clock.h"
#include "serve/latency_histogram.h"
#include "serve/query_service.h"
#include "util/geometry.h"
#include "util/status.h"

namespace pathcache {

/// One slow-query log record: everything needed to explain where a request's
/// time and I/O went, captured at completion on the worker thread.
struct SlowQueryLogEntry {
  uint32_t structure_id = 0;
  QueryKind kind = QueryKind::kTwoSided;
  ServeQuery query;
  uint64_t latency_micros = 0;
  /// Exactly the request's QueryResult::io / QueryResult::stats — the same
  /// per-request accounting the completion callback sees.
  IoStats io;
  QueryStats stats;

  /// Human-readable one-entry dump (multi-line, ends without newline).
  std::string ToString() const;
};

struct SlowQueryLogOptions {
  /// Log a completed request when latency_micros >= this.  0 disables the
  /// latency trigger.
  uint64_t latency_threshold_micros = 0;
  /// Log a completed request when its block reads (stats.total_reads())
  /// reach this.  0 disables the reads trigger.
  uint64_t reads_threshold = 0;
  /// Invoked on the worker thread for each slow request; must be
  /// thread-safe.  Null with nonzero thresholds falls back to stderr.
  std::function<void(const SlowQueryLogEntry&)> sink;
};

struct QueryEngineOptions {
  uint32_t num_workers = 4;
  /// Submissions beyond this many queued requests are rejected.
  size_t queue_capacity = 256;
  /// Requests a worker dequeues (and locality-sorts) per queue pass.
  uint32_t batch_size = 8;
  /// Deadline source; nullptr uses the monotonic SystemClock.
  Clock* clock = nullptr;
  /// Slow-query logging; both thresholds 0 (the default) turns it off.
  SlowQueryLogOptions slow_query_log;
  /// Optional tracer: when set and enabled, workers record serve.batch /
  /// serve.query spans and per-operation io.* spans underneath (via each
  /// worker's TracingPageDevice).  Not owned; may be null.
  Tracer* tracer = nullptr;
};

/// Mid-flight counters, snapshotted by QueryEngine::stats().
struct ServeStats {
  /// Per-tenant admission accounting, present for every tenant with a
  /// configured quota.  Ordered by tenant id.
  struct TenantStats {
    uint32_t tenant = 0;
    uint64_t quota = 0;     // tokens carved out of queue_capacity
    uint64_t queued = 0;    // tokens held right now
    uint64_t admitted = 0;  // requests accepted under this quota
    uint64_t rejected = 0;  // requests bounced by this quota
  };

  uint64_t submitted = 0;           // accepted into the queue
  uint64_t completed = 0;           // executed (status delivered, any code)
  uint64_t rejected_overload = 0;   // bounced at Submit() with kOverloaded
  uint64_t rejected_quota = 0;      // bounced by a tenant quota (kOverloaded)
  uint64_t expired = 0;             // dropped at dispatch, kDeadlineExceeded
  uint64_t queue_depth = 0;         // requests waiting right now
  uint64_t max_queue_depth = 0;     // high-water mark since Start()
  uint64_t slow_queries = 0;        // requests the slow-query log captured
  uint64_t update_groups = 0;       // update requests executed (any status)
  uint64_t updates_applied = 0;     // individual mutations durably committed
  uint64_t update_failures = 0;     // update requests that returned non-OK
  /// Dynamic reads that re-pinned because a publish absorbed overlay
  /// entries between the base query and the overlay merge.  A nonzero
  /// value is healthy under concurrent rebuilds; it should stay tiny
  /// relative to `completed`.
  uint64_t read_repins = 0;
  /// Latency of executed queries (expired requests excluded).
  LatencyHistogram::Snapshot latency;
  /// Page I/O across all workers (sum of the per-request deltas).
  IoStats io;
  /// One entry per tenant with a configured quota, ordered by tenant id.
  std::vector<TenantStats> tenants;
};

class QueryEngine : public QueryService {
 public:
  /// `shared` is the device every worker reads through; it must be
  /// thread-safe if `num_workers > 1` (SharedBufferPool is the intended
  /// stack).  The engine does not own it.
  explicit QueryEngine(PageDevice* shared, QueryEngineOptions opts = {});
  ~QueryEngine() override;

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers a Save()d structure, classified by its manifest magic, and
  /// opens one private handle per worker.  Setup-phase only: returns
  /// FailedPrecondition once Start() has run.  Returns the structure id
  /// Submit() addresses.
  Result<uint32_t> AddStructure(PageId manifest);

  /// Registers a DynamicStore (crash-safe updatable structure) for both
  /// queries and updates.  The store must be backed by (or share) the same
  /// underlying pages as `shared` — workers open per-worker read handles on
  /// their private counting devices, exactly like AddStructure, but reopen
  /// them whenever the store publishes a new generation.  Setup-phase only.
  /// The engine does not own the store; it must outlive the engine.
  Result<uint32_t> AddDynamicStore(DynamicStore* store);

  /// Carves a per-tenant admission quota out of `queue_capacity`: tenant
  /// `tenant` may hold at most `tokens` queued requests at once; a Submit
  /// beyond that bounces with kOverloaded even while the global queue has
  /// room, so one hot tenant cannot starve the rest.  Tenants without a
  /// quota share the global bound untracked.  Setup-phase only (returns
  /// FailedPrecondition once Start() has run); `tokens` may be 0 to shut a
  /// tenant out entirely, and must not exceed queue_capacity.
  Status SetTenantQuota(uint32_t tenant, uint64_t tokens);

  /// Spawns the workers.  No-op error (FailedPrecondition) if already
  /// started.
  Status Start();

  /// Graceful shutdown: refuses new submissions, lets the workers drain the
  /// queue (running every queued request through the normal deadline check),
  /// then joins them.  Idempotent.
  void Stop();

  /// Enqueues a query against structure `structure_id`.  `done` is invoked
  /// exactly once, on a worker thread, unless Submit returns non-OK (then
  /// never).  `deadline_micros` is absolute on the engine's clock; 0 means
  /// no deadline.  Returns kOverloaded when the queue is full and
  /// FailedPrecondition when the engine is not running.
  Status Submit(uint32_t structure_id, const ServeQuery& query,
                QueryDoneCallback done, uint64_t deadline_micros = 0,
                uint32_t tenant = 0) override;

  /// Enqueues one durable update group against a structure registered with
  /// AddDynamicStore (InvalidArgument otherwise).  The group is applied
  /// atomically — when the completion callback sees OK, every mutation in
  /// it has been WAL-committed and survives any crash.  Updates ride the
  /// same bounded queue as queries (same kOverloaded back pressure, same
  /// deadline gate at dispatch; an expired update is dropped BEFORE any WAL
  /// append, so it is durably absent).  FIFO order among updates is
  /// preserved within a worker batch.
  Status SubmitUpdate(uint32_t structure_id,
                      std::span<const DynamicUpdate> updates,
                      QueryDoneCallback done, uint64_t deadline_micros = 0,
                      uint32_t tenant = 0) override;

  /// Blocks until every accepted request has completed (queue empty and no
  /// request in flight).
  void Drain();

  ServeStats stats() const;

  uint32_t num_workers() const { return opts_.num_workers; }
  size_t queue_capacity() const { return opts_.queue_capacity; }
  /// The deadline clock (SystemClock unless options injected one).  The net
  /// front-end uses it to turn relative wire budgets into absolute deadlines.
  Clock* clock() const override { return clock_; }
  size_t num_structures() const override { return manifests_.size(); }
  QueryKind structure_kind(uint32_t id) const override { return kinds_[id]; }
  bool structure_dynamic(uint32_t id) const override {
    return stores_[id] != nullptr;
  }

 private:
  struct StructureHandle {
    QueryKind kind;
    // Static structures: exactly one is set, by kind.
    std::unique_ptr<TwoSidedIndex> two_sided;
    std::unique_ptr<ThreeSidedPst> three_sided;
    std::unique_ptr<ExtSegmentTree> seg_tree;
    std::unique_ptr<ExtIntervalTree> interval_tree;
    // Dynamic structures: the store plus a cached per-worker read handle
    // over the generation it last saw; Execute reopens it (on the worker's
    // private device) whenever the store's published version moves.
    DynamicStore* dynamic = nullptr;
    DynamicReadHandle dyn_handle;
  };

  /// Everything one worker thread touches while executing queries.  The
  /// counting device (and therefore every handle's I/O) is private to the
  /// worker, which is what makes per-request IoStats deltas race-free.  The
  /// tracing layer sits between the counting device and the shared pool so
  /// traced io.* spans carry exactly the operations the counters count.
  struct Worker {
    Worker(PageDevice* shared, Tracer* tracer)
        : tdev(shared, tracer), dev(&tdev) {}
    TracingPageDevice tdev;
    CountingPageDevice dev;
    std::vector<StructureHandle> handles;
    std::thread thread;
  };

  struct Request {
    uint32_t structure_id = 0;
    ServeQuery query;
    bool is_update = false;
    std::vector<DynamicUpdate> updates;
    QueryDoneCallback done;
    uint64_t deadline_micros = 0;  // 0 = none
    uint64_t submit_micros = 0;
    uint32_t tenant = 0;
  };

  /// Per-tenant admission state, keyed by tenant id; guarded by mu_.
  struct TenantState {
    uint64_t quota = 0;
    uint64_t queued = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
  };

  Status EnqueueRequest(Request req);
  void WorkerLoop(Worker* w);
  QueryResult Execute(Worker* w, const Request& req);
  /// The dynamic read path: pin the current generation, (re)open the
  /// worker's cached handle if the version moved, run the base query, merge
  /// the overlay — retrying from the pin when a publish raced the read.
  QueryResult ExecuteDynamicQuery(Worker* w, const Request& req);
  /// Feeds the slow-query log if `res` trips a configured threshold.
  void MaybeLogSlowQuery(const Request& req, const QueryResult& res);
  /// The key batch sorting clusters on: queries near each other descend
  /// through the same skeletal pages.
  static int64_t LocalityKey(QueryKind kind, const ServeQuery& q);

  PageDevice* shared_;
  QueryEngineOptions opts_;
  Clock* clock_;

  std::vector<PageId> manifests_;
  std::vector<QueryKind> kinds_;
  /// Parallel to manifests_: the DynamicStore behind each id, or nullptr
  /// for static structures.
  std::vector<DynamicStore*> stores_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for requests / stop
  std::condition_variable drain_cv_;  // Drain()/Stop() wait for idle
  std::deque<Request> queue_;
  uint64_t in_flight_ = 0;  // dequeued but not yet completed
  bool running_ = false;
  bool stopping_ = false;

  // Queue-side counters live under mu_; completion-side counters are
  // atomics so workers never retake the queue lock to account a result.
  uint64_t submitted_ = 0;
  uint64_t rejected_overload_ = 0;
  uint64_t rejected_quota_ = 0;
  uint64_t max_queue_depth_ = 0;
  std::map<uint32_t, TenantState> tenants_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> slow_queries_{0};
  std::atomic<uint64_t> update_groups_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> update_failures_{0};
  std::atomic<uint64_t> read_repins_{0};
  std::atomic<uint64_t> io_reads_{0};
  std::atomic<uint64_t> io_batch_reads_{0};
  std::atomic<uint64_t> io_writes_{0};
  LatencyHistogram latency_;
};

}  // namespace pathcache

#endif  // PATHCACHE_SERVE_QUERY_ENGINE_H_
