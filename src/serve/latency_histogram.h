// Lock-free latency histogram with power-of-two buckets.
//
// Record() is a single relaxed fetch_add on the value's bucket (bucket i
// holds values whose bit width is i, i.e. [2^(i-1), 2^i)), so worker threads
// never contend on a lock to account a completed query.  Quantiles are
// computed from a snapshot of the counters and are therefore approximate —
// resolved to the bucket's upper bound, an error of at most 2x, which is
// plenty for the p50/p95/p99 serving dashboards this feeds.  Sum and max are
// tracked exactly.

#ifndef PATHCACHE_SERVE_LATENCY_HISTOGRAM_H_
#define PATHCACHE_SERVE_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

namespace pathcache {

class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 65;  // bit widths 0..64

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;

    double mean() const { return count == 0 ? 0.0 : double(sum) / count; }
  };

  void Record(uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Aggregates the counters into quantiles.  Concurrent Record() calls may
  /// or may not be included — the snapshot is consistent enough for
  /// monitoring, and exact once writers quiesce.
  Snapshot TakeSnapshot() const {
    std::array<uint64_t, kBuckets> counts;
    Snapshot s;
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    if (s.count == 0) return s;
    s.p50 = Quantile(counts, s.count, 0.50);
    s.p95 = Quantile(counts, s.count, 0.95);
    s.p99 = Quantile(counts, s.count, 0.99);
    return s;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Value at or below which at least ceil(q * total) recorded samples
  /// fall (nearest-rank): the upper bound of the bucket holding the
  /// ceil(q * total)-th smallest sample.  Requires total >= 1.
  static uint64_t Quantile(const std::array<uint64_t, kBuckets>& counts,
                           uint64_t total, double q) {
    uint64_t target = static_cast<uint64_t>(std::ceil(q * double(total)));
    if (target < 1) target = 1;
    if (target > total) target = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= target) {
        // Bucket i holds values of bit width i: upper bound 2^i - 1.
        return i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
      }
    }
    return UINT64_MAX;  // unreachable when total matches the counters
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace pathcache

#endif  // PATHCACHE_SERVE_LATENCY_HISTOGRAM_H_
