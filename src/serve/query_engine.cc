#include "serve/query_engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <tuple>
#include <utility>

#include "core/persist.h"
#include "core/pst_common.h"

namespace pathcache {

std::string SlowQueryLogEntry::ToString() const {
  std::string s = "slow query: structure=" + std::to_string(structure_id);
  switch (kind) {
    case QueryKind::kTwoSided:
      s += " kind=two_sided q=(x>=" + std::to_string(query.two_sided.x_min) +
           ", y>=" + std::to_string(query.two_sided.y_min) + ")";
      break;
    case QueryKind::kThreeSided:
      s += " kind=three_sided q=(x in [" +
           std::to_string(query.three_sided.x_min) + ", " +
           std::to_string(query.three_sided.x_max) +
           "], y>=" + std::to_string(query.three_sided.y_min) + ")";
      break;
    case QueryKind::kStabbing:
      s += " kind=stabbing q=" + std::to_string(query.stab);
      break;
  }
  s += " latency_us=" + std::to_string(latency_micros);
  s += " device_reads=" + std::to_string(io.reads) +
       " batch_reads=" + std::to_string(io.batch_reads);
  s += "\n" + stats.ToString();
  return s;
}

QueryEngine::QueryEngine(PageDevice* shared, QueryEngineOptions opts)
    : shared_(shared),
      opts_(opts),
      clock_(opts.clock != nullptr ? opts.clock : SystemClock::Default()) {
  if (opts_.num_workers == 0) opts_.num_workers = 1;
  if (opts_.batch_size == 0) opts_.batch_size = 1;
  workers_.reserve(opts_.num_workers);
  for (uint32_t i = 0; i < opts_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(shared_, opts_.tracer));
  }
}

QueryEngine::~QueryEngine() { Stop(); }

Result<uint32_t> QueryEngine::AddStructure(PageId manifest) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_ || stopping_) {
      return Status::FailedPrecondition(
          "AddStructure is a setup-phase call; the engine is already running");
    }
  }
  PC_ASSIGN_OR_RETURN(uint64_t magic, PeekManifestMagic(shared_, manifest));
  QueryKind kind;
  if (magic == kExternalPstMagic || magic == kTwoLevelPstMagic) {
    kind = QueryKind::kTwoSided;
  } else if (magic == kThreeSidedPstMagic) {
    kind = QueryKind::kThreeSided;
  } else if (magic == kExtSegTreeMagic || magic == kExtIntTreeMagic) {
    kind = QueryKind::kStabbing;
  } else {
    return Status::InvalidArgument("manifest magic names no servable type");
  }

  // Every worker gets its own handle over its own counting device, so the
  // query paths never share in-memory state and per-request I/O deltas are
  // exact.  The handles all read the same on-disk pages — byte-identical
  // results by construction.
  for (auto& w : workers_) {
    StructureHandle h;
    h.kind = kind;
    switch (kind) {
      case QueryKind::kTwoSided: {
        PC_ASSIGN_OR_RETURN(h.two_sided, OpenTwoSidedIndex(&w->dev, manifest));
        break;
      }
      case QueryKind::kThreeSided: {
        h.three_sided = std::make_unique<ThreeSidedPst>(&w->dev);
        PC_RETURN_IF_ERROR(h.three_sided->Open(manifest));
        break;
      }
      case QueryKind::kStabbing: {
        if (magic == kExtSegTreeMagic) {
          h.seg_tree = std::make_unique<ExtSegmentTree>(&w->dev);
          PC_RETURN_IF_ERROR(h.seg_tree->Open(manifest));
        } else {
          h.interval_tree = std::make_unique<ExtIntervalTree>(&w->dev);
          PC_RETURN_IF_ERROR(h.interval_tree->Open(manifest));
        }
        break;
      }
    }
    w->handles.push_back(std::move(h));
  }
  manifests_.push_back(manifest);
  kinds_.push_back(kind);
  stores_.push_back(nullptr);
  return static_cast<uint32_t>(manifests_.size() - 1);
}

Result<uint32_t> QueryEngine::AddDynamicStore(DynamicStore* store) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_ || stopping_) {
      return Status::FailedPrecondition(
          "AddDynamicStore is a setup-phase call; the engine is already "
          "running");
    }
  }
  if (store == nullptr) {
    return Status::InvalidArgument("null dynamic store");
  }
  QueryKind kind;
  switch (store->structure()) {
    case DynamicStructure::kExternalPst:
    case DynamicStructure::kTwoLevelPst:
      kind = QueryKind::kTwoSided;
      break;
    case DynamicStructure::kThreeSidedPst:
      kind = QueryKind::kThreeSided;
      break;
    case DynamicStructure::kExtSegmentTree:
    case DynamicStructure::kExtIntervalTree:
      kind = QueryKind::kStabbing;
      break;
    default:
      return Status::InvalidArgument("dynamic store wraps no servable type");
  }
  // Workers cache a DynamicReadHandle per store but open it lazily at the
  // first query (and reopen on version moves): the current generation may
  // be republished between setup and serving, so an eager open here would
  // just be thrown away.
  for (auto& w : workers_) {
    StructureHandle h;
    h.kind = kind;
    h.dynamic = store;
    w->handles.push_back(std::move(h));
  }
  manifests_.push_back(store->root());
  kinds_.push_back(kind);
  stores_.push_back(store);
  return static_cast<uint32_t>(manifests_.size() - 1);
}

Status QueryEngine::SetTenantQuota(uint32_t tenant, uint64_t tokens) {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_ || stopping_) {
    return Status::FailedPrecondition(
        "SetTenantQuota is a setup-phase call; the engine is already running");
  }
  if (tokens > opts_.queue_capacity) {
    return Status::InvalidArgument(
        "tenant quota " + std::to_string(tokens) +
        " exceeds queue_capacity " + std::to_string(opts_.queue_capacity));
  }
  tenants_[tenant].quota = tokens;
  return Status::OK();
}

Status QueryEngine::Start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_ || stopping_) {
    return Status::FailedPrecondition("engine already started");
  }
  // Opening handles counted reads on the worker devices; zero them so the
  // aggregate io in stats() is pure serving traffic.
  for (auto& w : workers_) w->dev.ResetStats();
  running_ = true;
  for (auto& w : workers_) {
    w->thread = std::thread(&QueryEngine::WorkerLoop, this, w.get());
  }
  return Status::OK();
}

void QueryEngine::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

Status QueryEngine::Submit(uint32_t structure_id, const ServeQuery& query,
                           QueryDoneCallback done, uint64_t deadline_micros,
                           uint32_t tenant) {
  if (structure_id >= manifests_.size()) {
    return Status::InvalidArgument("unknown structure id " +
                                   std::to_string(structure_id));
  }
  Request req;
  req.structure_id = structure_id;
  req.query = query;
  req.done = std::move(done);
  req.deadline_micros = deadline_micros;
  req.submit_micros = clock_->NowMicros();
  req.tenant = tenant;
  return EnqueueRequest(std::move(req));
}

Status QueryEngine::SubmitUpdate(uint32_t structure_id,
                                 std::span<const DynamicUpdate> updates,
                                 QueryDoneCallback done,
                                 uint64_t deadline_micros, uint32_t tenant) {
  if (structure_id >= manifests_.size()) {
    return Status::InvalidArgument("unknown structure id " +
                                   std::to_string(structure_id));
  }
  if (stores_[structure_id] == nullptr) {
    return Status::InvalidArgument("structure " + std::to_string(structure_id) +
                                   " is static; updates need a dynamic store");
  }
  if (updates.empty()) {
    return Status::InvalidArgument("empty update group");
  }
  Request req;
  req.structure_id = structure_id;
  req.is_update = true;
  req.updates.assign(updates.begin(), updates.end());
  req.done = std::move(done);
  req.deadline_micros = deadline_micros;
  req.submit_micros = clock_->NowMicros();
  req.tenant = tenant;
  return EnqueueRequest(std::move(req));
}

Status QueryEngine::EnqueueRequest(Request req) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_ || stopping_) {
      return Status::FailedPrecondition("engine is not serving");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      ++rejected_overload_;
      return Status::Overloaded("queue full (" +
                                std::to_string(opts_.queue_capacity) +
                                " requests waiting)");
    }
    // Tenant admission: a tenant with a configured quota holds one token
    // per queued request and gets bounced once they are all in use — the
    // global queue may still have room, which is the point: the remaining
    // capacity stays available to everyone else.  Tokens release at batch
    // dequeue (see WorkerLoop), i.e. quota bounds queue residency, not
    // in-flight execution.
    auto it = tenants_.find(req.tenant);
    if (it != tenants_.end()) {
      TenantState& t = it->second;
      if (t.queued >= t.quota) {
        ++t.rejected;
        ++rejected_quota_;
        return Status::Overloaded(
            "tenant " + std::to_string(req.tenant) + " quota exhausted (" +
            std::to_string(t.quota) + " tokens)");
      }
      ++t.queued;
      ++t.admitted;
    }
    queue_.push_back(std::move(req));
    ++submitted_;
    max_queue_depth_ = std::max<uint64_t>(max_queue_depth_, queue_.size());
  }
  work_cv_.notify_one();
  return Status::OK();
}

void QueryEngine::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

int64_t QueryEngine::LocalityKey(QueryKind kind, const ServeQuery& q) {
  switch (kind) {
    case QueryKind::kTwoSided:
      return q.two_sided.x_min;
    case QueryKind::kThreeSided:
      return q.three_sided.x_min;
    case QueryKind::kStabbing:
      return q.stab;
  }
  return 0;
}

QueryResult QueryEngine::Execute(Worker* w, const Request& req) {
  StructureHandle& h = w->handles[req.structure_id];
  if (h.dynamic != nullptr) {
    if (req.is_update) {
      // Durable apply: WAL append + group-commit Sync inside the store.
      // The store serializes appliers on its own mutex, so concurrent
      // workers' update groups interleave at group granularity — never
      // within a group.  I/O goes through the store's device, not the
      // worker's counting device, so res.io stays zero here by design.
      QueryResult res;
      TraceSpan span(opts_.tracer, "serve.update", req.updates.size());
      res.status = h.dynamic->Apply(req.updates);
      update_groups_.fetch_add(1, std::memory_order_relaxed);
      if (res.status.ok()) {
        updates_applied_.fetch_add(req.updates.size(),
                                   std::memory_order_relaxed);
      } else {
        update_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      return res;
    }
    return ExecuteDynamicQuery(w, req);
  }
  QueryResult res;
  TraceSpan span(opts_.tracer, "serve.query", req.structure_id);
  const IoStats before = w->dev.stats();
  switch (h.kind) {
    case QueryKind::kTwoSided:
      res.status = h.two_sided->QueryTwoSided(req.query.two_sided,
                                              &res.points, &res.stats);
      break;
    case QueryKind::kThreeSided:
      res.status = h.three_sided->QueryThreeSided(req.query.three_sided,
                                                  &res.points, &res.stats);
      break;
    case QueryKind::kStabbing:
      if (h.seg_tree != nullptr) {
        res.status =
            h.seg_tree->Stab(req.query.stab, &res.intervals, &res.stats);
      } else {
        res.status =
            h.interval_tree->Stab(req.query.stab, &res.intervals, &res.stats);
      }
      break;
  }
  res.io = w->dev.stats() - before;
  return res;
}

QueryResult QueryEngine::ExecuteDynamicQuery(Worker* w, const Request& req) {
  QueryResult res;
  TraceSpan span(opts_.tracer, "serve.query", req.structure_id);
  StructureHandle& h = w->handles[req.structure_id];
  DynamicStore* store = h.dynamic;
  const IoStats before = w->dev.stats();
  for (;;) {
    // Pin the published generation so its pages cannot be reclaimed while
    // the base query walks them, then make sure the worker's cached handle
    // is over THAT generation (versions are unique, so a version match
    // means the handle already reads the pinned manifest).
    GenerationRef ref = store->PinCurrent();
    if (h.dyn_handle.version != ref.version) {
      Status s = h.dyn_handle.Open(&w->dev, store->structure(), ref.manifest,
                                   ref.version);
      if (!s.ok()) {
        store->Unpin(ref.version);
        res.status = s;
        break;
      }
    }
    std::vector<Point> pts;
    std::vector<Interval> ivs;
    QueryStats qstats;
    Status qs;
    bool consistent = false;
    switch (h.kind) {
      case QueryKind::kTwoSided:
        qs = h.dyn_handle.QueryTwoSided(req.query.two_sided, &pts, &qstats);
        if (qs.ok()) {
          consistent =
              store->OverlayTwoSided(ref.version, req.query.two_sided, &pts);
        }
        break;
      case QueryKind::kThreeSided:
        qs = h.dyn_handle.QueryThreeSided(req.query.three_sided, &pts,
                                          &qstats);
        if (qs.ok()) {
          consistent = store->OverlayThreeSided(ref.version,
                                                req.query.three_sided, &pts);
        }
        break;
      case QueryKind::kStabbing:
        qs = h.dyn_handle.Stab(req.query.stab, &ivs, &qstats);
        if (qs.ok()) {
          consistent = store->OverlayStab(ref.version, req.query.stab, &ivs);
        }
        break;
    }
    store->Unpin(ref.version);
    if (!qs.ok()) {
      res.status = qs;
      break;
    }
    if (consistent) {
      res.points = std::move(pts);
      res.intervals = std::move(ivs);
      res.stats = qstats;
      break;
    }
    // A publish absorbed overlay entries between our pin and the merge: the
    // overlay no longer pairs with the base we queried.  Re-pin (picking up
    // the new generation) and re-run — the loop terminates because each
    // retry observes a strictly newer version and publishes are finite.
    read_repins_.fetch_add(1, std::memory_order_relaxed);
  }
  res.io = w->dev.stats() - before;
  return res;
}

void QueryEngine::MaybeLogSlowQuery(const Request& req,
                                    const QueryResult& res) {
  const SlowQueryLogOptions& log = opts_.slow_query_log;
  const bool slow_latency = log.latency_threshold_micros != 0 &&
                            res.latency_micros >= log.latency_threshold_micros;
  const bool slow_reads = log.reads_threshold != 0 &&
                          res.stats.total_reads() >= log.reads_threshold;
  if (!slow_latency && !slow_reads) return;
  slow_queries_.fetch_add(1, std::memory_order_relaxed);
  SlowQueryLogEntry entry;
  entry.structure_id = req.structure_id;
  entry.kind = kinds_[req.structure_id];
  entry.query = req.query;
  entry.latency_micros = res.latency_micros;
  entry.io = res.io;
  entry.stats = res.stats;
  if (log.sink) {
    log.sink(entry);
  } else {
    const std::string line = entry.ToString();
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void QueryEngine::WorkerLoop(Worker* w) {
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      const size_t take =
          std::min<size_t>(opts_.batch_size, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        // Release the tenant's admission token as the request leaves the
        // queue: quota caps queued requests, and a dequeued one no longer
        // occupies the capacity the quota protects.
        auto it = tenants_.find(queue_.front().tenant);
        if (it != tenants_.end() && it->second.queued > 0) {
          --it->second.queued;
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }
    // No extra notify here: every Submit() posts its own notify_one, so a
    // worker parked while requests remain always has a wakeup in flight.

    TraceSpan batch_span(opts_.tracer, "serve.batch", batch.size());

    // Locality sort: group the batch by structure, then by query key, so
    // consecutive queries descend through the same skeletal neighborhoods
    // while the shared pool still holds them.  Updates sort with key
    // INT64_MIN — ahead of every query on the same structure — and
    // stable_sort keeps equal keys in submission order, so updates retain
    // their FIFO order relative to each other.
    auto request_key = [this](const Request& r) {
      return std::make_tuple(
          r.structure_id, r.is_update
                              ? std::numeric_limits<int64_t>::min()
                              : LocalityKey(kinds_[r.structure_id], r.query));
    };
    std::stable_sort(batch.begin(), batch.end(),
                     [&request_key](const Request& a, const Request& b) {
                       return request_key(a) < request_key(b);
                     });

    for (Request& req : batch) {
      QueryResult res;
      // Deadline gate at dispatch: an expired request is dropped before any
      // I/O is issued — never abandoned mid-scan — so the engine sheds load
      // that can no longer meet its deadline at zero device cost.
      const uint64_t now = clock_->NowMicros();
      if (req.deadline_micros != 0 && now > req.deadline_micros) {
        res.status = Status::DeadlineExceeded(
            "deadline passed " + std::to_string(now - req.deadline_micros) +
            "us before dispatch");
        res.latency_micros = now - req.submit_micros;
        expired_.fetch_add(1, std::memory_order_relaxed);
      } else {
        res = Execute(w, req);
        res.latency_micros = clock_->NowMicros() - req.submit_micros;
        latency_.Record(res.latency_micros);
        io_reads_.fetch_add(res.io.reads, std::memory_order_relaxed);
        io_batch_reads_.fetch_add(res.io.batch_reads,
                                  std::memory_order_relaxed);
        io_writes_.fetch_add(res.io.writes, std::memory_order_relaxed);
        MaybeLogSlowQuery(req, res);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (req.done) req.done(std::move(res));
      {
        std::lock_guard<std::mutex> lk(mu_);
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
      }
    }
  }
}

ServeStats QueryEngine::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.submitted = submitted_;
    s.rejected_overload = rejected_overload_;
    s.rejected_quota = rejected_quota_;
    s.queue_depth = queue_.size();
    s.max_queue_depth = max_queue_depth_;
    s.tenants.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) {
      s.tenants.push_back(ServeStats::TenantStats{
          id, t.quota, t.queued, t.admitted, t.rejected});
    }
  }
  s.completed = completed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  s.update_groups = update_groups_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.update_failures = update_failures_.load(std::memory_order_relaxed);
  s.read_repins = read_repins_.load(std::memory_order_relaxed);
  s.latency = latency_.TakeSnapshot();
  s.io.reads = io_reads_.load(std::memory_order_relaxed);
  s.io.batch_reads = io_batch_reads_.load(std::memory_order_relaxed);
  s.io.writes = io_writes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pathcache
