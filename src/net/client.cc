#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/safe_strerror.h"

namespace pathcache {
namespace net {

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket: " + SafeStrError(errno));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError("connect: " + SafeStrError(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  rbuf_.clear();
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  rbuf_.clear();
}

Status NetClient::WriteAll(const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::write(fd_, data + off, size - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return Status::IoError("write: " + SafeStrError(errno));
  }
  return Status::OK();
}

Status NetClient::Send(const Request& req) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Request stamped = req;
  if (stamped.request_id == 0) stamped.request_id = next_request_id_++;
  std::vector<uint8_t> frame;
  PC_RETURN_IF_ERROR(EncodeRequest(stamped, &frame));
  return WriteAll(frame.data(), frame.size());
}

Status NetClient::SendRaw(std::span<const uint8_t> bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return WriteAll(bytes.data(), bytes.size());
}

void NetClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status NetClient::Receive(Response* out) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    DecodeResult r = DecodeFrame(rbuf_.data(), rbuf_.size());
    if (r.verdict == DecodeVerdict::kBadFrame) {
      Close();
      return Status::Corruption("response stream: " +
                                std::string(r.error.message()));
    }
    if (r.verdict == DecodeVerdict::kFrame) {
      Status parsed = ParseResponse(r.frame, {r.payload, r.frame.payload_len}, out);
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<long>(r.consumed));
      if (!parsed.ok()) {
        Close();
        return Status::Corruption("response payload: " +
                                  std::string(parsed.message()));
      }
      return Status::OK();
    }
    uint8_t chunk[16 * 1024];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = n == 0 ? Status::IoError("connection closed by server")
                       : Status::IoError("read: " + SafeStrError(errno));
    Close();
    return st;
  }
}

Status NetClient::ReceiveRawFrame(std::vector<uint8_t>* out) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    DecodeResult r = DecodeFrame(rbuf_.data(), rbuf_.size());
    if (r.verdict == DecodeVerdict::kBadFrame) {
      Close();
      return Status::Corruption("response stream: " +
                                std::string(r.error.message()));
    }
    if (r.verdict == DecodeVerdict::kFrame) {
      out->assign(rbuf_.begin(), rbuf_.begin() + static_cast<long>(r.consumed));
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<long>(r.consumed));
      return Status::OK();
    }
    uint8_t chunk[16 * 1024];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = n == 0 ? Status::IoError("connection closed by server")
                       : Status::IoError("read: " + SafeStrError(errno));
    Close();
    return st;
  }
}

Status NetClient::Call(const Request& req, Response* out) {
  Request stamped = req;
  if (stamped.request_id == 0) stamped.request_id = next_request_id_++;
  PC_RETURN_IF_ERROR(Send(stamped));
  PC_RETURN_IF_ERROR(Receive(out));
  // kProtocolError frames answer the stream, not a request, so their id is 0.
  if (out->type != MsgType::kProtocolError &&
      out->request_id != stamped.request_id) {
    Close();
    return Status::Corruption("response id does not match request id");
  }
  return Status::OK();
}

Status NetClient::ResponseToStatus(const Response& resp) {
  switch (resp.type) {
    case MsgType::kError:
    case MsgType::kProtocolError:
      switch (resp.code) {
        case StatusCode::kInvalidArgument:
          return Status::InvalidArgument(resp.message);
        case StatusCode::kNotFound:
          return Status::NotFound(resp.message);
        case StatusCode::kIoError:
          return Status::IoError(resp.message);
        case StatusCode::kCorruption:
          return Status::Corruption(resp.message);
        case StatusCode::kNotSupported:
          return Status::NotSupported(resp.message);
        case StatusCode::kOutOfRange:
          return Status::OutOfRange(resp.message);
        case StatusCode::kFailedPrecondition:
          return Status::FailedPrecondition(resp.message);
        case StatusCode::kOverloaded:
          return Status::Overloaded(resp.message);
        case StatusCode::kDeadlineExceeded:
          return Status::DeadlineExceeded(resp.message);
        default:
          return Status::Corruption("error response with bad code");
      }
    case MsgType::kRetryAfter:
      return Status::Overloaded(
          "retry after " + std::to_string(resp.retry_after_micros) + "us");
    default:
      return Status::OK();
  }
}

Status NetClient::Ping() {
  Request req;
  req.type = MsgType::kPing;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kPong) return ResponseToStatus(resp);
  return Status::OK();
}

Status NetClient::SetTenant(uint32_t tenant) {
  Request req;
  req.type = MsgType::kSetTenant;
  req.tenant = tenant;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kTenantAck) return ResponseToStatus(resp);
  if (resp.tenant != tenant) {
    return Status::Corruption("tenant ack does not echo the bound tenant");
  }
  return Status::OK();
}

Status NetClient::QueryTwoSided(uint32_t structure_id, const TwoSidedQuery& q,
                                std::vector<Point>* out, uint32_t budget_micros) {
  Request req;
  req.type = MsgType::kQueryTwoSided;
  req.structure_id = structure_id;
  req.budget_micros = budget_micros;
  req.two_sided = q;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kPoints) return ResponseToStatus(resp);
  *out = std::move(resp.points);
  return Status::OK();
}

Status NetClient::QueryThreeSided(uint32_t structure_id, const ThreeSidedQuery& q,
                                  std::vector<Point>* out,
                                  uint32_t budget_micros) {
  Request req;
  req.type = MsgType::kQueryThreeSided;
  req.structure_id = structure_id;
  req.budget_micros = budget_micros;
  req.three_sided = q;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kPoints) return ResponseToStatus(resp);
  *out = std::move(resp.points);
  return Status::OK();
}

Status NetClient::QueryRange(uint32_t structure_id, const RangeQuery& q,
                             std::vector<Point>* out, uint32_t budget_micros) {
  Request req;
  req.type = MsgType::kQueryRange;
  req.structure_id = structure_id;
  req.budget_micros = budget_micros;
  req.range = q;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kPoints) return ResponseToStatus(resp);
  *out = std::move(resp.points);
  return Status::OK();
}

Status NetClient::QueryDiagonal(uint32_t structure_id, int64_t corner,
                                std::vector<Point>* out, uint32_t budget_micros) {
  Request req;
  req.type = MsgType::kQueryDiagonal;
  req.structure_id = structure_id;
  req.budget_micros = budget_micros;
  req.corner = corner;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kPoints) return ResponseToStatus(resp);
  *out = std::move(resp.points);
  return Status::OK();
}

Status NetClient::QueryStab(uint32_t structure_id, int64_t q,
                            std::vector<Interval>* out, uint32_t budget_micros) {
  Request req;
  req.type = MsgType::kQueryStab;
  req.structure_id = structure_id;
  req.budget_micros = budget_micros;
  req.stab = q;
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kIntervals) return ResponseToStatus(resp);
  *out = std::move(resp.intervals);
  return Status::OK();
}

Status NetClient::Update(uint32_t structure_id,
                         std::span<const DynamicUpdate> updates,
                         uint32_t budget_micros) {
  Request req;
  req.type = MsgType::kUpdateGroup;
  req.structure_id = structure_id;
  req.budget_micros = budget_micros;
  req.updates.assign(updates.begin(), updates.end());
  Response resp;
  PC_RETURN_IF_ERROR(Call(req, &resp));
  if (resp.type != MsgType::kUpdateAck) return ResponseToStatus(resp);
  return Status::OK();
}

}  // namespace net
}  // namespace pathcache
