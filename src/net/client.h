// NetClient: a small blocking client for the wire protocol, used by tests,
// examples and bench_net.
//
// The client is deliberately simple — one TCP connection, synchronous
// Call(), plus a split Send()/Receive() pair for pipelining — because the
// interesting concurrency lives on the server.  Responses come back in
// request order (the protocol guarantees it), so pipelined callers just
// Receive() once per Send().
//
// Thread-safety: none.  One NetClient per thread; open several connections
// for parallel load (bench_net does exactly that).

#ifndef PATHCACHE_NET_CLIENT_H_
#define PATHCACHE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace pathcache {
namespace net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects (blocking) to host:port.  FailedPrecondition if already
  /// connected, IoError on socket/connect failure.
  Status Connect(const std::string& host, uint16_t port);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Encodes and writes one request.  Stamps req.request_id with the next
  /// sequence number unless the caller set one (nonzero).
  Status Send(const Request& req);

  /// Writes arbitrary bytes to the socket — the robustness tests use this
  /// to deliver malformed and partial frames.
  Status SendRaw(std::span<const uint8_t> bytes);

  /// Half-closes the send side (shutdown(SHUT_WR)); Receive() still works.
  void ShutdownWrite();

  /// Blocks until one whole response frame arrives and parses it.  IoError
  /// on EOF/socket error, Corruption on a frame-level violation (the
  /// connection is closed in both cases).  A response of type kError /
  /// kRetryAfter / kProtocolError still returns OK here — protocol-level
  /// outcomes are data, not transport failures; callers branch on
  /// out->type.
  Status Receive(Response* out);

  /// Blocks until one whole frame arrives and returns its raw bytes without
  /// parsing the payload — the fuzz oracle byte-compares server responses
  /// against an in-process twin through this.
  Status ReceiveRawFrame(std::vector<uint8_t>* out);

  /// Send + Receive, asserting the response echoes the request id.
  Status Call(const Request& req, Response* out);

  // Convenience wrappers for the common shapes; each fills a Request,
  // Call()s, and maps kError responses onto their carried Status so simple
  // callers can stay on the Status rail.  kRetryAfter surfaces as
  // kOverloaded with the hint in the message.
  Status Ping();
  /// Binds this connection to admission tenant `tenant`; later queries and
  /// updates are admitted against that tenant's quota on the server.
  Status SetTenant(uint32_t tenant);
  Status QueryTwoSided(uint32_t structure_id, const TwoSidedQuery& q,
                       std::vector<Point>* out, uint32_t budget_micros = 0);
  Status QueryThreeSided(uint32_t structure_id, const ThreeSidedQuery& q,
                         std::vector<Point>* out, uint32_t budget_micros = 0);
  Status QueryRange(uint32_t structure_id, const RangeQuery& q,
                    std::vector<Point>* out, uint32_t budget_micros = 0);
  Status QueryDiagonal(uint32_t structure_id, int64_t corner,
                       std::vector<Point>* out, uint32_t budget_micros = 0);
  Status QueryStab(uint32_t structure_id, int64_t q, std::vector<Interval>* out,
                   uint32_t budget_micros = 0);
  Status Update(uint32_t structure_id, std::span<const DynamicUpdate> updates,
                uint32_t budget_micros = 0);

 private:
  Status WriteAll(const uint8_t* data, size_t size);
  /// Turns a protocol-level response into a Status for the wrappers.
  static Status ResponseToStatus(const Response& resp);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> rbuf_;  // bytes read past the last decoded frame
};

}  // namespace net
}  // namespace pathcache

#endif  // PATHCACHE_NET_CLIENT_H_
