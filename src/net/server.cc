#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/safe_strerror.h"

namespace pathcache {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr int kEpollTimeoutMs = 100;
/// How long the listener stays out of the epoll set after an EMFILE/ENFILE
/// accept failure.  Matches the epoll timeout so the loop re-arms promptly
/// even with no other traffic.
constexpr uint64_t kAcceptBackoffMicros = 100 * 1000;

uint64_t SteadyNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  // Sockets are created with SOCK_NONBLOCK; accepted fds use accept4.  This
  // covers the rare path where accept4 is unavailable (it never is on the
  // kernels we target, but the fallback is cheap).
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One response slot plus the bytes that answer it.  Workers fill `bytes`
/// and flip `done` under the owning connection's mutex; the loop thread
/// drains leading done slots into the write buffer.  Kept alive by
/// shared_ptr so a completion arriving after its connection closed only
/// writes into soon-to-be-freed slot memory, never a dead Conn field.
struct NetServer::Slot {
  bool done = false;
  std::vector<uint8_t> bytes;
};

struct NetServer::Waker {
  int fd = -1;

  Waker() { fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }
  ~Waker() {
    if (fd >= 0) ::close(fd);
  }
  void Notify() const {
    uint64_t one = 1;
    // A full eventfd counter (EAGAIN) still wakes the loop; ignore errors.
    ssize_t n = ::write(fd, &one, sizeof(one));
    (void)n;
  }
  void Drain() const {
    uint64_t val = 0;
    ssize_t n = ::read(fd, &val, sizeof(val));
    (void)n;
  }
};

struct NetServer::Conn {
  int fd = -1;

  // Loop-thread-only state.
  std::vector<uint8_t> rbuf;
  size_t rpos = 0;  // decoded prefix of rbuf
  std::vector<uint8_t> wbuf;
  size_t wpos = 0;  // flushed prefix of wbuf
  uint32_t epoll_events = 0;
  bool read_paused = false;      // backpressure engaged (for the counter)
  bool saw_eof = false;          // peer half-closed; answer then close
  bool close_after_flush = false;

  // Loop-thread-only: the admission tenant bound by kSetTenant; every later
  // query/update on this connection submits under it.
  uint32_t tenant = 0;

  // Shared with engine workers, guarded by mu.
  std::mutex mu;
  std::deque<std::shared_ptr<Slot>> pipeline;
};

AcceptErrorAction ClassifyAcceptError(int err) {
  switch (err) {
    // The connection died between the kernel's SYN handling and our
    // accept — a per-connection mishap, not a listener problem.  Keep
    // draining the backlog.
    case ECONNABORTED:
    case EPROTO:
      return AcceptErrorAction::kRetry;
    // Fd/buffer exhaustion: every immediate retry fails the same way, so a
    // hot accept loop would spin at 100% CPU.  Disarm the listener briefly;
    // pending connections wait in the backlog meanwhile.
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return AcceptErrorAction::kBackoff;
    default:
      return AcceptErrorAction::kFail;
  }
}

NetServer::NetServer(QueryService* engine, NetServerOptions opts)
    : engine_(engine), opts_(std::move(opts)), tracer_(opts_.tracer) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError("socket: " + SafeStrError(errno));

  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address: " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IoError("bind: " + SafeStrError(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, opts_.backlog) != 0) {
    Status st = Status::IoError("listen: " + SafeStrError(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = Status::IoError("getsockname: " + SafeStrError(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    Status st = Status::IoError("epoll_create1: " + SafeStrError(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  waker_ = std::make_shared<Waker>();
  if (waker_->fd < 0) {
    ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = listen_fd_ = -1;
    waker_.reset();
    return Status::IoError("eventfd failed");
  }

  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = waker_->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, waker_->fd, &ev);

  stop_.store(false);
  running_.store(true);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  waker_->Notify();
  loop_thread_.join();

  for (auto& [fd, c] : conns_) {
    ::close(c->fd);
    c->fd = -1;
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    stats_.open_connections.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = epoll_fd_ = -1;
  // The waker's eventfd stays open until the last in-flight completion
  // drops its reference; a Notify() into it is then a harmless counter add.
  waker_.reset();
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted = stats_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed = stats_.connections_closed.load(std::memory_order_relaxed);
  s.connections_rejected = stats_.connections_rejected.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  s.protocol_errors = stats_.protocol_errors.load(std::memory_order_relaxed);
  s.request_errors = stats_.request_errors.load(std::memory_order_relaxed);
  s.retry_after = stats_.retry_after.load(std::memory_order_relaxed);
  s.read_pauses = stats_.read_pauses.load(std::memory_order_relaxed);
  s.accept_errors = stats_.accept_errors.load(std::memory_order_relaxed);
  s.open_connections = stats_.open_connections.load(std::memory_order_relaxed);
  return s;
}

void NetServer::Loop() {
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                       kEpollTimeoutMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sensible left to do
    }
    // Re-arm a listener parked by EMFILE/ENFILE backoff once the deadline
    // passes; the epoll timeout guarantees we get here even when idle.
    if (accept_rearm_micros_ != 0 &&
        SteadyNowMicros() >= accept_rearm_micros_) {
      accept_rearm_micros_ = 0;
      epoll_event ev;
      memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t evs = events[i].events;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == waker_->fd) {
        waker_->Drain();
        // Completions do not say which connection finished; with at most
        // max_connections of them, sweeping every pipeline is cheaper than
        // a cross-thread dirty list and has no ordering hazards.
        std::vector<std::shared_ptr<Conn>> snapshot;
        snapshot.reserve(conns_.size());
        for (auto& [cfd, c] : conns_) snapshot.push_back(c);
        for (auto& c : snapshot) {
          if (c->fd < 0) continue;
          ServiceConn(c);
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this wakeup
      std::shared_ptr<Conn> c = it->second;
      if (evs & (EPOLLHUP | EPOLLERR)) {
        CloseConn(c);
        continue;
      }
      if (evs & EPOLLOUT) ServiceConn(c);
      if (c->fd >= 0 && (evs & EPOLLIN)) ReadReady(c);
    }
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      stats_.accept_errors.fetch_add(1, std::memory_order_relaxed);
      switch (ClassifyAcceptError(errno)) {
        case AcceptErrorAction::kRetry:
          // ECONNABORTED/EPROTO: that one connection is gone; the rest of
          // the backlog is fine.
          continue;
        case AcceptErrorAction::kBackoff:
          // Out of fds/buffers: a level-triggered listener would wake us
          // right back into the same failure.  Park it and let Loop()
          // re-arm after the backoff window.
          epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          accept_rearm_micros_ = SteadyNowMicros() + kAcceptBackoffMicros;
          if (tracer_) tracer_->Instant("serve.net.accept_backoff");
          return;
        case AcceptErrorAction::kFail:
          return;  // counted; the listener stays armed for the next event
      }
      return;
    }
    if (conns_.size() >= opts_.max_connections) {
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->epoll_events = EPOLLIN;
    epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = c->epoll_events;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_[fd] = c;
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.open_connections.fetch_add(1, std::memory_order_relaxed);
    if (tracer_) tracer_->Instant("serve.net.accept", static_cast<uint64_t>(fd));
  }
}

void NetServer::ReadReady(const std::shared_ptr<Conn>& c) {
  uint8_t chunk[kReadChunk];
  for (;;) {
    ssize_t n = ::read(c->fd, chunk, sizeof(chunk));
    if (n > 0) {
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      c->rbuf.insert(c->rbuf.end(), chunk, chunk + n);
      if (static_cast<size_t>(n) < sizeof(chunk)) break;  // drained the socket
      continue;
    }
    if (n == 0) {
      // Peer finished sending.  Everything already buffered still gets
      // decoded and answered, then the connection closes once the write
      // buffer drains (clients may shutdown(WR) and collect responses).
      c->saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(c);
    return;
  }
  ServiceConn(c);
}

void NetServer::ServiceConn(const std::shared_ptr<Conn>& c) {
  // Alternate decode and drain until neither makes progress: a run of
  // inline-answered frames (pings, malformed payloads) can fill and empty
  // the pipeline repeatedly with no socket or engine event in between, and
  // engine completions must re-open decode capacity that backpressure
  // closed.  "Progress" is bytes leaving the read buffer.
  for (;;) {
    if (c->fd < 0) return;
    DrainCompleted(c);
    const size_t before = c->rbuf.size();
    DecodeLoop(c);
    if (c->fd < 0) return;
    if (c->rbuf.size() == before) break;
  }
  DrainCompleted(c);
  WriteReady(c);
}

void NetServer::DecodeLoop(const std::shared_ptr<Conn>& c) {
  while (c->fd >= 0 && !c->close_after_flush) {
    {
      std::lock_guard<std::mutex> lk(c->mu);
      if (c->pipeline.size() >= opts_.max_pipeline) break;  // backpressure
    }
    if (c->wbuf.size() - c->wpos > opts_.max_write_buffer) break;
    DecodeResult r = DecodeFrame(c->rbuf.data() + c->rpos, c->rbuf.size() - c->rpos);
    if (r.verdict == DecodeVerdict::kNeedMore) break;
    if (r.verdict == DecodeVerdict::kBadFrame) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (tracer_) tracer_->Instant("serve.net.protocol_error");
      Response resp;
      resp.type = MsgType::kProtocolError;
      resp.request_id = 0;  // the header cannot be trusted
      resp.code = r.error.code() == StatusCode::kOk ? StatusCode::kInvalidArgument
                                                    : r.error.code();
      resp.message = std::string(r.error.message());
      CompleteInline(c, resp);
      c->close_after_flush = true;
      c->rbuf.clear();
      c->rpos = 0;
      break;
    }
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(c, r.frame, r.payload);
    c->rpos += r.consumed;
  }
  // Compact the decoded prefix so the buffer never grows past one frame of
  // undecoded bytes plus one socket read.
  if (c->rpos > 0) {
    c->rbuf.erase(c->rbuf.begin(), c->rbuf.begin() + static_cast<long>(c->rpos));
    c->rpos = 0;
  }
  UpdateReadInterest(c);
}

void NetServer::HandleFrame(const std::shared_ptr<Conn>& c, const FrameInfo& frame,
                            const uint8_t* payload) {
  if (tracer_) tracer_->Begin("serve.net.frame", frame.request_id);
  Request req;
  Status parsed = ParseRequest(frame, {payload, frame.payload_len}, &req);
  if (!parsed.ok()) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.type = MsgType::kError;
    resp.request_id = frame.request_id;
    resp.code = parsed.code();
    resp.message = std::string(parsed.message());
    CompleteInline(c, resp);
    if (tracer_) tracer_->End("serve.net.frame", frame.request_id);
    return;
  }
  switch (req.type) {
    case MsgType::kPing: {
      Response resp;
      resp.type = MsgType::kPong;
      resp.request_id = req.request_id;
      CompleteInline(c, resp);
      break;
    }
    case MsgType::kSetTenant: {
      // Binds the connection's admission tenant; later requests submit
      // under its quota.  Answered inline in pipeline order like ping.
      c->tenant = req.tenant;
      Response resp;
      resp.type = MsgType::kTenantAck;
      resp.request_id = req.request_id;
      resp.tenant = req.tenant;
      CompleteInline(c, resp);
      break;
    }
    case MsgType::kUpdateGroup:
      HandleUpdate(c, req);
      break;
    default:
      HandleQuery(c, req);
      break;
  }
  if (tracer_) tracer_->End("serve.net.frame", frame.request_id);
}

namespace {

/// Maps a wire query onto the engine's menu; returns the kind the target
/// structure must have.  kQueryRange additionally needs the y_max filter.
bool WireQueryToServe(const Request& req, ServeQuery* q, QueryKind* need) {
  switch (req.type) {
    case MsgType::kQueryTwoSided:
      *q = ServeQuery::TwoSided(req.two_sided);
      *need = QueryKind::kTwoSided;
      return true;
    case MsgType::kQueryDiagonal:
      *q = ServeQuery::TwoSided(DiagonalCornerQuery{req.corner}.AsTwoSided());
      *need = QueryKind::kTwoSided;
      return true;
    case MsgType::kQueryThreeSided:
      *q = ServeQuery::ThreeSided(req.three_sided);
      *need = QueryKind::kThreeSided;
      return true;
    case MsgType::kQueryRange:
      *q = ServeQuery::ThreeSided(
          ThreeSidedQuery{req.range.x_min, req.range.x_max, req.range.y_min});
      *need = QueryKind::kThreeSided;
      return true;
    case MsgType::kQueryStab:
      *q = ServeQuery::Stab(req.stab);
      *need = QueryKind::kStabbing;
      return true;
    default:
      return false;
  }
}

}  // namespace

void NetServer::HandleQuery(const std::shared_ptr<Conn>& c, const Request& req) {
  ServeQuery query;
  QueryKind need = QueryKind::kTwoSided;
  if (!WireQueryToServe(req, &query, &need) ||
      req.structure_id >= engine_->num_structures()) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.type = MsgType::kError;
    resp.request_id = req.request_id;
    resp.code = StatusCode::kInvalidArgument;
    resp.message = "unknown structure id";
    CompleteInline(c, resp);
    return;
  }
  if (engine_->structure_kind(req.structure_id) != need) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.type = MsgType::kError;
    resp.request_id = req.request_id;
    resp.code = StatusCode::kInvalidArgument;
    resp.message = "structure kind does not answer this query type";
    CompleteInline(c, resp);
    return;
  }

  uint64_t deadline = 0;
  if (req.budget_micros != 0)
    deadline = engine_->clock()->NowMicros() + req.budget_micros;

  auto slot = std::make_shared<Slot>();
  {
    std::lock_guard<std::mutex> lk(c->mu);
    c->pipeline.push_back(slot);
  }

  const uint64_t request_id = req.request_id;
  const bool is_range = req.type == MsgType::kQueryRange;
  const int64_t y_max = req.range.y_max;
  const bool intervals = need == QueryKind::kStabbing;
  const uint64_t retry_hint = opts_.retry_after_micros;
  std::shared_ptr<Conn> conn = c;
  std::shared_ptr<Waker> waker = waker_;
  AtomicStats* stats = &stats_;

  Status submitted = engine_->Submit(
      req.structure_id, query,
      [conn, slot, waker, stats, request_id, is_range, y_max, intervals,
       retry_hint](QueryResult res) {
        Response resp;
        resp.request_id = request_id;
        if (!res.status.ok()) {
          if (res.status.IsOverloaded()) {
            // A routed query can surface admission control asynchronously
            // (a shard's engine bounced a sub-submit); keep the wire
            // contract identical to the synchronous bounce: RETRY_AFTER,
            // connection stays open.
            resp.type = MsgType::kRetryAfter;
            resp.retry_after_micros = retry_hint;
            stats->retry_after.fetch_add(1, std::memory_order_relaxed);
          } else {
            resp.type = MsgType::kError;
            resp.code = res.status.code();
            resp.message = std::string(res.status.message());
            stats->request_errors.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (intervals) {
          resp.type = MsgType::kIntervals;
          resp.intervals = std::move(res.intervals);
        } else {
          resp.type = MsgType::kPoints;
          resp.points = std::move(res.points);
          if (is_range) {
            std::erase_if(resp.points,
                          [y_max](const Point& p) { return p.y > y_max; });
          }
        }
        std::vector<uint8_t> bytes;
        Status enc = EncodeResponse(resp, &bytes);
        if (!enc.ok()) {
          // Result set larger than a frame: substitute an error response.
          Response err;
          err.type = MsgType::kError;
          err.request_id = request_id;
          err.code = enc.code();
          err.message = std::string(enc.message());
          bytes.clear();
          (void)EncodeResponse(err, &bytes);
          stats->request_errors.fetch_add(1, std::memory_order_relaxed);
        }
        {
          std::lock_guard<std::mutex> lk(conn->mu);
          slot->bytes = std::move(bytes);
          slot->done = true;
        }
        waker->Notify();
      },
      deadline, c->tenant);

  if (!submitted.ok()) FillRejectedSlot(c, slot, request_id, submitted);
}

void NetServer::HandleUpdate(const std::shared_ptr<Conn>& c, const Request& req) {
  if (req.structure_id >= engine_->num_structures() ||
      !engine_->structure_dynamic(req.structure_id)) {
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.type = MsgType::kError;
    resp.request_id = req.request_id;
    resp.code = StatusCode::kInvalidArgument;
    resp.message = "structure does not accept updates";
    CompleteInline(c, resp);
    return;
  }

  uint64_t deadline = 0;
  if (req.budget_micros != 0)
    deadline = engine_->clock()->NowMicros() + req.budget_micros;

  auto slot = std::make_shared<Slot>();
  {
    std::lock_guard<std::mutex> lk(c->mu);
    c->pipeline.push_back(slot);
  }

  const uint64_t request_id = req.request_id;
  const uint32_t applied = static_cast<uint32_t>(req.updates.size());
  std::shared_ptr<Conn> conn = c;
  std::shared_ptr<Waker> waker = waker_;
  AtomicStats* stats = &stats_;

  Status submitted = engine_->SubmitUpdate(
      req.structure_id, req.updates,
      [conn, slot, waker, stats, request_id, applied](QueryResult res) {
        Response resp;
        resp.request_id = request_id;
        if (!res.status.ok()) {
          resp.type = MsgType::kError;
          resp.code = res.status.code();
          resp.message = std::string(res.status.message());
          stats->request_errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          resp.type = MsgType::kUpdateAck;
          resp.applied = applied;
        }
        std::vector<uint8_t> bytes;
        (void)EncodeResponse(resp, &bytes);
        {
          std::lock_guard<std::mutex> lk(conn->mu);
          slot->bytes = std::move(bytes);
          slot->done = true;
        }
        waker->Notify();
      },
      deadline, c->tenant);

  if (!submitted.ok()) FillRejectedSlot(c, slot, request_id, submitted);
}

void NetServer::FillRejectedSlot(const std::shared_ptr<Conn>& c,
                                 const std::shared_ptr<Slot>& slot,
                                 uint64_t request_id, const Status& why) {
  Response resp;
  resp.request_id = request_id;
  if (why.IsOverloaded()) {
    // Admission control: the engine queue is full.  RETRY_AFTER instead of
    // dropping the connection is the overload contract bench_net asserts.
    resp.type = MsgType::kRetryAfter;
    resp.retry_after_micros = opts_.retry_after_micros;
    stats_.retry_after.fetch_add(1, std::memory_order_relaxed);
    if (tracer_) tracer_->Instant("serve.net.retry_after", request_id);
  } else {
    resp.type = MsgType::kError;
    resp.code = why.code();
    resp.message = std::string(why.message());
    stats_.request_errors.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<uint8_t> bytes;
  (void)EncodeResponse(resp, &bytes);
  {
    std::lock_guard<std::mutex> lk(c->mu);
    slot->bytes = std::move(bytes);
    slot->done = true;
  }
}

void NetServer::CompleteInline(const std::shared_ptr<Conn>& c, const Response& resp) {
  auto slot = std::make_shared<Slot>();
  Status enc = EncodeResponse(resp, &slot->bytes);
  if (!enc.ok()) slot->bytes.clear();  // unreachable for the inline shapes
  slot->done = true;
  std::lock_guard<std::mutex> lk(c->mu);
  c->pipeline.push_back(slot);
}

void NetServer::DrainCompleted(const std::shared_ptr<Conn>& c) {
  std::lock_guard<std::mutex> lk(c->mu);
  while (!c->pipeline.empty() && c->pipeline.front()->done) {
    std::vector<uint8_t>& bytes = c->pipeline.front()->bytes;
    if (!bytes.empty()) {
      c->wbuf.insert(c->wbuf.end(), bytes.begin(), bytes.end());
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    }
    c->pipeline.pop_front();
  }
}

void NetServer::WriteReady(const std::shared_ptr<Conn>& c) {
  while (c->wpos < c->wbuf.size()) {
    ssize_t n = ::write(c->fd, c->wbuf.data() + c->wpos, c->wbuf.size() - c->wpos);
    if (n > 0) {
      c->wpos += static_cast<size_t>(n);
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(c);
    return;
  }
  if (c->wpos == c->wbuf.size()) {
    c->wbuf.clear();
    c->wpos = 0;
    // A protocol error (close_after_flush) or a peer EOF (saw_eof) closes
    // once every pending response has left; ServiceConn ran decode just
    // before this, so any bytes still in rbuf are an unfinishable partial
    // frame — exactly the mid-frame-disconnect case, dropped by design.
    if (c->close_after_flush || c->saw_eof) {
      bool pipeline_empty;
      {
        std::lock_guard<std::mutex> lk(c->mu);
        pipeline_empty = c->pipeline.empty();
      }
      if (pipeline_empty) {
        CloseConn(c);
        return;
      }
    }
  } else if (c->wpos > 0 && c->wpos * 2 >= c->wbuf.size()) {
    // Compact once the flushed prefix dominates, keeping memory bounded
    // without memmoving on every partial write.
    c->wbuf.erase(c->wbuf.begin(), c->wbuf.begin() + static_cast<long>(c->wpos));
    c->wpos = 0;
  }
  UpdateReadInterest(c);
}

void NetServer::UpdateReadInterest(const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  size_t depth;
  {
    std::lock_guard<std::mutex> lk(c->mu);
    depth = c->pipeline.size();
  }
  const bool backpressured = depth >= opts_.max_pipeline ||
                             (c->wbuf.size() - c->wpos) > opts_.max_write_buffer;
  const bool want_read = !c->saw_eof && !c->close_after_flush && !backpressured;
  if (backpressured && !c->read_paused) {
    c->read_paused = true;
    stats_.read_pauses.fetch_add(1, std::memory_order_relaxed);
    if (tracer_) tracer_->Instant("serve.net.read_pause");
  } else if (!backpressured) {
    c->read_paused = false;
  }
  uint32_t want = (want_read ? EPOLLIN : 0u) |
                  (c->wpos < c->wbuf.size() ? EPOLLOUT : 0u);
  if (want != c->epoll_events) {
    c->epoll_events = want;
    EpollMod(c);
  }
}

void NetServer::EpollMod(const std::shared_ptr<Conn>& c) {
  epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = c->epoll_events;
  ev.data.fd = c->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void NetServer::CloseConn(const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  conns_.erase(c->fd);
  ::close(c->fd);
  c->fd = -1;
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  stats_.open_connections.fetch_sub(1, std::memory_order_relaxed);
  if (tracer_) tracer_->Instant("serve.net.close");
  // Outstanding engine completions for this connection still hold the Conn
  // and their Slot via shared_ptr; they will fill orphaned slots and wake
  // the loop, which finds the fd gone and does nothing.
}

}  // namespace net
}  // namespace pathcache
