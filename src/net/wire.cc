#include "net/wire.h"

#include <cstring>

#include "io/crc32c.h"

namespace pathcache {
namespace net {
namespace {

// Shift-based little-endian accessors: well-defined on any byte values and
// any host endianness, which is what lets the decode surface run over
// attacker-controlled input under UBSan without a finding.
void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(uint8_t(v));
  out->push_back(uint8_t(v >> 8));
  out->push_back(uint8_t(v >> 16));
  out->push_back(uint8_t(v >> 24));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  PutU32(uint32_t(v), out);
  PutU32(uint32_t(v >> 32), out);
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(uint64_t(v), out);
}

uint32_t GetU32(const uint8_t* p) {
  return uint32_t(p[0]) | uint32_t(p[1]) << 8 | uint32_t(p[2]) << 16 |
         uint32_t(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return uint64_t(GetU32(p)) | uint64_t(GetU32(p + 4)) << 32;
}

int64_t GetI64(const uint8_t* p) { return int64_t(GetU64(p)); }

uint16_t GetU16(const uint8_t* p) {
  return uint16_t(uint32_t(p[0]) | uint32_t(p[1]) << 8);
}

Status Malformed(MsgType t, const std::string& what) {
  return Status::InvalidArgument("malformed " + std::string(MsgTypeName(t)) +
                                 " payload: " + what);
}

// The query payload prefix shared by every query request.
constexpr size_t kQueryPrefix = 8;

size_t FixedQueryPayload(MsgType t) {
  switch (t) {
    case MsgType::kQueryTwoSided:
      return kQueryPrefix + 16;
    case MsgType::kQueryThreeSided:
      return kQueryPrefix + 24;
    case MsgType::kQueryStab:
    case MsgType::kQueryDiagonal:
      return kQueryPrefix + 8;
    case MsgType::kQueryRange:
      return kQueryPrefix + 32;
    default:
      return 0;
  }
}

void AppendRecord(int64_t a, int64_t b, uint64_t id,
                  std::vector<uint8_t>* out) {
  PutI64(a, out);
  PutI64(b, out);
  PutU64(id, out);
}

}  // namespace

bool IsRequestType(MsgType t) {
  switch (t) {
    case MsgType::kPing:
    case MsgType::kQueryTwoSided:
    case MsgType::kQueryThreeSided:
    case MsgType::kQueryStab:
    case MsgType::kQueryDiagonal:
    case MsgType::kQueryRange:
    case MsgType::kUpdateGroup:
    case MsgType::kSetTenant:
      return true;
    default:
      return false;
  }
}

bool IsResponseType(MsgType t) {
  switch (t) {
    case MsgType::kPong:
    case MsgType::kPoints:
    case MsgType::kIntervals:
    case MsgType::kUpdateAck:
    case MsgType::kError:
    case MsgType::kRetryAfter:
    case MsgType::kProtocolError:
    case MsgType::kTenantAck:
      return true;
    default:
      return false;
  }
}

std::string_view MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "PING";
    case MsgType::kQueryTwoSided: return "QUERY_TWO_SIDED";
    case MsgType::kQueryThreeSided: return "QUERY_THREE_SIDED";
    case MsgType::kQueryStab: return "QUERY_STAB";
    case MsgType::kQueryDiagonal: return "QUERY_DIAGONAL";
    case MsgType::kQueryRange: return "QUERY_RANGE";
    case MsgType::kUpdateGroup: return "UPDATE_GROUP";
    case MsgType::kSetTenant: return "SET_TENANT";
    case MsgType::kPong: return "PONG";
    case MsgType::kPoints: return "POINTS";
    case MsgType::kIntervals: return "INTERVALS";
    case MsgType::kUpdateAck: return "UPDATE_ACK";
    case MsgType::kError: return "ERROR";
    case MsgType::kRetryAfter: return "RETRY_AFTER";
    case MsgType::kProtocolError: return "PROTOCOL_ERROR";
    case MsgType::kTenantAck: return "TENANT_ACK";
  }
  return "UNKNOWN";
}

DecodeResult DecodeFrame(const uint8_t* data, size_t size) {
  DecodeResult r;
  if (size < kHeaderSize) {
    r.verdict = DecodeVerdict::kNeedMore;
    r.need = kHeaderSize;
    return r;
  }
  const uint32_t magic = GetU32(data);
  if (magic != kFrameMagic) {
    r.verdict = DecodeVerdict::kBadFrame;
    r.error = Status::Corruption("bad frame magic");
    return r;
  }
  const uint8_t version = data[4];
  const uint8_t type_byte = data[5];
  const uint16_t flags = GetU16(data + 6);
  const uint64_t request_id = GetU64(data + 8);
  const uint32_t payload_len = GetU32(data + 16);
  // Reject a hostile length before waiting for (or buffering) its bytes.
  if (payload_len > kMaxPayload) {
    r.verdict = DecodeVerdict::kBadFrame;
    r.error = Status::Corruption("declared payload length " +
                                 std::to_string(payload_len) +
                                 " exceeds the protocol cap");
    return r;
  }
  const size_t total = kHeaderSize + payload_len + kTrailerSize;
  if (size < total) {
    r.verdict = DecodeVerdict::kNeedMore;
    r.need = total;
    return r;
  }
  const uint32_t want_crc = GetU32(data + kHeaderSize + payload_len);
  const uint32_t got_crc = Crc32c(data, kHeaderSize + payload_len);
  if (want_crc != got_crc) {
    r.verdict = DecodeVerdict::kBadFrame;
    r.error = Status::Corruption("frame CRC mismatch");
    return r;
  }
  // Version and flags are CRC-protected, so a failure here is real version
  // skew / protocol misuse, not line noise.
  if (version != kWireVersion) {
    r.verdict = DecodeVerdict::kBadFrame;
    r.error = Status::Corruption("unsupported wire version " +
                                 std::to_string(version));
    return r;
  }
  if (flags != 0) {
    r.verdict = DecodeVerdict::kBadFrame;
    r.error = Status::Corruption("reserved frame flags set");
    return r;
  }
  r.verdict = DecodeVerdict::kFrame;
  r.consumed = total;
  r.frame.version = version;
  r.frame.type = MsgType{type_byte};
  r.frame.request_id = request_id;
  r.frame.payload_len = payload_len;
  r.payload = data + kHeaderSize;
  return r;
}

void AppendFrame(MsgType type, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  out->reserve(start + kHeaderSize + payload.size() + kTrailerSize);
  PutU32(kFrameMagic, out);
  out->push_back(kWireVersion);
  out->push_back(uint8_t(type));
  out->push_back(0);  // flags lo
  out->push_back(0);  // flags hi
  PutU64(request_id, out);
  PutU32(uint32_t(payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(out->data() + start, out->size() - start);
  PutU32(crc, out);
}

Status EncodeRequest(const Request& req, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  switch (req.type) {
    case MsgType::kPing:
      break;
    case MsgType::kQueryTwoSided:
    case MsgType::kQueryThreeSided:
    case MsgType::kQueryStab:
    case MsgType::kQueryDiagonal:
    case MsgType::kQueryRange:
      PutU32(req.structure_id, &payload);
      PutU32(req.budget_micros, &payload);
      switch (req.type) {
        case MsgType::kQueryTwoSided:
          PutI64(req.two_sided.x_min, &payload);
          PutI64(req.two_sided.y_min, &payload);
          break;
        case MsgType::kQueryThreeSided:
          PutI64(req.three_sided.x_min, &payload);
          PutI64(req.three_sided.x_max, &payload);
          PutI64(req.three_sided.y_min, &payload);
          break;
        case MsgType::kQueryStab:
          PutI64(req.stab, &payload);
          break;
        case MsgType::kQueryDiagonal:
          PutI64(req.corner, &payload);
          break;
        default:  // kQueryRange
          PutI64(req.range.x_min, &payload);
          PutI64(req.range.x_max, &payload);
          PutI64(req.range.y_min, &payload);
          PutI64(req.range.y_max, &payload);
          break;
      }
      break;
    case MsgType::kUpdateGroup: {
      if (req.updates.empty()) {
        return Status::InvalidArgument("update group must not be empty");
      }
      if (req.updates.size() > kMaxUpdatesPerGroup) {
        return Status::InvalidArgument("update group exceeds protocol cap");
      }
      PutU32(req.structure_id, &payload);
      PutU32(req.budget_micros, &payload);
      PutU32(uint32_t(req.updates.size()), &payload);
      PutU32(0, &payload);
      for (const DynamicUpdate& u : req.updates) {
        PutU64(uint64_t(u.op), &payload);
        AppendRecord(u.item.a, u.item.b, u.item.id, &payload);
      }
      break;
    }
    case MsgType::kSetTenant:
      PutU32(req.tenant, &payload);
      PutU32(0, &payload);
      break;
    default:
      return Status::InvalidArgument("EncodeRequest on non-request type");
  }
  AppendFrame(req.type, req.request_id, payload, out);
  return Status::OK();
}

Status EncodeResponse(const Response& resp, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  switch (resp.type) {
    case MsgType::kPong:
      break;
    case MsgType::kPoints: {
      const size_t need = 8 + resp.points.size() * 24;
      if (need > kMaxPayload) {
        return Status::OutOfRange("result set does not fit one frame");
      }
      payload.reserve(need);
      PutU32(uint32_t(resp.points.size()), &payload);
      PutU32(0, &payload);
      for (const Point& p : resp.points) AppendRecord(p.x, p.y, p.id, &payload);
      break;
    }
    case MsgType::kIntervals: {
      const size_t need = 8 + resp.intervals.size() * 24;
      if (need > kMaxPayload) {
        return Status::OutOfRange("result set does not fit one frame");
      }
      payload.reserve(need);
      PutU32(uint32_t(resp.intervals.size()), &payload);
      PutU32(0, &payload);
      for (const Interval& iv : resp.intervals) {
        AppendRecord(iv.lo, iv.hi, iv.id, &payload);
      }
      break;
    }
    case MsgType::kUpdateAck:
      PutU32(resp.applied, &payload);
      PutU32(0, &payload);
      break;
    case MsgType::kError:
    case MsgType::kProtocolError: {
      if (resp.code == StatusCode::kOk) {
        return Status::InvalidArgument("error response needs a nonzero code");
      }
      std::string msg = resp.message.substr(0, kMaxErrorMessage);
      PutU32(uint32_t(resp.code), &payload);
      PutU32(uint32_t(msg.size()), &payload);
      payload.insert(payload.end(), msg.begin(), msg.end());
      break;
    }
    case MsgType::kRetryAfter:
      PutU64(resp.retry_after_micros, &payload);
      break;
    case MsgType::kTenantAck:
      PutU32(resp.tenant, &payload);
      PutU32(0, &payload);
      break;
    default:
      return Status::InvalidArgument("EncodeResponse on non-response type");
  }
  AppendFrame(resp.type, resp.request_id, payload, out);
  return Status::OK();
}

Status ParseRequest(const FrameInfo& frame, std::span<const uint8_t> payload,
                    Request* out) {
  const MsgType t = frame.type;
  if (!IsRequestType(t)) {
    return Status::InvalidArgument("unknown or non-request message type " +
                                   std::to_string(uint32_t(t)));
  }
  if (payload.size() != frame.payload_len) {
    return Status::InvalidArgument("payload span does not match header");
  }
  Request req;
  req.type = t;
  req.request_id = frame.request_id;
  const uint8_t* p = payload.data();
  switch (t) {
    case MsgType::kPing:
      if (!payload.empty()) return Malformed(t, "expected empty payload");
      break;
    case MsgType::kQueryTwoSided:
    case MsgType::kQueryThreeSided:
    case MsgType::kQueryStab:
    case MsgType::kQueryDiagonal:
    case MsgType::kQueryRange: {
      const size_t want = FixedQueryPayload(t);
      if (payload.size() != want) {
        return Malformed(t, "expected " + std::to_string(want) + " bytes, got " +
                                std::to_string(payload.size()));
      }
      req.structure_id = GetU32(p);
      req.budget_micros = GetU32(p + 4);
      const uint8_t* q = p + kQueryPrefix;
      switch (t) {
        case MsgType::kQueryTwoSided:
          req.two_sided = TwoSidedQuery{GetI64(q), GetI64(q + 8)};
          break;
        case MsgType::kQueryThreeSided:
          req.three_sided =
              ThreeSidedQuery{GetI64(q), GetI64(q + 8), GetI64(q + 16)};
          break;
        case MsgType::kQueryStab:
          req.stab = GetI64(q);
          break;
        case MsgType::kQueryDiagonal:
          req.corner = GetI64(q);
          break;
        default:  // kQueryRange
          req.range = RangeQuery{GetI64(q), GetI64(q + 8), GetI64(q + 16),
                                 GetI64(q + 24)};
          break;
      }
      break;
    }
    case MsgType::kUpdateGroup: {
      if (payload.size() < 16) return Malformed(t, "truncated group header");
      req.structure_id = GetU32(p);
      req.budget_micros = GetU32(p + 4);
      const uint32_t count = GetU32(p + 8);
      const uint32_t reserved = GetU32(p + 12);
      if (reserved != 0) return Malformed(t, "reserved word set");
      if (count == 0) return Malformed(t, "empty update group");
      if (count > kMaxUpdatesPerGroup) {
        return Malformed(t, "update count exceeds protocol cap");
      }
      if (payload.size() != 16 + size_t(count) * 32) {
        return Malformed(t, "payload size disagrees with update count");
      }
      req.updates.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t* rec = p + 16 + size_t(i) * 32;
        const uint64_t opword = GetU64(rec);
        if (opword != uint64_t(UpdateOp::kInsert) &&
            opword != uint64_t(UpdateOp::kDelete)) {
          return Malformed(t, "invalid update op");
        }
        DynamicUpdate u;
        u.op = UpdateOp{uint8_t(opword)};
        u.item = DynamicItem{GetI64(rec + 8), GetI64(rec + 16),
                             GetU64(rec + 24)};
        req.updates.push_back(u);
      }
      break;
    }
    case MsgType::kSetTenant: {
      if (payload.size() != 8) return Malformed(t, "expected 8 bytes");
      req.tenant = GetU32(p);
      if (GetU32(p + 4) != 0) return Malformed(t, "reserved word set");
      break;
    }
    default:
      return Malformed(t, "unreachable");
  }
  *out = std::move(req);
  return Status::OK();
}

Status ParseResponse(const FrameInfo& frame, std::span<const uint8_t> payload,
                     Response* out) {
  const MsgType t = frame.type;
  if (!IsResponseType(t)) {
    return Status::InvalidArgument("unknown or non-response message type " +
                                   std::to_string(uint32_t(t)));
  }
  if (payload.size() != frame.payload_len) {
    return Status::InvalidArgument("payload span does not match header");
  }
  Response resp;
  resp.type = t;
  resp.request_id = frame.request_id;
  const uint8_t* p = payload.data();
  switch (t) {
    case MsgType::kPong:
      if (!payload.empty()) return Malformed(t, "expected empty payload");
      break;
    case MsgType::kPoints:
    case MsgType::kIntervals: {
      if (payload.size() < 8) return Malformed(t, "truncated result header");
      const uint32_t count = GetU32(p);
      const uint32_t reserved = GetU32(p + 4);
      if (reserved != 0) return Malformed(t, "reserved word set");
      if (payload.size() != 8 + size_t(count) * 24) {
        return Malformed(t, "payload size disagrees with record count");
      }
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t* rec = p + 8 + size_t(i) * 24;
        if (t == MsgType::kPoints) {
          resp.points.push_back(
              Point{GetI64(rec), GetI64(rec + 8), GetU64(rec + 16)});
        } else {
          resp.intervals.push_back(
              Interval{GetI64(rec), GetI64(rec + 8), GetU64(rec + 16)});
        }
      }
      break;
    }
    case MsgType::kUpdateAck: {
      if (payload.size() != 8) return Malformed(t, "expected 8 bytes");
      resp.applied = GetU32(p);
      if (GetU32(p + 4) != 0) return Malformed(t, "reserved word set");
      break;
    }
    case MsgType::kError:
    case MsgType::kProtocolError: {
      if (payload.size() < 8) return Malformed(t, "truncated error header");
      const uint32_t code = GetU32(p);
      const uint32_t msg_len = GetU32(p + 4);
      if (code == 0 || code > uint32_t(StatusCode::kDeadlineExceeded)) {
        return Malformed(t, "invalid status code");
      }
      if (msg_len > kMaxErrorMessage ||
          payload.size() != 8 + size_t(msg_len)) {
        return Malformed(t, "payload size disagrees with message length");
      }
      resp.code = StatusCode{int(code)};
      resp.message.assign(reinterpret_cast<const char*>(p + 8), msg_len);
      break;
    }
    case MsgType::kRetryAfter:
      if (payload.size() != 8) return Malformed(t, "expected 8 bytes");
      resp.retry_after_micros = GetU64(p);
      break;
    case MsgType::kTenantAck:
      if (payload.size() != 8) return Malformed(t, "expected 8 bytes");
      resp.tenant = GetU32(p);
      if (GetU32(p + 4) != 0) return Malformed(t, "reserved word set");
      break;
    default:
      return Malformed(t, "unreachable");
  }
  *out = std::move(resp);
  return Status::OK();
}

}  // namespace net
}  // namespace pathcache
