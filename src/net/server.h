// NetServer: the TCP serving front-end over a QueryService — a single
// QueryEngine or a ShardRouter scatter-gathering over many; the server
// cannot tell the difference and does not need to.
//
// One event-loop thread owns an epoll set with the listener, a wakeup
// eventfd, and every accepted connection (all non-blocking) — the classic
// accept-loop + event-dispatch shape.  Per connection the server keeps a
// read buffer, a write buffer, and an ordered pipeline of response slots:
//
//   * Pipelining with in-order responses.  Frames are decoded in arrival
//     order; each request claims the next slot in the connection's pipeline
//     before it is handed to the QueryEngine.  Engine completions (on
//     worker threads) fill their slot and signal the eventfd; the loop
//     thread drains completed slots strictly from the front, so responses
//     always leave in request order no matter how workers interleave.
//   * Backpressure, two layers.  Per connection: once `max_pipeline`
//     decoded requests are unanswered (or the write buffer exceeds
//     `max_write_buffer`), the connection's EPOLLIN interest is dropped —
//     the kernel's TCP window does the rest — and re-armed when the
//     pipeline drains.  Engine-wide: a Submit() rejected with kOverloaded
//     (bounded-queue admission control) is answered immediately, in slot
//     order, with a protocol-level RETRY_AFTER frame carrying a
//     microseconds hint; the connection stays open, which is the contract
//     bench_net's overload segment asserts.
//   * Deadlines travel as relative budgets.  A request's budget_micros is
//     converted to an absolute deadline on the engine's own clock at decode
//     time; expired requests come back kDeadlineExceeded and are answered
//     with a kError response like any other failed request.
//   * Error containment mirrors wire.h's two tiers: a payload-level
//     malformation answers that request_id with kError and keeps the
//     connection; a frame-level violation (bad magic/CRC/version/length)
//     queues one kProtocolError response behind the slots already pending,
//     stops reading, flushes, and closes.  A peer that disconnects
//     mid-frame is just closed — in-flight completions for it resolve into
//     orphaned slots and are dropped.
//
// Query kinds map onto the engine as documented in wire.h: diagonal-corner
// runs as a two-sided query with the corner on the diagonal, range as a
// three-sided query plus an exact y <= y_max filter applied before
// encoding.  Both reductions are from the paper (Figure 1).
//
// Thread-safety: Start()/Stop() from one thread; port() and stats() from
// any thread once Start() returned.  The engine must be Start()ed before
// traffic arrives and must not be Stop()ped while the server is running
// (submissions would bounce with FailedPrecondition, answered as kError).
// Server shutdown is safe with engine requests still in flight: orphaned
// completions only touch slot memory kept alive by shared ownership.

#ifndef PATHCACHE_NET_SERVER_H_
#define PATHCACHE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/wire.h"
#include "obs/trace.h"
#include "serve/query_service.h"
#include "util/status.h"

namespace pathcache {
namespace net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port with port()
  int backlog = 128;
  uint32_t max_connections = 256;
  /// Per-connection cap on decoded-but-unanswered requests; reads pause
  /// beyond it and resume as the pipeline drains.
  uint32_t max_pipeline = 64;
  /// Per-connection write-buffer bytes beyond which reads also pause.
  size_t max_write_buffer = 16u << 20;
  /// Hint carried in RETRY_AFTER responses when the engine queue is full.
  uint64_t retry_after_micros = 1000;
  /// Optional tracer: serve.net.* spans and instants.  Not owned.
  Tracer* tracer = nullptr;
};

/// Monotonic counters plus one gauge, snapshotted by NetServer::stats().
struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;  // over max_connections, closed at accept
  uint64_t frames_in = 0;             // whole valid frames decoded
  uint64_t frames_out = 0;            // response frames queued for write
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;  // frame-level violations (connection closed)
  uint64_t request_errors = 0;   // well-framed requests answered with kError
  uint64_t retry_after = 0;      // RETRY_AFTER responses sent
  uint64_t read_pauses = 0;      // backpressure engagements
  uint64_t accept_errors = 0;    // accept() failures (transient or backoff)
  uint64_t open_connections = 0;  // gauge
};

/// What AcceptReady should do with a failed accept(2), by errno.  Split out
/// as a pure function so the policy is unit-testable without a socket.
enum class AcceptErrorAction : uint8_t {
  kRetry,    // per-connection mishap (ECONNABORTED/EPROTO/EINTR): try again
  kBackoff,  // resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM): disarm
             // the listener briefly instead of spinning on a hot error
  kFail,     // anything else: count it and wait for the next epoll event
};
AcceptErrorAction ClassifyAcceptError(int err);

class NetServer {
 public:
  explicit NetServer(QueryService* engine, NetServerOptions opts = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and spawns the event-loop thread.  FailedPrecondition
  /// if already started; IoError on any socket failure.
  Status Start();

  /// Closes the listener and every connection, then joins the loop thread.
  /// Idempotent.  Responses for requests still inside the engine are
  /// dropped (their connections are gone).
  void Stop();

  /// The bound TCP port (resolves port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }

  NetServerStats stats() const;

 private:
  struct Conn;
  struct Slot;
  struct Waker;

  void Loop();
  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& c);
  void WriteReady(const std::shared_ptr<Conn>& c);
  /// Decode/drain/flush to a fixed point; every event funnels through this.
  void ServiceConn(const std::shared_ptr<Conn>& c);
  void DecodeLoop(const std::shared_ptr<Conn>& c);
  void HandleFrame(const std::shared_ptr<Conn>& c, const FrameInfo& frame,
                   const uint8_t* payload);
  void HandleQuery(const std::shared_ptr<Conn>& c, const Request& req);
  void HandleUpdate(const std::shared_ptr<Conn>& c, const Request& req);
  /// Pushes an already-answered slot (ping, errors, retry-after) and drains.
  void CompleteInline(const std::shared_ptr<Conn>& c, const Response& resp);
  /// Fills a pipeline slot whose Submit bounced synchronously: kOverloaded
  /// becomes RETRY_AFTER (backpressure), anything else a kError response.
  void FillRejectedSlot(const std::shared_ptr<Conn>& c,
                        const std::shared_ptr<Slot>& slot, uint64_t request_id,
                        const Status& why);
  /// Moves every leading completed slot's bytes into the write buffer.
  void DrainCompleted(const std::shared_ptr<Conn>& c);
  void UpdateReadInterest(const std::shared_ptr<Conn>& c);
  void CloseConn(const std::shared_ptr<Conn>& c);
  void EpollMod(const std::shared_ptr<Conn>& c);

  QueryService* engine_;
  NetServerOptions opts_;
  Tracer* tracer_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  /// Loop-thread-only: when nonzero, the listener is out of the epoll set
  /// (EMFILE/ENFILE backoff) until the loop's clock passes this deadline.
  uint64_t accept_rearm_micros_ = 0;
  std::shared_ptr<Waker> waker_;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Owned by the loop thread; completions only ever touch a Conn through
  // the shared_ptr captured in their callback.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  // Counters live as relaxed atomics so stats() is callable from any thread
  // while the loop mutates them.
  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> connections_rejected{0};
    std::atomic<uint64_t> frames_in{0};
    std::atomic<uint64_t> frames_out{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> request_errors{0};
    std::atomic<uint64_t> retry_after{0};
    std::atomic<uint64_t> read_pauses{0};
    std::atomic<uint64_t> accept_errors{0};
    std::atomic<uint64_t> open_connections{0};
  };
  AtomicStats stats_;
};

}  // namespace net
}  // namespace pathcache

#endif  // PATHCACHE_NET_SERVER_H_
