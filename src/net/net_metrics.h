// RegisterNetMetrics: publishes a NetServer's counters through a
// MetricsRegistry, following the serve_metrics.h convention (header-only,
// in net/ so the dependency arrow stays obs <- net).
//
// Every sample callback goes through NetServer::stats(), which reads
// relaxed atomics and is safe from any thread while the server runs.

#ifndef PATHCACHE_NET_NET_METRICS_H_
#define PATHCACHE_NET_NET_METRICS_H_

#include <string>

#include "net/server.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace pathcache {
namespace net {

/// Registers the server's connection / frame / byte / error counters and
/// the open-connections gauge, labeled {server="<server_label>"}.  `server`
/// must outlive the registry's exports.
inline Status RegisterNetMetrics(MetricsRegistry* reg,
                                 const std::string& server_label,
                                 const NetServer* server) {
  const MetricLabels labels = {{"server", server_label}};
  struct Row {
    const char* name;
    const char* help;
    uint64_t NetServerStats::* field;
  };
  static constexpr Row kCounters[] = {
      {"pathcache_net_connections_accepted_total", "Connections accepted",
       &NetServerStats::connections_accepted},
      {"pathcache_net_connections_closed_total", "Connections closed",
       &NetServerStats::connections_closed},
      {"pathcache_net_connections_rejected_total",
       "Connections refused over max_connections",
       &NetServerStats::connections_rejected},
      {"pathcache_net_frames_in_total", "Valid request frames decoded",
       &NetServerStats::frames_in},
      {"pathcache_net_frames_out_total", "Response frames queued for write",
       &NetServerStats::frames_out},
      {"pathcache_net_bytes_in_total", "Bytes read from client sockets",
       &NetServerStats::bytes_in},
      {"pathcache_net_bytes_out_total", "Bytes written to client sockets",
       &NetServerStats::bytes_out},
      {"pathcache_net_protocol_errors_total",
       "Frame-level violations (connection closed)",
       &NetServerStats::protocol_errors},
      {"pathcache_net_request_errors_total",
       "Well-framed requests answered with an error response",
       &NetServerStats::request_errors},
      {"pathcache_net_retry_after_total",
       "RETRY_AFTER responses sent under engine overload",
       &NetServerStats::retry_after},
      {"pathcache_net_read_pauses_total",
       "Per-connection backpressure engagements",
       &NetServerStats::read_pauses},
      {"pathcache_net_accept_errors_total",
       "accept() failures (transient skips and EMFILE/ENFILE backoffs)",
       &NetServerStats::accept_errors},
  };
  for (const Row& row : kCounters) {
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        row.name, row.help, labels,
        [server, field = row.field] { return server->stats().*field; }));
  }
  return reg->AddGaugeFn(
      "pathcache_net_open_connections", "Connections currently open", labels,
      [server] { return double(server->stats().open_connections); });
}

}  // namespace net
}  // namespace pathcache

#endif  // PATHCACHE_NET_NET_METRICS_H_
