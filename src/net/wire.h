// Wire protocol for the network serving front-end: length-prefixed binary
// frames over TCP.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic        0x46574350 ("PCWF" on the wire)
//   4       1     version      kWireVersion
//   5       1     type         MsgType
//   6       2     flags        reserved, must be zero
//   8       8     request_id   echoed verbatim in the response
//   16      4     payload_len  <= kMaxPayload
//   20      n     payload      (by type; layouts below)
//   20+n    4     crc32c       over bytes [0, 20+n) — the same CRC32C
//                              (src/io/crc32c) that guards persisted pages
//
// Error handling is two-tier, and the tests lean on the distinction:
//
//   * Frame-level (DecodeFrame): bad magic, unknown version, nonzero
//     reserved flags, oversized declared length, or a CRC mismatch mean the
//     byte stream itself cannot be trusted — the server answers with one
//     kProtocolError frame and closes the connection (there is no reliable
//     way to resync a corrupted length-prefixed stream).
//   * Payload-level (ParseRequest / ParseResponse): the frame is intact
//     (CRC passed) but the payload is malformed — unknown type, wrong size
//     for the type, invalid op, count mismatch.  The server answers that
//     request_id with a kError response and keeps the connection: framing
//     is still sound, so later pipelined requests are unaffected.
//
// Every multi-byte field is read and written through shift-based helpers, so
// decoding arbitrary attacker-controlled bytes is well-defined on any
// platform — the codec fuzz tests run the whole surface under ASan+UBSan.
//
// Request payloads (queries share an 8-byte prefix):
//
//   kPing            (empty)
//   query prefix     structure_id u32, budget_micros u32 (relative deadline
//                    on the server's clock; 0 = none)
//   kQueryTwoSided   + x_min i64, y_min i64                        (24 B)
//   kQueryThreeSided + x_min i64, x_max i64, y_min i64             (32 B)
//   kQueryStab       + q i64                                       (16 B)
//   kQueryDiagonal   + corner i64                                  (16 B)
//   kQueryRange      + x_min i64, x_max i64, y_min i64, y_max i64  (40 B)
//   kUpdateGroup     structure_id u32, budget_micros u32, count u32,
//                    reserved u32 (zero), then count records of 32 B each:
//                    op u64 (1 = insert, 2 = delete), a i64, b i64, id u64
//   kSetTenant       tenant u32, reserved u32 (zero)                (8 B)
//                    binds the connection to an admission-quota tenant;
//                    every later query/update on this connection is
//                    admitted against that tenant's tokens
//
// The five query kinds are exactly the paper's Figure-1 query menu: the
// server maps kQueryDiagonal onto a two-sided engine query with the corner
// on the diagonal, and kQueryRange onto a three-sided engine query plus an
// exact y <= y_max filter on the reported points.
//
// Response payloads:
//
//   kPong            (empty)
//   kPoints          count u32, reserved u32, count x {x i64, y i64, id u64}
//   kIntervals       count u32, reserved u32, count x {lo i64, hi i64, id u64}
//   kUpdateAck       applied u32, reserved u32
//   kError           code u32 (StatusCode, nonzero), msg_len u32, msg bytes
//   kRetryAfter      retry_after_micros u64  (admission-control backpressure:
//                    the engine queue or the tenant's quota was full; retry
//                    after the hint)
//   kProtocolError   same layout as kError; the stream is dead after it
//   kTenantAck       tenant u32, reserved u32 (echoes the bound tenant)

#ifndef PATHCACHE_NET_WIRE_H_
#define PATHCACHE_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dynamic/update.h"
#include "util/geometry.h"
#include "util/status.h"

namespace pathcache {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x46574350;  // "PCWF" little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kHeaderSize = 20;
inline constexpr size_t kTrailerSize = 4;
/// Declared payload lengths beyond this are a frame-level error before any
/// buffering happens, so a hostile length field cannot balloon server memory.
inline constexpr size_t kMaxPayload = 4u << 20;
inline constexpr size_t kMaxFrameSize = kHeaderSize + kMaxPayload + kTrailerSize;
inline constexpr size_t kMaxUpdatesPerGroup = 4096;
inline constexpr size_t kMaxErrorMessage = 4096;

enum class MsgType : uint8_t {
  // Requests.
  kPing = 0x01,
  kQueryTwoSided = 0x02,
  kQueryThreeSided = 0x03,
  kQueryStab = 0x04,
  kQueryDiagonal = 0x05,
  kQueryRange = 0x06,
  kUpdateGroup = 0x07,
  kSetTenant = 0x08,
  // Responses.
  kPong = 0x41,
  kPoints = 0x42,
  kIntervals = 0x43,
  kUpdateAck = 0x44,
  kError = 0x45,
  kRetryAfter = 0x46,
  kProtocolError = 0x47,
  kTenantAck = 0x48,
};

bool IsRequestType(MsgType t);
bool IsResponseType(MsgType t);
std::string_view MsgTypeName(MsgType t);

/// One decoded request.  Only the members named by `type` are meaningful;
/// the rest stay default-initialized so equality across a round trip holds.
struct Request {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  uint32_t structure_id = 0;
  uint32_t budget_micros = 0;  // relative deadline; 0 = none
  TwoSidedQuery two_sided;
  ThreeSidedQuery three_sided;
  RangeQuery range;
  int64_t stab = 0;
  int64_t corner = 0;
  uint32_t tenant = 0;  // kSetTenant
  std::vector<DynamicUpdate> updates;

  friend bool operator==(const Request&, const Request&) = default;
};

/// One decoded response, same convention.
struct Response {
  MsgType type = MsgType::kPong;
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;    // kError / kProtocolError
  std::string message;                  // kError / kProtocolError
  uint32_t applied = 0;                 // kUpdateAck
  uint32_t tenant = 0;                  // kTenantAck
  uint64_t retry_after_micros = 0;      // kRetryAfter
  std::vector<Point> points;            // kPoints
  std::vector<Interval> intervals;      // kIntervals

  friend bool operator==(const Response&, const Response&) = default;
};

/// Parsed frame header, returned by DecodeFrame once the CRC has passed.
struct FrameInfo {
  uint8_t version = 0;
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

enum class DecodeVerdict : uint8_t {
  kFrame,     // one whole valid frame decoded; `consumed` bytes used
  kNeedMore,  // the buffer holds only a prefix of a plausible frame
  kBadFrame,  // frame-level violation; the stream cannot be resynced
};

struct DecodeResult {
  DecodeVerdict verdict = DecodeVerdict::kNeedMore;
  size_t consumed = 0;            // kFrame: bytes to advance past
  size_t need = 0;                // kNeedMore: total frame size once known
  Status error;                   // kBadFrame: what was wrong
  FrameInfo frame;                // kFrame
  const uint8_t* payload = nullptr;  // kFrame: into the caller's buffer
};

/// Scans exactly one frame starting at data[0].  Never reads past `size`,
/// never crashes on arbitrary bytes; a frame whose declared length exceeds
/// kMaxPayload is rejected before waiting for its bytes.
DecodeResult DecodeFrame(const uint8_t* data, size_t size);

/// Appends one complete frame (header + payload + CRC trailer) to *out.
void AppendFrame(MsgType type, uint64_t request_id,
                 std::span<const uint8_t> payload, std::vector<uint8_t>* out);

/// Encodes `req` as one frame appended to *out.  InvalidArgument if the
/// request violates protocol limits (update count, payload size).
Status EncodeRequest(const Request& req, std::vector<uint8_t>* out);

/// Encodes `resp` as one frame appended to *out.  OutOfRange if the result
/// set does not fit in kMaxPayload (callers substitute an error response).
Status EncodeResponse(const Response& resp, std::vector<uint8_t>* out);

/// Payload-level request parse.  `frame`/`payload` come from DecodeFrame.
/// InvalidArgument (with a caller-presentable message) on any malformation;
/// the connection survives these.
Status ParseRequest(const FrameInfo& frame,
                    std::span<const uint8_t> payload, Request* out);

/// Payload-level response parse, used by the client library.
Status ParseResponse(const FrameInfo& frame,
                     std::span<const uint8_t> payload, Response* out);

}  // namespace net
}  // namespace pathcache

#endif  // PATHCACHE_NET_WIRE_H_
