#include "util/mathutil.h"

namespace pathcache {

uint32_t FloorLogBase(uint64_t x, uint64_t b) {
  uint32_t r = 0;
  while (x >= b) {
    x /= b;
    ++r;
  }
  return r;
}

uint32_t CeilLogBase(uint64_t x, uint64_t b) {
  if (x <= 1) return 0;
  uint32_t r = 0;
  uint64_t p = 1;
  // Invariant: p == b^r, saturating; stop once p >= x.
  while (p < x) {
    if (p > x / b + 1) {
      ++r;
      break;
    }
    p *= b;
    ++r;
  }
  return r;
}

uint32_t LogStar(uint64_t x) {
  uint32_t r = 0;
  while (x > 1) {
    x = FloorLog2(x);
    ++r;
  }
  return r;
}

uint32_t FloorLogLog2(uint64_t x) {
  if (x < 4) return 1;
  uint32_t l = FloorLog2(x);
  uint32_t ll = FloorLog2(l);
  return ll < 1 ? 1 : ll;
}

}  // namespace pathcache
