// Minimal streaming JSON emitter, shared by the benches' `--json` dumps and
// the observability exporters (obs/metrics, obs/trace).
//
// The writer tracks nesting and comma placement so call sites just narrate
// the document.  All string output (keys and values) is escaped per RFC
// 8259: quote, backslash and every control character below 0x20 are emitted
// as escape sequences, so metric names, label values and error messages can
// flow through without corrupting the document.  Output goes to either a
// FILE* or a std::string sink.

#ifndef PATHCACHE_UTIL_JSON_WRITER_H_
#define PATHCACHE_UTIL_JSON_WRITER_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace pathcache {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out) : file_(out) {}
  explicit JsonWriter(std::string* out) : str_(out) {}

  JsonWriter& BeginObject() {
    Pre();
    Put('{');
    levels_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    levels_.pop_back();
    Put('}');
    return *this;
  }
  JsonWriter& BeginArray() {
    Pre();
    Put('[');
    levels_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    levels_.pop_back();
    Put(']');
    return *this;
  }

  JsonWriter& Key(std::string_view k) {
    Pre();
    PutEscaped(k);
    Put(':');
    pending_key_ = true;
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Pre();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    Write(buf);
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Pre();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    Write(buf);
    return *this;
  }
  JsonWriter& Double(double v) {
    Pre();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    Write(buf);
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Pre();
    Write(v ? "true" : "false");
    return *this;
  }
  JsonWriter& Str(std::string_view s) {
    Pre();
    PutEscaped(s);
    return *this;
  }

 private:
  // Emits the separating comma for the second and later members of the
  // innermost object/array; a value directly following its Key never takes
  // one (the Key already placed the member separator).
  void Pre() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!levels_.empty()) {
      if (levels_.back()) Put(',');
      levels_.back() = true;
    }
  }

  void Put(char c) {
    if (file_ != nullptr) {
      std::fputc(c, file_);
    } else {
      str_->push_back(c);
    }
  }
  void Write(const char* s) {
    if (file_ != nullptr) {
      std::fputs(s, file_);
    } else {
      str_->append(s);
    }
  }

  /// Quoted, escaped string per RFC 8259: `"` and `\` are backslash-escaped,
  /// control characters get their short form (\n, \t, \r, \b, \f) or \u00XX.
  void PutEscaped(std::string_view s) {
    Put('"');
    for (char c : s) {
      const unsigned char u = static_cast<unsigned char>(c);
      switch (c) {
        case '"':
          Write("\\\"");
          break;
        case '\\':
          Write("\\\\");
          break;
        case '\n':
          Write("\\n");
          break;
        case '\t':
          Write("\\t");
          break;
        case '\r':
          Write("\\r");
          break;
        case '\b':
          Write("\\b");
          break;
        case '\f':
          Write("\\f");
          break;
        default:
          if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            Write(buf);
          } else {
            Put(c);
          }
      }
    }
    Put('"');
  }

  std::FILE* file_ = nullptr;
  std::string* str_ = nullptr;
  std::vector<bool> levels_;
  bool pending_key_ = false;
};

}  // namespace pathcache

#endif  // PATHCACHE_UTIL_JSON_WRITER_H_
