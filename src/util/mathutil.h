// Small integer-arithmetic helpers used throughout the library, chiefly for
// the block-size arithmetic that shows up in every path-caching bound:
// ceil-division, integer logs, iterated logs (log log, log*).

#ifndef PATHCACHE_UTIL_MATHUTIL_H_
#define PATHCACHE_UTIL_MATHUTIL_H_

#include <cstdint>

namespace pathcache {

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// floor(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr uint32_t FloorLog2(uint64_t x) {
  uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr uint32_t CeilLog2(uint64_t x) {
  if (x <= 1) return 0;
  return FloorLog2(x - 1) + 1;
}

/// floor(log_b(x)) for b >= 2, x >= 1.
uint32_t FloorLogBase(uint64_t x, uint64_t b);

/// ceil(log_b(x)) for b >= 2, x >= 1 (0 when x <= 1).
uint32_t CeilLogBase(uint64_t x, uint64_t b);

/// Iterated logarithm base 2: the number of times log2 must be applied to x
/// before the result is <= 1.  LogStar(65536) == 4, LogStar(2^65536) == 5.
uint32_t LogStar(uint64_t x);

/// max(1, floor(log2(floor(log2(x))))) convenience used for level-2 region
/// sizing in the multilevel scheme; defined as 1 for x < 4.
uint32_t FloorLogLog2(uint64_t x);

/// True iff x is a power of two (x >= 1).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace pathcache

#endif  // PATHCACHE_UTIL_MATHUTIL_H_
