// Geometric record types shared by every module.
//
// The paper assumes all endpoints / coordinates are distinct; the library
// does not require that of callers but breaks ties deterministically by
// record id, which restores the assumption internally.

#ifndef PATHCACHE_UTIL_GEOMETRY_H_
#define PATHCACHE_UTIL_GEOMETRY_H_

#include <cstdint>
#include <tuple>

namespace pathcache {

/// A 2-D point with a caller-supplied identifier (e.g., a tuple id).
struct Point {
  int64_t x = 0;
  int64_t y = 0;
  uint64_t id = 0;

  friend bool operator==(const Point&, const Point&) = default;
};
static_assert(sizeof(Point) == 24);

/// A closed 1-D interval [lo, hi] with a caller-supplied identifier.
struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;
  uint64_t id = 0;

  bool Contains(int64_t q) const { return lo <= q && q <= hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};
static_assert(sizeof(Interval) == 24);

/// Orders by x, ties by id (ascending).
inline bool LessByX(const Point& a, const Point& b) {
  return std::tie(a.x, a.id) < std::tie(b.x, b.id);
}

/// Orders by y, ties by id (ascending).
inline bool LessByY(const Point& a, const Point& b) {
  return std::tie(a.y, a.id) < std::tie(b.y, b.id);
}

/// Descending-x order used by A/X lists ("right-to-left").
inline bool GreaterByX(const Point& a, const Point& b) { return LessByX(b, a); }

/// Descending-y order used by S/Y lists ("top-to-bottom").
inline bool GreaterByY(const Point& a, const Point& b) { return LessByY(b, a); }

/// 2-sided query (Figure 1): report points with x >= x_min && y >= y_min.
struct TwoSidedQuery {
  int64_t x_min = 0;
  int64_t y_min = 0;

  bool Contains(const Point& p) const { return p.x >= x_min && p.y >= y_min; }

  friend bool operator==(const TwoSidedQuery&, const TwoSidedQuery&) = default;
};

/// 3-sided query (Figure 1): x_min <= x <= x_max && y >= y_min.
struct ThreeSidedQuery {
  int64_t x_min = 0;
  int64_t x_max = 0;
  int64_t y_min = 0;

  bool Contains(const Point& p) const {
    return p.x >= x_min && p.x <= x_max && p.y >= y_min;
  }

  friend bool operator==(const ThreeSidedQuery&,
                         const ThreeSidedQuery&) = default;
};

/// General axis-aligned rectangle query (Figure 1, rightmost shape).
struct RangeQuery {
  int64_t x_min = 0;
  int64_t x_max = 0;
  int64_t y_min = 0;
  int64_t y_max = 0;

  bool Contains(const Point& p) const {
    return p.x >= x_min && p.x <= x_max && p.y >= y_min && p.y <= y_max;
  }

  friend bool operator==(const RangeQuery&, const RangeQuery&) = default;
};

/// Diagonal-corner query (Figure 1): 2-sided query whose corner lies on the
/// diagonal x == y; the shape stabbing queries reduce to in [KRV].
struct DiagonalCornerQuery {
  int64_t corner = 0;

  TwoSidedQuery AsTwoSided() const { return TwoSidedQuery{corner, corner}; }
};

}  // namespace pathcache

#endif  // PATHCACHE_UTIL_GEOMETRY_H_
