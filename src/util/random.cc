#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace pathcache {

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Zipf::Zipf(uint64_t n, double theta, uint64_t seed) : n_(n), rng_(seed) {
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t Zipf::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace pathcache
