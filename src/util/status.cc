#include "util/status.h"

namespace pathcache {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (message_ && !message_->empty()) {
    out += ": ";
    out += *message_;
  }
  return out;
}

}  // namespace pathcache
