#include "util/safe_strerror.h"

#include <string.h>

namespace pathcache {
namespace {

// strerror_r has two incompatible signatures: the XSI flavor returns int
// (0 on success) and fills the caller's buffer, the GNU flavor returns a
// char* that may or may not be the caller's buffer.  Which one we get
// depends on feature-test macros, so resolve the difference by overload
// instead of by #ifdef.
inline const char* StrErrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : nullptr;  // XSI
}
inline const char* StrErrorResult(const char* msg, const char* /*buf*/) {
  return msg;  // GNU
}

}  // namespace

std::string SafeStrError(int errnum) {
  char buf[256];
  buf[0] = '\0';
  const char* msg = StrErrorResult(strerror_r(errnum, buf, sizeof(buf)), buf);
  if (msg == nullptr || msg[0] == '\0') {
    return "errno " + std::to_string(errnum);
  }
  return std::string(msg);
}

}  // namespace pathcache
