// Status / Result error-handling primitives.
//
// Modeled on the RocksDB/Arrow convention: fallible operations on the I/O
// path return a Status (or a Result<T> when they produce a value) instead of
// throwing.  A Status is cheap to copy in the OK case (no allocation).

#ifndef PATHCACHE_UTIL_STATUS_H_
#define PATHCACHE_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pathcache {

/// Error taxonomy for the library.  Kept deliberately small; the message
/// carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kFailedPrecondition = 7,
  kOverloaded = 8,         // admission control: request rejected, retry later
  kDeadlineExceeded = 9,   // request expired before (or instead of) running
};

/// Returns a human-readable name for a StatusCode ("OK", "IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The result of a fallible operation: a code plus an optional message.
/// OK statuses carry no allocation and copy for free.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Message attached at construction; empty for OK.
  std::string_view message() const {
    return message_ ? std::string_view(*message_) : std::string_view();
  }

  /// "OK" or "IOError: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code),
        message_(msg.empty() ? nullptr
                             : std::make_shared<std::string>(std::move(msg))) {
  }

  StatusCode code_;
  std::shared_ptr<std::string> message_;
};

/// A value or an error.  `ok()` selects which accessor is valid.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  const Status& status() const { return std::get<Status>(v_); }

  /// Status::OK() if this holds a value.
  Status ToStatus() const { return ok() ? Status::OK() : status(); }

 private:
  std::variant<T, Status> v_;
};

// Propagates a non-OK Status to the caller.
#define PC_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::pathcache::Status _pc_st = (expr);         \
    if (!_pc_st.ok()) return _pc_st;             \
  } while (0)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// moves the value into `lhs`.
#define PC_ASSIGN_OR_RETURN(lhs, expr)           \
  auto PC_CONCAT_(_pc_res, __LINE__) = (expr);   \
  if (!PC_CONCAT_(_pc_res, __LINE__).ok())       \
    return PC_CONCAT_(_pc_res, __LINE__).status(); \
  lhs = std::move(PC_CONCAT_(_pc_res, __LINE__)).value()

#define PC_CONCAT_INNER_(a, b) a##b
#define PC_CONCAT_(a, b) PC_CONCAT_INNER_(a, b)

}  // namespace pathcache

#endif  // PATHCACHE_UTIL_STATUS_H_
