#ifndef PATHCACHE_UTIL_SAFE_STRERROR_H_
#define PATHCACHE_UTIL_SAFE_STRERROR_H_

#include <string>

namespace pathcache {

/// Thread-safe replacement for strerror(3).  strerror may return a pointer
/// into a shared static buffer, so concurrent callers (the epoll loop and
/// client threads format errno strings at the same time) can observe a torn
/// message.  This wraps strerror_r and always returns an owned string; an
/// unknown errno yields "errno N" rather than an empty message.
std::string SafeStrError(int errnum);

}  // namespace pathcache

#endif  // PATHCACHE_UTIL_SAFE_STRERROR_H_
