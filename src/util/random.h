// Deterministic pseudo-random generation for workloads and tests.
//
// A small xoshiro256++ engine plus the distributions the benchmark workloads
// need (uniform ints/doubles, Zipf).  Seeded explicitly everywhere so every
// experiment is reproducible run-to-run.

#ifndef PATHCACHE_UTIL_RANDOM_H_
#define PATHCACHE_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pathcache {

/// xoshiro256++ PRNG.  Not cryptographic; fast and well distributed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound).  bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n): rank r drawn with probability
/// proportional to 1/(r+1)^theta.  Precomputes the CDF; O(log n) per sample.
class Zipf {
 public:
  Zipf(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace pathcache

#endif  // PATHCACHE_UTIL_RANDOM_H_
