// An external B+-tree over a PageDevice.
//
// This is the paper's Section 1 baseline: optimal external dynamic
// 1-dimensional range searching — O(log_B n + t/B) queries and O(log_B n)
// updates — and the structure whose blocked layout the "skeletal B-tree"
// of path caching imitates.
//
// Entries are (key, value) pairs ordered lexicographically, so duplicate
// keys are supported while every stored entry remains unique, which keeps
// deletion and rebalancing exact.  All node accesses go through the device
// and are therefore I/O-counted.

#ifndef PATHCACHE_BTREE_BPLUS_TREE_H_
#define PATHCACHE_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "io/page_device.h"
#include "util/status.h"

namespace pathcache {

struct BTreeEntry {
  int64_t key = 0;
  uint64_t value = 0;

  friend bool operator==(const BTreeEntry&, const BTreeEntry&) = default;
};

inline bool EntryLess(const BTreeEntry& a, const BTreeEntry& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

class BPlusTree {
 public:
  explicit BPlusTree(PageDevice* dev);

  /// Creates an empty tree (a single empty root leaf).
  Status Init();

  /// Bulk-loads from entries sorted by EntryLess; tree must be empty.
  /// Leaves are filled to `fill` fraction (default ~0.9) so that subsequent
  /// inserts do not immediately split every leaf.
  Status BulkLoad(std::span<const BTreeEntry> sorted, double fill = 0.9);

  /// Inserts an entry.  Duplicate (key, value) pairs are rejected with
  /// InvalidArgument (they would be undeletable as distinct entities).
  Status Insert(const BTreeEntry& e);

  /// Removes the exact entry; NotFound if absent.
  Status Delete(const BTreeEntry& e);

  /// Sets *found and, if found, *value for the first entry with this key.
  Status Get(int64_t key, uint64_t* value, bool* found);

  /// Finds the largest entry with entry.key <= key (the floor); *found is
  /// false when every stored key exceeds `key`.  O(log_B n) I/Os.
  Status FindFloor(int64_t key, BTreeEntry* out, bool* found);

  /// Appends every entry with lo <= key <= hi to `out` in key order.
  Status RangeScan(int64_t lo, int64_t hi, std::vector<BTreeEntry>* out);

  /// Streams entries with key >= lo in order to `cb` until it returns false
  /// or the tree is exhausted.  This is the primitive the 2-D "scan one
  /// dimension, filter the other" baseline uses.
  Status ScanFrom(int64_t lo, const std::function<bool(const BTreeEntry&)>& cb);

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  uint32_t leaf_capacity() const { return leaf_cap_; }
  uint32_t internal_fanout() const { return internal_cap_; }

  /// Validates every structural invariant (ordering, occupancy, fence keys,
  /// leaf chaining).  O(n) I/Os; for tests.
  Status CheckInvariants() const;

 private:
  struct PathElem {
    PageId page;
    uint32_t child_idx;
  };

  // Node page layouts (see bplus_tree.cc for the byte format helpers).
  Status ReadPage(PageId id, std::vector<std::byte>* buf) const;
  Status WritePage(PageId id, const std::vector<std::byte>& buf) const;

  Status DescendToLeaf(const BTreeEntry& e, std::vector<PathElem>* path,
                       PageId* leaf) const;
  Status InsertIntoParent(std::vector<PathElem>* path, BTreeEntry sep,
                          PageId right_child);
  Status RebalanceAfterDelete(std::vector<PathElem>* path, PageId node);

  PageDevice* dev_;
  PageId root_ = kInvalidPageId;
  uint64_t size_ = 0;
  uint32_t height_ = 1;  // number of levels (1 == root is a leaf)
  uint32_t leaf_cap_ = 0;
  uint32_t internal_cap_ = 0;
};

}  // namespace pathcache

#endif  // PATHCACHE_BTREE_BPLUS_TREE_H_
