#include "btree/bplus_tree.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>

#include "io/page_codec.h"
#include "kernels/search.h"

namespace pathcache {

namespace {

// On-page node layout.  NodeHeader.pad[0] carries the body format version:
//
//   v2 (0, interleaved):
//     NodeHeader            (24 bytes)
//     leaf:     BTreeEntry  x count        (16 bytes each)
//     internal: ChildEntry  x count        (24 bytes each; count children)
//
//   v3 (1, packed; written when codec::PackedPagesEnabled()):
//     NodeHeader            (24 bytes)
//     leaf:     int64 key   x count | uint64 value x count
//     internal: int64 sep.key x count | uint64 sep.value x count
//               | PageId child x count
//
// Both spend the same bytes per entry, so node capacities, split points and
// page counts are identical — only the byte order inside the body changes.
// The packed form puts the search keys eight to a cache line, which is what
// the in-place descent below probes (kernels::*KVPacked).
//
// Internal nodes route on lower fences: entries_[i].sep is <= every entry in
// the subtree of entries_[i].child and > every entry in subtrees 0..i-1.
// sep[0] is a -infinity sentinel at the root path boundary.

struct NodeHeader {
  uint8_t is_leaf = 0;
  uint8_t pad[3] = {0, 0, 0};
  uint32_t count = 0;
  PageId next = kInvalidPageId;  // leaf chain; unused in internal nodes
  uint64_t reserved = 0;
};
static_assert(sizeof(NodeHeader) == 24);

struct ChildEntry {
  BTreeEntry sep;
  PageId child = kInvalidPageId;
};
static_assert(sizeof(ChildEntry) == 24);

constexpr uint8_t kNodeV2 = 0;  // interleaved records
constexpr uint8_t kNodeV3 = 1;  // deinterleaved key/value(/child) arrays

// The in-page search kernels read BTreeEntry as a packed {int64 key,
// uint64 value} record and ChildEntry as the same record with 8 trailing
// bytes of stride; pin the layouts they assume.
static_assert(sizeof(BTreeEntry) == 16);
static_assert(offsetof(BTreeEntry, key) == 0);
static_assert(offsetof(BTreeEntry, value) == 8);
static_assert(offsetof(ChildEntry, sep) == 0);

constexpr BTreeEntry kMinEntry{INT64_MIN, 0};

// kernels:: equivalents of std::lower_bound / std::upper_bound with
// EntryLess over a decoded leaf (bit-identical results, SIMD-dispatched).
std::vector<BTreeEntry>::iterator LeafLowerBound(std::vector<BTreeEntry>& leaf,
                                                 const BTreeEntry& e) {
  return leaf.begin() + static_cast<ptrdiff_t>(kernels::LowerBoundKV(
                            leaf.data(), leaf.size(), e.key, e.value));
}

std::vector<BTreeEntry>::iterator LeafUpperBound(std::vector<BTreeEntry>& leaf,
                                                 const BTreeEntry& e) {
  return leaf.begin() + static_cast<ptrdiff_t>(kernels::UpperBoundKV(
                            leaf.data(), leaf.size(), e.key, e.value));
}

// Decoded node, mutated in memory and re-encoded on write.
struct Node {
  bool is_leaf = true;
  PageId next = kInvalidPageId;
  std::vector<BTreeEntry> leaf;       // valid if is_leaf
  std::vector<ChildEntry> children;   // valid if !is_leaf

  uint32_t count() const {
    return static_cast<uint32_t>(is_leaf ? leaf.size() : children.size());
  }
};

// Validates a node header against the page geometry before any body bytes
// are trusted: a corrupt count or version must fail loudly, never index off
// the frame.
Status CheckNodeHeader(const NodeHeader& hdr, size_t page_size) {
  if (hdr.pad[0] > kNodeV3) {
    return Status::Corruption("btree node format version " +
                              std::to_string(hdr.pad[0]) + " unknown");
  }
  const size_t entry =
      hdr.is_leaf != 0 ? sizeof(BTreeEntry) : sizeof(ChildEntry);
  if (sizeof(hdr) + static_cast<size_t>(hdr.count) * entry > page_size) {
    return Status::Corruption("btree node count " + std::to_string(hdr.count) +
                              " exceeds page capacity");
  }
  return Status::OK();
}

Status Decode(const std::vector<std::byte>& buf, Node* n) {
  NodeHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  PC_RETURN_IF_ERROR(CheckNodeHeader(hdr, buf.size()));
  n->is_leaf = hdr.is_leaf != 0;
  n->next = hdr.next;
  n->leaf.clear();
  n->children.clear();
  const std::byte* body = buf.data() + sizeof(hdr);
  const size_t cnt = hdr.count;
  if (hdr.pad[0] == kNodeV3) {
    const auto* keys = reinterpret_cast<const int64_t*>(body);
    const auto* vals = reinterpret_cast<const uint64_t*>(body + cnt * 8);
    if (n->is_leaf) {
      n->leaf.resize(cnt);
      for (size_t i = 0; i < cnt; ++i) n->leaf[i] = BTreeEntry{keys[i], vals[i]};
    } else {
      const std::byte* kids = body + cnt * 16;
      n->children.resize(cnt);
      for (size_t i = 0; i < cnt; ++i) {
        PageId child;
        std::memcpy(&child, kids + i * sizeof(PageId), sizeof(PageId));
        n->children[i] = ChildEntry{BTreeEntry{keys[i], vals[i]}, child};
      }
    }
    return Status::OK();
  }
  if (n->is_leaf) {
    n->leaf.resize(cnt);
    std::memcpy(n->leaf.data(), body, cnt * sizeof(BTreeEntry));
  } else {
    n->children.resize(cnt);
    std::memcpy(n->children.data(), body, cnt * sizeof(ChildEntry));
  }
  return Status::OK();
}

void Encode(const Node& n, std::vector<std::byte>* buf) {
  std::memset(buf->data(), 0, buf->size());
  const bool pack = codec::PackedPagesEnabled();
  NodeHeader hdr;
  hdr.is_leaf = n.is_leaf ? 1 : 0;
  hdr.pad[0] = pack ? kNodeV3 : kNodeV2;
  hdr.count = n.count();
  hdr.next = n.next;
  std::memcpy(buf->data(), &hdr, sizeof(hdr));
  std::byte* body = buf->data() + sizeof(hdr);
  const size_t cnt = hdr.count;
  if (!pack) {
    if (n.is_leaf) {
      std::memcpy(body, n.leaf.data(), cnt * sizeof(BTreeEntry));
    } else {
      std::memcpy(body, n.children.data(), cnt * sizeof(ChildEntry));
    }
    return;
  }
  auto* keys = reinterpret_cast<int64_t*>(body);
  auto* vals = reinterpret_cast<uint64_t*>(body + cnt * 8);
  if (n.is_leaf) {
    for (size_t i = 0; i < cnt; ++i) {
      keys[i] = n.leaf[i].key;
      vals[i] = n.leaf[i].value;
    }
  } else {
    std::byte* kids = body + cnt * 16;
    for (size_t i = 0; i < cnt; ++i) {
      keys[i] = n.children[i].sep.key;
      vals[i] = n.children[i].sep.value;
      std::memcpy(kids + i * sizeof(PageId), &n.children[i].child,
                  sizeof(PageId));
    }
  }
}

}  // namespace

BPlusTree::BPlusTree(PageDevice* dev) : dev_(dev) {
  const uint32_t body = dev->page_size() - sizeof(NodeHeader);
  leaf_cap_ = body / sizeof(BTreeEntry);
  internal_cap_ = body / sizeof(ChildEntry);
}

Status BPlusTree::ReadPage(PageId id, std::vector<std::byte>* buf) const {
  buf->resize(dev_->page_size());
  return dev_->Read(id, buf->data());
}

Status BPlusTree::WritePage(PageId id, const std::vector<std::byte>& buf) const {
  return dev_->Write(id, buf.data());
}

Status BPlusTree::Init() {
  auto r = dev_->Allocate();
  if (!r.ok()) return r.status();
  root_ = r.value();
  Node n;
  n.is_leaf = true;
  std::vector<std::byte> buf(dev_->page_size());
  Encode(n, &buf);
  PC_RETURN_IF_ERROR(WritePage(root_, buf));
  size_ = 0;
  height_ = 1;
  return Status::OK();
}

Status BPlusTree::BulkLoad(std::span<const BTreeEntry> sorted, double fill) {
  if (root_ != kInvalidPageId) {
    return Status::FailedPrecondition("BulkLoad on a non-empty tree");
  }
  if (sorted.empty()) return Init();
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (!EntryLess(sorted[i - 1], sorted[i])) {
      return Status::InvalidArgument("BulkLoad input not strictly sorted");
    }
  }
  const uint32_t leaf_fill = std::max<uint32_t>(
      1, static_cast<uint32_t>(static_cast<double>(leaf_cap_) * fill));
  const uint32_t int_fill = std::max<uint32_t>(
      3, static_cast<uint32_t>(static_cast<double>(internal_cap_) * fill));

  // Chunk `rem_total` items into nodes of ~`fill_count` items such that no
  // node (in particular the last one) drops below `min_count`.
  auto chunk = [](size_t rem_total, size_t fill_count, size_t cap,
                  size_t min_count) -> size_t {
    if (rem_total <= cap) return rem_total;
    size_t take = std::min<size_t>(fill_count, rem_total);
    if (rem_total - take < min_count) take = rem_total - min_count;
    return take;
  };

  std::vector<std::byte> buf(dev_->page_size());

  // Build the leaf level.
  std::vector<ChildEntry> level;  // (min entry, page) per node built
  {
    size_t i = 0;
    PageId prev = kInvalidPageId;
    std::vector<std::byte> prev_buf;
    Node prev_node;
    while (i < sorted.size()) {
      size_t take = chunk(sorted.size() - i, leaf_fill, leaf_cap_,
                          std::max<uint32_t>(1, leaf_cap_ / 2));
      auto r = dev_->Allocate();
      if (!r.ok()) return r.status();
      PageId id = r.value();
      Node n;
      n.is_leaf = true;
      n.leaf.assign(sorted.begin() + i, sorted.begin() + i + take);
      if (prev != kInvalidPageId) {
        prev_node.next = id;
        Encode(prev_node, &prev_buf);
        PC_RETURN_IF_ERROR(WritePage(prev, prev_buf));
      }
      prev = id;
      prev_node = n;
      prev_buf.resize(dev_->page_size());
      level.push_back({n.leaf.front(), id});
      i += take;
    }
    Encode(prev_node, &prev_buf);
    PC_RETURN_IF_ERROR(WritePage(prev, prev_buf));
  }

  // Build internal levels bottom-up.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<ChildEntry> next_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = chunk(level.size() - i, int_fill, internal_cap_,
                          std::max<uint32_t>(2, internal_cap_ / 2));
      auto r = dev_->Allocate();
      if (!r.ok()) return r.status();
      PageId id = r.value();
      Node n;
      n.is_leaf = false;
      n.children.assign(level.begin() + i, level.begin() + i + take);
      Encode(n, &buf);
      PC_RETURN_IF_ERROR(WritePage(id, buf));
      next_level.push_back({n.children.front().sep, id});
      i += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level.front().child;
  size_ = sorted.size();
  return Status::OK();
}

Status BPlusTree::DescendToLeaf(const BTreeEntry& e,
                                std::vector<PathElem>* path,
                                PageId* leaf) const {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("tree not initialized");
  }
  std::vector<std::byte> buf;
  PageId cur = root_;
  for (;;) {
    PC_RETURN_IF_ERROR(ReadPage(cur, &buf));
    // Route in place: the separator search runs directly on the page body
    // (dense key array on v3 nodes, strided records on v2), so the descent
    // never materializes a node.
    NodeHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(CheckNodeHeader(hdr, buf.size()));
    if (hdr.is_leaf != 0) {
      *leaf = cur;
      return Status::OK();
    }
    if (hdr.count == 0) {
      return Status::Corruption("internal node with no children");
    }
    const std::byte* body = buf.data() + sizeof(hdr);
    // Largest i with sep[i] <= e; sep[0] acts as -infinity, which the upper
    // bound honors by clamping 0 (no separator <= e) to child 0.
    size_t ub;
    PageId child;
    if (hdr.pad[0] == kNodeV3) {
      ub = kernels::UpperBoundKVPacked(
          reinterpret_cast<const int64_t*>(body),
          reinterpret_cast<const uint64_t*>(body + hdr.count * 8), hdr.count,
          e.key, e.value);
      const uint32_t idx = ub == 0 ? 0 : static_cast<uint32_t>(ub - 1);
      std::memcpy(&child, body + hdr.count * 16 + idx * sizeof(PageId),
                  sizeof(PageId));
      if (path != nullptr) path->push_back({cur, idx});
    } else {
      ub = kernels::UpperBoundKVStrided(body, sizeof(ChildEntry), hdr.count,
                                        e.key, e.value);
      const uint32_t idx = ub == 0 ? 0 : static_cast<uint32_t>(ub - 1);
      std::memcpy(&child,
                  body + idx * sizeof(ChildEntry) + offsetof(ChildEntry, child),
                  sizeof(PageId));
      if (path != nullptr) path->push_back({cur, idx});
    }
    cur = child;
  }
}

Status BPlusTree::Insert(const BTreeEntry& e) {
  std::vector<PathElem> path;
  PageId leaf;
  PC_RETURN_IF_ERROR(DescendToLeaf(e, &path, &leaf));

  std::vector<std::byte> buf;
  PC_RETURN_IF_ERROR(ReadPage(leaf, &buf));
  Node n;
  PC_RETURN_IF_ERROR(Decode(buf, &n));
  auto it = LeafLowerBound(n.leaf, e);
  if (it != n.leaf.end() && *it == e) {
    return Status::InvalidArgument("duplicate entry");
  }
  n.leaf.insert(it, e);
  ++size_;

  if (n.leaf.size() <= leaf_cap_) {
    Encode(n, &buf);
    return WritePage(leaf, buf);
  }

  // Split the leaf.
  auto r = dev_->Allocate();
  if (!r.ok()) return r.status();
  PageId right_id = r.value();
  Node right;
  right.is_leaf = true;
  size_t mid = n.leaf.size() / 2;
  right.leaf.assign(n.leaf.begin() + mid, n.leaf.end());
  n.leaf.resize(mid);
  right.next = n.next;
  n.next = right_id;
  Encode(n, &buf);
  PC_RETURN_IF_ERROR(WritePage(leaf, buf));
  Encode(right, &buf);
  PC_RETURN_IF_ERROR(WritePage(right_id, buf));
  return InsertIntoParent(&path, right.leaf.front(), right_id);
}

Status BPlusTree::InsertIntoParent(std::vector<PathElem>* path, BTreeEntry sep,
                                   PageId right_child) {
  std::vector<std::byte> buf(dev_->page_size());
  for (;;) {
    if (path->empty()) {
      // Split reached the root: grow the tree by one level.
      auto r = dev_->Allocate();
      if (!r.ok()) return r.status();
      PageId new_root = r.value();
      Node n;
      n.is_leaf = false;
      n.children.push_back({kMinEntry, root_});
      n.children.push_back({sep, right_child});
      Encode(n, &buf);
      PC_RETURN_IF_ERROR(WritePage(new_root, buf));
      root_ = new_root;
      ++height_;
      return Status::OK();
    }
    PathElem pe = path->back();
    path->pop_back();
    PC_RETURN_IF_ERROR(ReadPage(pe.page, &buf));
    Node n;
    PC_RETURN_IF_ERROR(Decode(buf, &n));
    n.children.insert(n.children.begin() + pe.child_idx + 1,
                      {sep, right_child});
    if (n.children.size() <= internal_cap_) {
      Encode(n, &buf);
      return WritePage(pe.page, buf);
    }
    // Split the internal node; the right half's first separator moves up.
    auto r = dev_->Allocate();
    if (!r.ok()) return r.status();
    PageId right_id = r.value();
    Node right;
    right.is_leaf = false;
    size_t mid = n.children.size() / 2;
    right.children.assign(n.children.begin() + mid, n.children.end());
    n.children.resize(mid);
    Encode(n, &buf);
    PC_RETURN_IF_ERROR(WritePage(pe.page, buf));
    Encode(right, &buf);
    PC_RETURN_IF_ERROR(WritePage(right_id, buf));
    sep = right.children.front().sep;
    right_child = right_id;
  }
}

Status BPlusTree::Delete(const BTreeEntry& e) {
  std::vector<PathElem> path;
  PageId leaf;
  PC_RETURN_IF_ERROR(DescendToLeaf(e, &path, &leaf));

  std::vector<std::byte> buf;
  PC_RETURN_IF_ERROR(ReadPage(leaf, &buf));
  Node n;
  PC_RETURN_IF_ERROR(Decode(buf, &n));
  auto it = LeafLowerBound(n.leaf, e);
  if (it == n.leaf.end() || !(*it == e)) {
    return Status::NotFound("entry not present");
  }
  n.leaf.erase(it);
  --size_;
  Encode(n, &buf);
  PC_RETURN_IF_ERROR(WritePage(leaf, buf));

  const uint32_t min_leaf = leaf_cap_ / 2;
  if (n.leaf.size() >= min_leaf || path.empty()) return Status::OK();
  return RebalanceAfterDelete(&path, leaf);
}

Status BPlusTree::RebalanceAfterDelete(std::vector<PathElem>* path,
                                       PageId node_id) {
  std::vector<std::byte> buf, buf2, buf3;
  for (;;) {
    PathElem pe = path->back();
    path->pop_back();

    PC_RETURN_IF_ERROR(ReadPage(pe.page, &buf));
    Node parent;
    PC_RETURN_IF_ERROR(Decode(buf, &parent));
    PC_RETURN_IF_ERROR(ReadPage(node_id, &buf2));
    Node node;
    PC_RETURN_IF_ERROR(Decode(buf2, &node));

    const uint32_t min_count = (node.is_leaf ? leaf_cap_ : internal_cap_) / 2;
    if (node.count() >= min_count) return Status::OK();

    const uint32_t idx = pe.child_idx;
    // Try borrowing from the left sibling.
    if (idx > 0) {
      PageId left_id = parent.children[idx - 1].child;
      PC_RETURN_IF_ERROR(ReadPage(left_id, &buf3));
      Node left;
      PC_RETURN_IF_ERROR(Decode(buf3, &left));
      if (left.count() > min_count) {
        if (node.is_leaf) {
          node.leaf.insert(node.leaf.begin(), left.leaf.back());
          left.leaf.pop_back();
          parent.children[idx].sep = node.leaf.front();
        } else {
          node.children.insert(node.children.begin(), left.children.back());
          left.children.pop_back();
          parent.children[idx].sep = node.children.front().sep;
        }
        Encode(left, &buf3);
        PC_RETURN_IF_ERROR(WritePage(left_id, buf3));
        Encode(node, &buf2);
        PC_RETURN_IF_ERROR(WritePage(node_id, buf2));
        Encode(parent, &buf);
        return WritePage(pe.page, buf);
      }
    }
    // Try borrowing from the right sibling.
    if (idx + 1 < parent.count()) {
      PageId right_id = parent.children[idx + 1].child;
      PC_RETURN_IF_ERROR(ReadPage(right_id, &buf3));
      Node right;
      PC_RETURN_IF_ERROR(Decode(buf3, &right));
      if (right.count() > min_count) {
        if (node.is_leaf) {
          node.leaf.push_back(right.leaf.front());
          right.leaf.erase(right.leaf.begin());
          parent.children[idx + 1].sep = right.leaf.front();
        } else {
          node.children.push_back(right.children.front());
          right.children.erase(right.children.begin());
          parent.children[idx + 1].sep = right.children.front().sep;
        }
        Encode(right, &buf3);
        PC_RETURN_IF_ERROR(WritePage(right_id, buf3));
        Encode(node, &buf2);
        PC_RETURN_IF_ERROR(WritePage(node_id, buf2));
        Encode(parent, &buf);
        return WritePage(pe.page, buf);
      }
    }

    // Merge with a sibling; keep the left partner, free the right.
    uint32_t left_idx = (idx > 0) ? idx - 1 : idx;
    PageId left_id = parent.children[left_idx].child;
    PageId right_id = parent.children[left_idx + 1].child;
    Node left, right;
    if (left_id == node_id) {
      left = node;
      PC_RETURN_IF_ERROR(ReadPage(right_id, &buf3));
      PC_RETURN_IF_ERROR(Decode(buf3, &right));
    } else {
      PC_RETURN_IF_ERROR(ReadPage(left_id, &buf3));
      PC_RETURN_IF_ERROR(Decode(buf3, &left));
      right = node;
    }
    if (left.is_leaf) {
      left.leaf.insert(left.leaf.end(), right.leaf.begin(), right.leaf.end());
      left.next = right.next;
    } else {
      left.children.insert(left.children.end(), right.children.begin(),
                           right.children.end());
    }
    Encode(left, &buf3);
    PC_RETURN_IF_ERROR(WritePage(left_id, buf3));
    PC_RETURN_IF_ERROR(dev_->Free(right_id));
    parent.children.erase(parent.children.begin() + left_idx + 1);

    if (path->empty()) {
      // pe.page is the root.
      if (parent.count() == 1) {
        PC_RETURN_IF_ERROR(dev_->Free(pe.page));
        root_ = parent.children.front().child;
        --height_;
        return Status::OK();
      }
      Encode(parent, &buf);
      return WritePage(pe.page, buf);
    }
    Encode(parent, &buf);
    PC_RETURN_IF_ERROR(WritePage(pe.page, buf));
    if (parent.count() >= internal_cap_ / 2) return Status::OK();
    node_id = pe.page;
  }
}

Status BPlusTree::Get(int64_t key, uint64_t* value, bool* found) {
  *found = false;
  PageId leaf;
  PC_RETURN_IF_ERROR(DescendToLeaf({key, 0}, nullptr, &leaf));
  std::vector<std::byte> buf;
  // Probe in place across both body formats; a v3 leaf searches its dense
  // key array without reinterleaving the page.
  auto probe = [&](size_t* pos, PageId* next) -> Status {
    NodeHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    PC_RETURN_IF_ERROR(CheckNodeHeader(hdr, buf.size()));
    if (hdr.is_leaf == 0) return Status::Corruption("expected a leaf node");
    *next = hdr.next;
    const std::byte* body = buf.data() + sizeof(hdr);
    if (hdr.pad[0] == kNodeV3) {
      const auto* keys = reinterpret_cast<const int64_t*>(body);
      const auto* vals =
          reinterpret_cast<const uint64_t*>(body + hdr.count * 8);
      const size_t i =
          kernels::LowerBoundKVPacked(keys, vals, hdr.count, key, 0);
      *pos = i;
      if (i < hdr.count && keys[i] == key) {
        *found = true;
        *value = vals[i];
      }
    } else {
      const size_t i = kernels::LowerBoundKV(body, hdr.count, key, 0);
      *pos = i;
      if (i < hdr.count) {
        BTreeEntry e;
        std::memcpy(&e, body + i * sizeof(BTreeEntry), sizeof(e));
        if (e.key == key) {
          *found = true;
          *value = e.value;
        }
      }
    }
    *pos = hdr.count - *pos;  // records at or after the probe
    return Status::OK();
  };
  PC_RETURN_IF_ERROR(ReadPage(leaf, &buf));
  size_t after = 0;
  PageId next = kInvalidPageId;
  PC_RETURN_IF_ERROR(probe(&after, &next));
  if (*found) return Status::OK();
  // The first entry with this key may start the next leaf only if this leaf
  // ends exactly before it; handle the boundary by peeking the chain.
  if (after == 0 && next != kInvalidPageId) {
    PC_RETURN_IF_ERROR(ReadPage(next, &buf));
    PageId next2;
    PC_RETURN_IF_ERROR(probe(&after, &next2));
  }
  return Status::OK();
}

Status BPlusTree::FindFloor(int64_t key, BTreeEntry* out, bool* found) {
  *found = false;
  std::vector<PathElem> path;
  PageId leaf;
  // Descend for the maximal entry with this key.
  PC_RETURN_IF_ERROR(DescendToLeaf({key, UINT64_MAX}, &path, &leaf));
  std::vector<std::byte> buf;
  PC_RETURN_IF_ERROR(ReadPage(leaf, &buf));
  Node n;
  PC_RETURN_IF_ERROR(Decode(buf, &n));
  auto it = LeafUpperBound(n.leaf, BTreeEntry{key, UINT64_MAX});
  if (it != n.leaf.begin()) {
    *out = *(it - 1);
    *found = true;
    return Status::OK();
  }
  // The floor lives in the rightmost leaf of the nearest left subtree.
  while (!path.empty()) {
    PathElem pe = path.back();
    path.pop_back();
    if (pe.child_idx == 0) continue;
    PC_RETURN_IF_ERROR(ReadPage(pe.page, &buf));
    PC_RETURN_IF_ERROR(Decode(buf, &n));
    PageId cur = n.children[pe.child_idx - 1].child;
    for (;;) {
      PC_RETURN_IF_ERROR(ReadPage(cur, &buf));
      PC_RETURN_IF_ERROR(Decode(buf, &n));
      if (n.is_leaf) break;
      cur = n.children.back().child;
    }
    if (n.leaf.empty()) return Status::OK();
    *out = n.leaf.back();
    *found = true;
    return Status::OK();
  }
  return Status::OK();
}

Status BPlusTree::ScanFrom(int64_t lo,
                           const std::function<bool(const BTreeEntry&)>& cb) {
  PageId leaf;
  PC_RETURN_IF_ERROR(DescendToLeaf({lo, 0}, nullptr, &leaf));
  std::vector<std::byte> buf;
  PageId cur = leaf;
  bool first = true;
  while (cur != kInvalidPageId) {
    PC_RETURN_IF_ERROR(ReadPage(cur, &buf));
    Node n;
    PC_RETURN_IF_ERROR(Decode(buf, &n));
    size_t start = 0;
    if (first) {
      start = kernels::LowerBoundKV(n.leaf.data(), n.leaf.size(), lo, 0);
      first = false;
    }
    for (size_t i = start; i < n.leaf.size(); ++i) {
      if (!cb(n.leaf[i])) return Status::OK();
    }
    cur = n.next;
  }
  return Status::OK();
}

Status BPlusTree::RangeScan(int64_t lo, int64_t hi,
                            std::vector<BTreeEntry>* out) {
  return ScanFrom(lo, [&](const BTreeEntry& e) {
    if (e.key > hi) return false;
    out->push_back(e);
    return true;
  });
}

Status BPlusTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("tree not initialized");
  }
  std::vector<PageId> leaves_in_order;
  uint64_t counted = 0;

  // Iterative DFS carrying (page, depth, lower bound, upper bound).
  struct Item {
    PageId page;
    uint32_t depth;
    BTreeEntry lo;
    bool has_lo;
    BTreeEntry hi;
    bool has_hi;
  };
  std::vector<Item> stack;
  stack.push_back({root_, 1, {}, false, {}, false});
  std::vector<std::byte> buf;
  uint32_t leaf_depth = 0;

  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    PC_RETURN_IF_ERROR(ReadPage(item.page, &buf));
    Node n;
    PC_RETURN_IF_ERROR(Decode(buf, &n));
    if (n.is_leaf) {
      if (leaf_depth == 0) leaf_depth = item.depth;
      if (leaf_depth != item.depth) {
        return Status::Corruption("leaves at differing depths");
      }
      if (item.depth != height_) {
        return Status::Corruption("height_ does not match leaf depth");
      }
      if (item.page != root_ && n.leaf.size() < leaf_cap_ / 2) {
        return Status::Corruption("leaf underfull");
      }
      for (size_t i = 0; i < n.leaf.size(); ++i) {
        if (i > 0 && !EntryLess(n.leaf[i - 1], n.leaf[i])) {
          return Status::Corruption("leaf entries out of order");
        }
        if (item.has_lo && EntryLess(n.leaf[i], item.lo)) {
          return Status::Corruption("leaf entry below lower fence");
        }
        if (item.has_hi && !EntryLess(n.leaf[i], item.hi)) {
          return Status::Corruption("leaf entry above upper fence");
        }
      }
      counted += n.leaf.size();
      leaves_in_order.push_back(item.page);
      continue;
    }
    if (n.children.size() < 2) {
      return Status::Corruption("internal node with < 2 children");
    }
    if (item.page != root_ && n.children.size() < internal_cap_ / 2) {
      return Status::Corruption("internal node underfull");
    }
    for (size_t i = 1; i < n.children.size(); ++i) {
      if (!EntryLess(n.children[i - 1].sep, n.children[i].sep)) {
        return Status::Corruption("separators out of order");
      }
    }
    // Push children right-to-left so DFS visits them left-to-right.
    for (size_t ri = n.children.size(); ri-- > 0;) {
      Item child;
      child.page = n.children[ri].child;
      child.depth = item.depth + 1;
      if (ri == 0) {
        child.lo = item.lo;
        child.has_lo = item.has_lo;
      } else {
        child.lo = n.children[ri].sep;
        child.has_lo = true;
      }
      if (ri + 1 < n.children.size()) {
        child.hi = n.children[ri + 1].sep;
        child.has_hi = true;
      } else {
        child.hi = item.hi;
        child.has_hi = item.has_hi;
      }
      stack.push_back(child);
    }
  }

  if (counted != size_) {
    return Status::Corruption("size_ mismatch: counted " +
                              std::to_string(counted) + " expected " +
                              std::to_string(size_));
  }

  // Verify the leaf chain visits the leaves in DFS (key) order.
  PageId cur = leaves_in_order.front();
  for (PageId expect : leaves_in_order) {
    if (cur != expect) return Status::Corruption("leaf chain out of order");
    PC_RETURN_IF_ERROR(ReadPage(cur, &buf));
    Node n;
    PC_RETURN_IF_ERROR(Decode(buf, &n));
    cur = n.next;
  }
  if (cur != kInvalidPageId) {
    return Status::Corruption("leaf chain does not terminate");
  }
  return Status::OK();
}

}  // namespace pathcache
