// Tracer: low-overhead spans recorded into a fixed-size lock-free ring
// buffer, dumped as Chrome trace-event JSON (load the file in Perfetto or
// chrome://tracing).
//
// The serving stack uses three nesting levels: one span per query
// (serve.query), one per dequeued batch (serve.batch), and one per device
// operation underneath (io.read / io.read_batch / io.write / io.pin, via
// TracingPageDevice), so a Perfetto timeline shows exactly which device
// I/Os a slow query paid for — the per-transfer accounting the paper's
// bounds are stated in, laid out on a wall clock.
//
// Always compiled in, off by default: every Record path starts with one
// relaxed load of `enabled_` and a branch, which is the entire disabled
// cost.  bench_serve --obs gates that disabled-by-default cost (<3% vs an
// engine with no obs wired) and reports the enabled cost, which against a
// RAM-speed device is genuinely double-digit percent because every page
// read becomes two ring events; see EXPERIMENTS E18.
//
// Concurrency: Record() claims a ticket with one relaxed fetch_add and
// writes the slot's fields as relaxed atomics, then publishes the ticket
// with a release store — no locks anywhere.  The ring overwrites oldest
// events when full (dropped() counts them).  Snapshot() skips slots caught
// mid-write; in the rare interleaving where a wraparound overwrite races a
// snapshot, a surfaced event may mix fields of the old and new record.
// The trace is a diagnostic, not an audit log — readers get well-formed
// events, just occasionally an approximate one.
//
// Event names must be string literals (or otherwise outlive the tracer):
// slots store the pointer, never a copy.

#ifndef PATHCACHE_OBS_TRACE_H_
#define PATHCACHE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace pathcache {

/// One recorded event, as returned by Tracer::Snapshot().
struct TraceEvent {
  uint64_t ts_micros = 0;  // since the tracer's construction
  uint32_t tid = 0;        // small per-thread ordinal, stable per thread
  uint64_t arg = 0;        // operand: page id, batch size, structure id...
  const char* name = nullptr;
  char phase = 0;  // 'B' begin, 'E' end, 'I' instant
};

class Tracer {
 public:
  /// `capacity` is rounded up to a power of two; the ring holds the most
  /// recent `capacity` events.
  explicit Tracer(size_t capacity = 1 << 14);

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// `name` must outlive the tracer (use string literals).
  void Begin(const char* name, uint64_t arg = 0) {
    if (enabled()) Record('B', name, arg);
  }
  void End(const char* name, uint64_t arg = 0) {
    if (enabled()) Record('E', name, arg);
  }
  void Instant(const char* name, uint64_t arg = 0) {
    if (enabled()) Record('I', name, arg);
  }

  /// Events currently readable from the ring, in timestamp order.
  std::vector<TraceEvent> Snapshot() const;

  /// Total events recorded since construction / Reset().
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound.
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

  /// Clears the ring and counters.  Callers must quiesce recording threads
  /// first (or Disable() and let in-flight Records finish).
  void Reset();

  /// Dumps the snapshot as a Chrome trace-event document:
  /// {"traceEvents":[{"name":...,"ph":"B","ts":...,"pid":1,"tid":...}...]}.
  void WriteChromeTrace(std::string* out) const;
  Status WriteChromeTrace(std::FILE* out) const;

  /// Microseconds since construction on the tracer's steady clock.
  uint64_t NowMicros() const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = empty, else ticket + 1
    std::atomic<uint64_t> ts{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint32_t> tid{0};
    std::atomic<char> phase{0};
  };

  void Record(char phase, const char* name, uint64_t arg);
  static uint32_t ThreadOrdinal();

  size_t capacity_;  // power of two
  uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{false};
  uint64_t origin_ns_;  // steady-clock origin, set at construction
};

/// RAII span: Begin on construction, End on destruction.  A null tracer is
/// a no-op, so call sites need no branching.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, uint64_t arg = 0)
      : tracer_(tracer), name_(name), arg_(arg) {
    if (tracer_ != nullptr) tracer_->Begin(name_, arg_);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->End(name_, arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  uint64_t arg_;
};

}  // namespace pathcache

#endif  // PATHCACHE_OBS_TRACE_H_
