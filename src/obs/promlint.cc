#include "obs/promlint.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pathcache {

namespace {

bool NameHead(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool NameTail(char c) { return NameHead(c) || (c >= '0' && c <= '9'); }
bool LabelHead(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool LabelTail(char c) { return LabelHead(c) || (c >= '0' && c <= '9'); }

/// Consumes a metric/label identifier starting at *pos; empty on failure.
std::string_view TakeName(std::string_view line, size_t* pos, bool label) {
  const size_t start = *pos;
  if (start >= line.size()) return {};
  if (label ? !LabelHead(line[start]) : !NameHead(line[start])) return {};
  size_t end = start + 1;
  while (end < line.size() &&
         (label ? LabelTail(line[end]) : NameTail(line[end]))) {
    ++end;
  }
  *pos = end;
  return line.substr(start, end - start);
}

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("prometheus text line " +
                                 std::to_string(line_no) + ": " + what);
}

bool IsSuffix(std::string_view name, std::string_view suffix,
              std::string_view* base) {
  if (name.size() <= suffix.size() ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return false;
  }
  *base = name.substr(0, name.size() - suffix.size());
  return true;
}

}  // namespace

Status PrometheusLint(std::string_view text) {
  std::unordered_map<std::string, std::string> types;  // family -> type
  std::unordered_set<std::string> helps;
  std::unordered_set<std::string> sampled_families;
  std::unordered_set<std::string> series_seen;

  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = std::min(text.find('\n', pos), text.size());
    const std::string_view line = text.substr(pos, eol - pos);
    const bool last = eol >= text.size();
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (last) break;
      continue;
    }

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; anything else after '#' is
      // a plain comment.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_help = line[2] == 'H';
        size_t p = 7;
        const std::string_view name = TakeName(line, &p, /*label=*/false);
        if (name.empty()) {
          return LineError(line_no, "missing metric name after # HELP/# TYPE");
        }
        if (is_help) {
          if (p < line.size() && line[p] != ' ') {
            return LineError(line_no, "malformed metric name in # HELP");
          }
          if (!helps.insert(std::string(name)).second) {
            return LineError(line_no,
                             "duplicate # HELP for " + std::string(name));
          }
          // Free-form doc text follows; nothing further to check.
        } else {
          if (p >= line.size() || line[p] != ' ') {
            return LineError(line_no, "missing type in # TYPE");
          }
          const std::string_view type = line.substr(p + 1);
          if (type != "counter" && type != "gauge" && type != "summary" &&
              type != "histogram" && type != "untyped") {
            return LineError(line_no,
                             "unknown type \"" + std::string(type) + "\"");
          }
          if (!types.emplace(std::string(name), std::string(type)).second) {
            return LineError(line_no,
                             "duplicate # TYPE for " + std::string(name));
          }
          if (sampled_families.count(std::string(name)) != 0) {
            return LineError(line_no, "# TYPE for " + std::string(name) +
                                          " after its first sample");
          }
        }
      }
      if (last) break;
      continue;
    }

    // Sample line: name[{labels}] value [timestamp].
    size_t p = 0;
    const std::string_view name = TakeName(line, &p, /*label=*/false);
    if (name.empty()) {
      return LineError(line_no, "line is neither a comment nor a sample");
    }
    std::vector<std::pair<std::string, std::string>> labels;
    if (p < line.size() && line[p] == '{') {
      ++p;
      while (true) {
        if (p < line.size() && line[p] == '}') {
          ++p;
          break;
        }
        const std::string_view lname = TakeName(line, &p, /*label=*/true);
        if (lname.empty()) return LineError(line_no, "malformed label name");
        if (p >= line.size() || line[p] != '=') {
          return LineError(line_no, "missing '=' after label " +
                                        std::string(lname));
        }
        ++p;
        if (p >= line.size() || line[p] != '"') {
          return LineError(line_no, "label value must be double-quoted");
        }
        ++p;
        std::string value;
        bool closed = false;
        while (p < line.size()) {
          const char c = line[p];
          if (c == '"') {
            closed = true;
            ++p;
            break;
          }
          if (c == '\\') {
            if (p + 1 >= line.size()) {
              return LineError(line_no, "dangling backslash in label value");
            }
            const char esc = line[p + 1];
            if (esc != '\\' && esc != '"' && esc != 'n') {
              return LineError(line_no,
                               std::string("invalid escape \"\\") + esc +
                                   "\" in label value");
            }
            value.push_back(esc == 'n' ? '\n' : esc);
            p += 2;
            continue;
          }
          value.push_back(c);
          ++p;
        }
        if (!closed) return LineError(line_no, "unterminated label value");
        for (const auto& [k, v] : labels) {
          (void)v;
          if (k == lname) {
            return LineError(line_no,
                             "duplicate label " + std::string(lname));
          }
        }
        labels.emplace_back(std::string(lname), std::move(value));
        if (p < line.size() && line[p] == ',') {
          ++p;  // separator (a trailing comma before '}' is legal)
          continue;
        }
        if (p < line.size() && line[p] == '}') {
          ++p;
          break;
        }
        return LineError(line_no, "expected ',' or '}' in label block");
      }
    }
    if (p >= line.size() || line[p] != ' ') {
      return LineError(line_no, "missing value after metric name");
    }
    while (p < line.size() && line[p] == ' ') ++p;
    const size_t value_start = p;
    while (p < line.size() && line[p] != ' ') ++p;
    const std::string value_tok(line.substr(value_start, p - value_start));
    if (value_tok.empty()) {
      return LineError(line_no, "missing value after metric name");
    }
    {
      char* end = nullptr;
      std::strtod(value_tok.c_str(), &end);
      if (end != value_tok.c_str() + value_tok.size()) {
        return LineError(line_no, "unparseable value \"" + value_tok + "\"");
      }
    }
    if (p < line.size()) {
      while (p < line.size() && line[p] == ' ') ++p;
      const size_t ts_start = p;
      if (p < line.size() && (line[p] == '+' || line[p] == '-')) ++p;
      while (p < line.size() && line[p] >= '0' && line[p] <= '9') ++p;
      if (p != line.size() || p == ts_start) {
        return LineError(line_no, "trailing garbage after value");
      }
    }

    // Attribute the sample to its family: an exact TYPE match, or a
    // summary/histogram child series.
    std::string family(name);
    if (types.count(family) == 0) {
      std::string_view base;
      if ((IsSuffix(name, "_sum", &base) || IsSuffix(name, "_count", &base) ||
           IsSuffix(name, "_bucket", &base))) {
        const auto it = types.find(std::string(base));
        if (it != types.end() &&
            (it->second == "summary" || it->second == "histogram")) {
          family = std::string(base);
        }
      }
    }
    if (types.count(family) == 0) {
      return LineError(line_no, "sample for " + std::string(name) +
                                    " has no preceding # TYPE");
    }
    sampled_families.insert(family);

    // Exact-duplicate series check (label order is irrelevant).
    std::vector<std::pair<std::string, std::string>> sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key(name);
    for (const auto& [k, v] : sorted) {
      key += '\x1f';
      key += k;
      key += '\x1e';
      key += v;
    }
    if (!series_seen.insert(key).second) {
      return LineError(line_no, "duplicate series " + std::string(name));
    }
    if (last) break;
  }
  return Status::OK();
}

}  // namespace pathcache
