// MetricsRegistry: named counters / gauges / summaries with cheap
// thread-safe registration, plus exporters for the Prometheus text
// exposition format and JSON.
//
// The paper's whole argument is an I/O accounting discipline — every block
// read is classified useful or wasteful — and the repo already *collects*
// that accounting (QueryStats, per-device IoStats, pool hit/miss/eviction
// counts, ServeStats).  This registry is the publication side: adapters
// below register the existing stats structs as sampled metric families, so
// an operator scraping /metrics sees, per structure and per device, exactly
// the per-query transfer accounting the theorems bound.
//
// Two metric flavors:
//
//   * Owned counters (`AddCounter`): the registry owns an atomic the caller
//     increments through the returned handle.  Lock-free on the hot path.
//   * Sampled metrics (`AddCounterFn` / `AddGaugeFn` / `AddSummaryFn`): the
//     registry stores a callback invoked at export time.  This is how the
//     existing stats structs publish without being rewritten — the callback
//     must be safe to invoke from the exporting thread (use the atomic /
//     snapshot accessors: SharedBufferPool::StatsSnapshot(), the retry and
//     checksum devices' atomic counters, QueryEngine::stats()).
//
// Thread-safety: registration, export and Counter::Increment may be called
// from any thread; registration and export serialize on one mutex,
// increments are relaxed atomics.  Registered names must match
// [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus rules); duplicate (name, labels)
// pairs and kind conflicts within a name are rejected at registration.

#ifndef PATHCACHE_OBS_METRICS_H_
#define PATHCACHE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/query_stats.h"
#include "io/io_types.h"
#include "util/status.h"

namespace pathcache {

class SharedBufferPool;
class ChecksumPageDevice;
class RetryPageDevice;
class FaultPageDevice;

/// Label set attached to one metric series, e.g. {{"device", "pool"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter owned by the registry.  Increment is
/// a single relaxed fetch_add; handles stay valid for the registry's
/// lifetime.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> v_{0};
};

/// Quantile snapshot published as a Prometheus summary.  Mirrors
/// LatencyHistogram::Snapshot (serve/) without depending on it, so lower
/// layers can publish summaries too.
struct MetricSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers an owned counter and returns its handle (valid for the
  /// registry's lifetime).  By Prometheus convention counter names should
  /// end in `_total`.
  Result<Counter*> AddCounter(std::string name, std::string help,
                              MetricLabels labels = {});

  /// Registers a sampled counter: `sample` is invoked at every export.
  Status AddCounterFn(std::string name, std::string help, MetricLabels labels,
                      std::function<uint64_t()> sample);

  /// Registers a sampled gauge (a value that can go down).
  Status AddGaugeFn(std::string name, std::string help, MetricLabels labels,
                    std::function<double()> sample);

  /// Registers a sampled summary, exported as the Prometheus
  /// `name{quantile=...}` / `name_sum` / `name_count` series.
  Status AddSummaryFn(std::string name, std::string help, MetricLabels labels,
                      std::function<MetricSummary()> sample);

  /// Appends the Prometheus text exposition of every metric, grouped into
  /// families (# HELP / # TYPE once per name, in first-registration order).
  void WritePrometheus(std::string* out) const;

  /// Appends a JSON document {"metrics":[...]} with one entry per series.
  void WriteJson(std::string* out) const;

  size_t num_series() const;

 private:
  enum class Kind { kCounter, kCounterFn, kGaugeFn, kSummaryFn };

  struct Metric {
    Kind kind;
    std::string name;
    std::string help;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;        // kCounter
    std::function<uint64_t()> sample_u64;    // kCounterFn
    std::function<double()> sample_f64;      // kGaugeFn
    std::function<MetricSummary()> summary;  // kSummaryFn
  };

  /// Name/label validity, kind consistency within the family, and
  /// (name, labels) uniqueness.  Caller holds mu_.
  Status CheckRegistration(const std::string& name, const MetricLabels& labels,
                           Kind kind) const;

  mutable std::mutex mu_;
  std::deque<Metric> metrics_;  // deque: Counter addresses must be stable
};

// --- Adapters for the repo's existing stats structs ------------------------
//
// Each registers one or more sampled families.  The callback is invoked at
// export time from the exporting thread; hand in thread-safe accessors.

/// IoStats as pathcache_io_{reads,writes,allocs,frees,batch_reads}_total,
/// labeled {device="<device_label>"}.
Status RegisterIoStatsMetrics(MetricsRegistry* reg,
                              const std::string& device_label,
                              std::function<IoStats()> sample);

/// QueryStats as pathcache_query_block_reads_total{role=...} (the Figure-4
/// role breakdown), pathcache_query_payoff_reads_total{class=useful|wasteful}
/// and pathcache_query_records_reported_total, all with `labels` appended.
Status RegisterQueryStatsMetrics(MetricsRegistry* reg, MetricLabels labels,
                                 std::function<QueryStats()> sample);

/// SharedBufferPool hit/miss/eviction counters and cached/pinned gauges
/// (pathcache_pool_*, labeled {pool="<pool_label>"}), plus its IoStats via
/// RegisterIoStatsMetrics(StatsSnapshot).  `pool` must outlive the registry's
/// exports.
Status RegisterSharedBufferPoolMetrics(MetricsRegistry* reg,
                                       const std::string& pool_label,
                                       const SharedBufferPool* pool);

/// ChecksumPageDevice pages_verified / checksum_failures counters
/// (pathcache_checksum_*_total, labeled {device=...}).
Status RegisterChecksumMetrics(MetricsRegistry* reg,
                               const std::string& device_label,
                               const ChecksumPageDevice* dev);

/// RetryPageDevice retries / recovered / exhausted counters
/// (pathcache_retry_*_total, labeled {device=...}).
Status RegisterRetryMetrics(MetricsRegistry* reg,
                            const std::string& device_label,
                            const RetryPageDevice* dev);

/// FaultPageDevice injected-fault tallies (pathcache_fault_*_total, labeled
/// {device=...}).  The fault device is test gear: sample it quiesced.
Status RegisterFaultMetrics(MetricsRegistry* reg,
                            const std::string& device_label,
                            const FaultPageDevice* dev);

}  // namespace pathcache

#endif  // PATHCACHE_OBS_METRICS_H_
