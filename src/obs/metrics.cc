#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "io/checksum_page_device.h"
#include "io/fault_page_device.h"
#include "io/retry_page_device.h"
#include "io/shared_buffer_pool.h"
#include "util/json_writer.h"

namespace pathcache {

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  if (name.size() >= 2 && name[0] == '_' && name[1] == '_') return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Prometheus label-value escaping: backslash, double-quote and newline.
void AppendEscapedLabelValue(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

/// `{k1="v1",k2="v2"}` (empty string when there are no labels), with
/// `extra` appended after the declared labels (used for quantile series).
std::string LabelBlock(const MetricLabels& labels,
                       const MetricLabels& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto* set : {&labels, &extra}) {
    for (const auto& [k, v] : *set) {
      if (!first) out.push_back(',');
      first = false;
      out += k;
      out += "=\"";
      AppendEscapedLabelValue(&out, v);
      out.push_back('"');
    }
  }
  out.push_back('}');
  return out;
}

void AppendUintSample(std::string* out, const std::string& name,
                      const std::string& label_block, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += name;
  *out += label_block;
  out->push_back(' ');
  *out += buf;
  out->push_back('\n');
}

void AppendDoubleSample(std::string* out, const std::string& name,
                        const std::string& label_block, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += name;
  *out += label_block;
  out->push_back(' ');
  *out += buf;
  out->push_back('\n');
}

}  // namespace

Status MetricsRegistry::CheckRegistration(const std::string& name,
                                          const MetricLabels& labels,
                                          Kind kind) const {
  if (!ValidMetricName(name)) {
    return Status::InvalidArgument("invalid metric name \"" + name + "\"");
  }
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!ValidLabelName(k)) {
      return Status::InvalidArgument("invalid label name \"" + k +
                                     "\" on metric " + name);
    }
  }
  for (const Metric& m : metrics_) {
    if (m.name != name) continue;
    const bool same_kind =
        m.kind == kind ||
        (m.kind == Kind::kCounter && kind == Kind::kCounterFn) ||
        (m.kind == Kind::kCounterFn && kind == Kind::kCounter);
    if (!same_kind) {
      return Status::InvalidArgument("metric " + name +
                                     " already registered with another kind");
    }
    if (m.labels == labels) {
      return Status::InvalidArgument("duplicate series " + name +
                                     LabelBlock(labels));
    }
  }
  return Status::OK();
}

Result<Counter*> MetricsRegistry::AddCounter(std::string name,
                                             std::string help,
                                             MetricLabels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(CheckRegistration(name, labels, Kind::kCounter));
  Metric m;
  m.kind = Kind::kCounter;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.counter.reset(new Counter());
  metrics_.push_back(std::move(m));
  return metrics_.back().counter.get();
}

Status MetricsRegistry::AddCounterFn(std::string name, std::string help,
                                     MetricLabels labels,
                                     std::function<uint64_t()> sample) {
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(CheckRegistration(name, labels, Kind::kCounterFn));
  Metric m;
  m.kind = Kind::kCounterFn;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.sample_u64 = std::move(sample);
  metrics_.push_back(std::move(m));
  return Status::OK();
}

Status MetricsRegistry::AddGaugeFn(std::string name, std::string help,
                                   MetricLabels labels,
                                   std::function<double()> sample) {
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(CheckRegistration(name, labels, Kind::kGaugeFn));
  Metric m;
  m.kind = Kind::kGaugeFn;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.sample_f64 = std::move(sample);
  metrics_.push_back(std::move(m));
  return Status::OK();
}

Status MetricsRegistry::AddSummaryFn(std::string name, std::string help,
                                     MetricLabels labels,
                                     std::function<MetricSummary()> sample) {
  std::lock_guard<std::mutex> lk(mu_);
  PC_RETURN_IF_ERROR(CheckRegistration(name, labels, Kind::kSummaryFn));
  Metric m;
  m.kind = Kind::kSummaryFn;
  m.name = std::move(name);
  m.help = std::move(help);
  m.labels = std::move(labels);
  m.summary = std::move(sample);
  metrics_.push_back(std::move(m));
  return Status::OK();
}

size_t MetricsRegistry::num_series() const {
  std::lock_guard<std::mutex> lk(mu_);
  return metrics_.size();
}

void MetricsRegistry::WritePrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  // Families (same name) must be exported contiguously with one HELP/TYPE
  // header; walk names in first-registration order.
  std::unordered_map<std::string, size_t> first_index;
  for (size_t i = 0; i < metrics_.size(); ++i) {
    first_index.emplace(metrics_[i].name, i);
  }
  std::vector<const Metric*> order;
  order.reserve(metrics_.size());
  for (const Metric& m : metrics_) order.push_back(&m);
  std::stable_sort(order.begin(), order.end(),
                   [&first_index](const Metric* a, const Metric* b) {
                     return first_index[a->name] < first_index[b->name];
                   });
  const std::string* prev_name = nullptr;
  for (const Metric* m : order) {
    if (prev_name == nullptr || *prev_name != m->name) {
      *out += "# HELP " + m->name + " ";
      // HELP text: escape backslash and newline per the exposition format.
      for (char c : m->help) {
        if (c == '\\') {
          *out += "\\\\";
        } else if (c == '\n') {
          *out += "\\n";
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\n');
      *out += "# TYPE " + m->name + " ";
      switch (m->kind) {
        case Kind::kCounter:
        case Kind::kCounterFn:
          *out += "counter\n";
          break;
        case Kind::kGaugeFn:
          *out += "gauge\n";
          break;
        case Kind::kSummaryFn:
          *out += "summary\n";
          break;
      }
      prev_name = &m->name;
    }
    switch (m->kind) {
      case Kind::kCounter:
        AppendUintSample(out, m->name, LabelBlock(m->labels),
                         m->counter->value());
        break;
      case Kind::kCounterFn:
        AppendUintSample(out, m->name, LabelBlock(m->labels), m->sample_u64());
        break;
      case Kind::kGaugeFn:
        AppendDoubleSample(out, m->name, LabelBlock(m->labels),
                           m->sample_f64());
        break;
      case Kind::kSummaryFn: {
        const MetricSummary s = m->summary();
        AppendUintSample(out, m->name,
                         LabelBlock(m->labels, {{"quantile", "0.5"}}), s.p50);
        AppendUintSample(out, m->name,
                         LabelBlock(m->labels, {{"quantile", "0.95"}}), s.p95);
        AppendUintSample(out, m->name,
                         LabelBlock(m->labels, {{"quantile", "0.99"}}), s.p99);
        AppendUintSample(out, m->name + "_sum", LabelBlock(m->labels), s.sum);
        AppendUintSample(out, m->name + "_count", LabelBlock(m->labels),
                         s.count);
        break;
      }
    }
  }
}

void MetricsRegistry::WriteJson(std::string* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter w(out);
  w.BeginObject();
  w.Key("metrics").BeginArray();
  for (const Metric& m : metrics_) {
    w.BeginObject();
    w.Key("name").Str(m.name);
    w.Key("help").Str(m.help);
    switch (m.kind) {
      case Kind::kCounter:
      case Kind::kCounterFn:
        w.Key("type").Str("counter");
        break;
      case Kind::kGaugeFn:
        w.Key("type").Str("gauge");
        break;
      case Kind::kSummaryFn:
        w.Key("type").Str("summary");
        break;
    }
    w.Key("labels").BeginObject();
    for (const auto& [k, v] : m.labels) w.Key(k).Str(v);
    w.EndObject();
    switch (m.kind) {
      case Kind::kCounter:
        w.Key("value").Uint(m.counter->value());
        break;
      case Kind::kCounterFn:
        w.Key("value").Uint(m.sample_u64());
        break;
      case Kind::kGaugeFn:
        w.Key("value").Double(m.sample_f64());
        break;
      case Kind::kSummaryFn: {
        const MetricSummary s = m.summary();
        w.Key("count").Uint(s.count);
        w.Key("sum").Uint(s.sum);
        w.Key("max").Uint(s.max);
        w.Key("p50").Uint(s.p50);
        w.Key("p95").Uint(s.p95);
        w.Key("p99").Uint(s.p99);
        break;
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

// --- Adapters --------------------------------------------------------------

Status RegisterIoStatsMetrics(MetricsRegistry* reg,
                              const std::string& device_label,
                              std::function<IoStats()> sample) {
  const MetricLabels labels = {{"device", device_label}};
  struct Field {
    const char* name;
    const char* help;
    uint64_t IoStats::*member;
  };
  static constexpr Field kFields[] = {
      {"pathcache_io_reads_total", "Pages read (the paper's counted I/O).",
       &IoStats::reads},
      {"pathcache_io_writes_total", "Pages written.", &IoStats::writes},
      {"pathcache_io_allocs_total", "Pages allocated.", &IoStats::allocs},
      {"pathcache_io_frees_total", "Pages freed.", &IoStats::frees},
      {"pathcache_io_batch_reads_total",
       "ReadBatch invocations (>= 1 page each; reads counts the pages).",
       &IoStats::batch_reads},
  };
  for (const Field& f : kFields) {
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        f.name, f.help, labels,
        [sample, member = f.member] { return sample().*member; }));
  }
  return Status::OK();
}

Status RegisterQueryStatsMetrics(MetricsRegistry* reg, MetricLabels labels,
                                 std::function<QueryStats()> sample) {
  struct Role {
    const char* label;
    uint64_t QueryStats::*member;
  };
  static constexpr Role kRoles[] = {
      {"navigation", &QueryStats::navigation},
      {"cache", &QueryStats::cache},
      {"corner", &QueryStats::corner},
      {"ancestor", &QueryStats::ancestor},
      {"sibling", &QueryStats::sibling},
      {"descendant", &QueryStats::descendant},
      {"buffer", &QueryStats::buffer},
  };
  for (const Role& r : kRoles) {
    MetricLabels l = labels;
    l.emplace_back("role", r.label);
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        "pathcache_query_block_reads_total",
        "Per-query block reads by structural role (paper Figure 4).",
        std::move(l), [sample, member = r.member] { return sample().*member; }));
  }
  static constexpr Role kClasses[] = {
      {"useful", &QueryStats::useful},
      {"wasteful", &QueryStats::wasteful},
  };
  for (const Role& r : kClasses) {
    MetricLabels l = labels;
    l.emplace_back("class", r.label);
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        "pathcache_query_payoff_reads_total",
        "Block reads classified by payoff: useful (full block of qualifying "
        "records) vs wasteful.",
        std::move(l), [sample, member = r.member] { return sample().*member; }));
  }
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_query_records_reported_total", "Records reported to callers.",
      std::move(labels),
      [sample] { return sample().records_reported; }));
  return Status::OK();
}

Status RegisterSharedBufferPoolMetrics(MetricsRegistry* reg,
                                       const std::string& pool_label,
                                       const SharedBufferPool* pool) {
  const MetricLabels labels = {{"pool", pool_label}};
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_pool_hits_total", "Buffer-pool cache hits.", labels,
      [pool] { return pool->hits(); }));
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_pool_misses_total", "Buffer-pool cache misses.", labels,
      [pool] { return pool->misses(); }));
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_pool_evictions_total",
      "Frames evicted by the capacity scan.", labels,
      [pool] { return pool->evictions(); }));
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_pool_cached_pages", "Frames currently cached.", labels,
      [pool] { return static_cast<double>(pool->cached_pages()); }));
  PC_RETURN_IF_ERROR(reg->AddGaugeFn(
      "pathcache_pool_pinned_pages", "Frames currently pinned.", labels,
      [pool] { return static_cast<double>(pool->pinned_pages()); }));
  return RegisterIoStatsMetrics(reg, pool_label,
                                [pool] { return pool->StatsSnapshot(); });
}

Status RegisterChecksumMetrics(MetricsRegistry* reg,
                               const std::string& device_label,
                               const ChecksumPageDevice* dev) {
  const MetricLabels labels = {{"device", device_label}};
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_checksum_pages_verified_total",
      "Pages whose CRC32C trailer verified.", labels,
      [dev] { return dev->pages_verified(); }));
  return reg->AddCounterFn(
      "pathcache_checksum_failures_total",
      "Pages rejected as Corruption by trailer verification.", labels,
      [dev] { return dev->checksum_failures(); });
}

Status RegisterRetryMetrics(MetricsRegistry* reg,
                            const std::string& device_label,
                            const RetryPageDevice* dev) {
  const MetricLabels labels = {{"device", device_label}};
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_retry_retries_total",
      "Re-issued tries beyond each operation's first.", labels,
      [dev] { return dev->retries(); }));
  PC_RETURN_IF_ERROR(reg->AddCounterFn(
      "pathcache_retry_recovered_total",
      "Operations that succeeded after at least one retry.", labels,
      [dev] { return dev->recovered(); }));
  return reg->AddCounterFn(
      "pathcache_retry_exhausted_total",
      "Operations that failed every allowed try.", labels,
      [dev] { return dev->exhausted(); });
}

Status RegisterFaultMetrics(MetricsRegistry* reg,
                            const std::string& device_label,
                            const FaultPageDevice* dev) {
  const MetricLabels labels = {{"device", device_label}};
  struct Field {
    const char* name;
    const char* help;
    uint64_t FaultStats::*member;
  };
  static constexpr Field kFields[] = {
      {"pathcache_fault_read_errors_total", "Injected read IOErrors.",
       &FaultStats::read_errors},
      {"pathcache_fault_write_errors_total", "Injected write IOErrors.",
       &FaultStats::write_errors},
      {"pathcache_fault_bit_flips_total", "Injected bit flips.",
       &FaultStats::bit_flips},
      {"pathcache_fault_torn_writes_total", "Injected torn writes.",
       &FaultStats::torn_writes},
      {"pathcache_fault_dropped_writes_total",
       "Writes silently dropped past the crash point.",
       &FaultStats::dropped_writes},
  };
  for (const Field& f : kFields) {
    PC_RETURN_IF_ERROR(reg->AddCounterFn(
        f.name, f.help, labels,
        [dev, member = f.member] { return dev->fault_stats().*member; }));
  }
  return Status::OK();
}

}  // namespace pathcache
