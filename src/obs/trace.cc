#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "util/json_writer.h"

namespace pathcache {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(std::bit_ceil(std::max<size_t>(2, capacity))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]),
      origin_ns_(SteadyNowNanos()) {}

uint64_t Tracer::NowMicros() const {
  return (SteadyNowNanos() - origin_ns_) / 1000;
}

uint32_t Tracer::ThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void Tracer::Record(char phase, const char* name, uint64_t arg) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];
  // Invalidate first so a concurrent Snapshot never pairs the new payload
  // with the old ticket.  (See the header note on the residual wraparound
  // race: two writers a full ring apart can still interleave.)
  s.seq.store(0, std::memory_order_release);
  s.ts.store(NowMicros(), std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.tid.store(ThreadOrdinal(), std::memory_order_relaxed);
  s.phase.store(phase, std::memory_order_relaxed);
  s.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<TraceEvent> events;
  events.reserve(end - begin);
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& s = slots_[ticket & mask_];
    if (s.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    TraceEvent e;
    e.ts_micros = s.ts.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    e.name = s.name.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    e.phase = s.phase.load(std::memory_order_relaxed);
    // A writer that claimed this slot mid-copy zeroes seq first; reject the
    // slot if that happened while we were reading the payload.
    if (s.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    if (e.name == nullptr || e.phase == 0) continue;
    events.push_back(e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_micros < b.ts_micros;
                   });
  return events;
}

void Tracer::Reset() {
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
    slots_[i].name.store(nullptr, std::memory_order_relaxed);
    slots_[i].phase.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
}

void Tracer::WriteChromeTrace(std::string* out) const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w(out);
  w.BeginObject();
  w.Key("displayTimeUnit").Str("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name").Str(e.name);
    switch (e.phase) {
      case 'B':
        w.Key("ph").Str("B");
        break;
      case 'E':
        w.Key("ph").Str("E");
        break;
      default:
        // Chrome instant events need a scope; thread scope matches our tid.
        w.Key("ph").Str("i");
        w.Key("s").Str("t");
    }
    w.Key("ts").Uint(e.ts_micros);
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(e.tid);
    w.Key("args").BeginObject().Key("arg").Uint(e.arg).EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

Status Tracer::WriteChromeTrace(std::FILE* out) const {
  std::string doc;
  WriteChromeTrace(&doc);
  doc.push_back('\n');
  if (std::fwrite(doc.data(), 1, doc.size(), out) != doc.size()) {
    return Status::IoError("short write dumping Chrome trace");
  }
  return Status::OK();
}

}  // namespace pathcache
