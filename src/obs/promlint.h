// PrometheusLint: a strict validator for the Prometheus text exposition
// format, shared by the obs unit tests and the `promlint` CLI the CI
// bench-smoke job runs over the exported metrics.
//
// Checked, line by line:
//   * `# HELP <name> <text>` / `# TYPE <name> <type>` headers: valid metric
//     name, known type, TYPE before any sample of that family, no duplicate
//     HELP/TYPE per family; other `#` lines pass as plain comments;
//   * samples `name[{labels}] value [timestamp]`: valid metric and label
//     names, properly quoted and escaped label values, a parseable float
//     value (Inf/NaN included) and optional integer timestamp;
//   * no exact duplicate series (same name and label block);
//   * summary/histogram child series (`_sum`, `_count`, `_bucket`,
//     quantile/le labels) are attributed to their parent family's TYPE.

#ifndef PATHCACHE_OBS_PROMLINT_H_
#define PATHCACHE_OBS_PROMLINT_H_

#include <string_view>

#include "util/status.h"

namespace pathcache {

/// Returns OK when `text` is valid exposition format; otherwise
/// InvalidArgument naming the first offending line (1-based) and problem.
Status PrometheusLint(std::string_view text);

}  // namespace pathcache

#endif  // PATHCACHE_OBS_PROMLINT_H_
