// TracingPageDevice: a forwarding decorator that records one tracer span
// per device operation (io.read / io.read_batch / io.write / io.pin /
// io.alloc / io.free), with the page id (or batch size) as the span arg.
//
// Sits between a worker's CountingPageDevice and the shared pool in the
// serving stack, so a query's trace shows every page it touched nested
// under its serve.query span.  With a null or disabled tracer every call
// is a plain forward plus one branch — cheap enough to leave compiled in.
//
// Stats are the inner device's (this layer counts nothing itself), so
// inserting it never changes any counted-I/O assertion.

#ifndef PATHCACHE_OBS_TRACING_PAGE_DEVICE_H_
#define PATHCACHE_OBS_TRACING_PAGE_DEVICE_H_

#include "io/page_device.h"
#include "obs/trace.h"

namespace pathcache {

class TracingPageDevice final : public PageDevice {
 public:
  /// Does not own `inner` or `tracer`; `tracer` may be null (pass-through).
  TracingPageDevice(PageDevice* inner, Tracer* tracer)
      : inner_(inner), tracer_(tracer) {}

  uint32_t page_size() const override { return inner_->page_size(); }

  Result<PageId> Allocate() override {
    if (!Tracing()) return inner_->Allocate();
    TraceSpan span(tracer_, "io.alloc");
    return inner_->Allocate();
  }

  Status Free(PageId id) override {
    if (!Tracing()) return inner_->Free(id);
    TraceSpan span(tracer_, "io.free", id);
    return inner_->Free(id);
  }

  Status Read(PageId id, std::byte* buf) override {
    if (!Tracing()) return inner_->Read(id, buf);
    TraceSpan span(tracer_, "io.read", id);
    return inner_->Read(id, buf);
  }

  Status ReadBatch(std::span<const PageId> ids, std::byte* bufs) override {
    if (!Tracing()) return inner_->ReadBatch(ids, bufs);
    TraceSpan span(tracer_, "io.read_batch", ids.size());
    return inner_->ReadBatch(ids, bufs);
  }

  Status Write(PageId id, const std::byte* buf) override {
    if (!Tracing()) return inner_->Write(id, buf);
    TraceSpan span(tracer_, "io.write", id);
    return inner_->Write(id, buf);
  }

  Result<const std::byte*> Pin(PageId id) override {
    if (!Tracing()) return inner_->Pin(id);
    TraceSpan span(tracer_, "io.pin", id);
    return inner_->Pin(id);
  }

  void Unpin(PageId id) override { inner_->Unpin(id); }

  Status Sync() override {
    if (!Tracing()) return inner_->Sync();
    TraceSpan span(tracer_, "io.sync");
    return inner_->Sync();
  }

  Status ListLivePages(std::vector<PageId>* out) override {
    return inner_->ListLivePages(out);
  }

  const IoStats& stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }
  uint64_t live_pages() const override { return inner_->live_pages(); }

 private:
  bool Tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  PageDevice* inner_;
  Tracer* tracer_;
};

}  // namespace pathcache

#endif  // PATHCACHE_OBS_TRACING_PAGE_DEVICE_H_
