// Microbenchmark for the in-page search kernels (E19's per-page half).
//
// For every dispatch tier the CPU offers, times each kernel family against
// the code it replaced — std::lower_bound for the sorted-bound family, the
// naive early-exit loop for the first-match family, slice-by-8 for CRC32C —
// at the array sizes the structures actually probe: B+-tree nodes and
// block-list directories hold tens to a few hundred 8/16-byte keys, record
// pages 128-170 records.
//
// `--json out.json` dumps every row machine-readably (CI uploads it);
// `--check-speedup X` exits nonzero unless the best vectorized tier beats
// the scalar-loop baseline by at least X at a directory-typical size, for
// both the bound family and the scan family — the regression gate for this
// optimization.  The run also hard-fails if the scalar fallback tier was
// never measured, so the gate can never silently pass while the portable
// path rots.
//
// Not a google-benchmark binary for the same reason as bench_throughput: a
// tier x kernel x size sweep over shared fixtures with a pass/fail gate is
// clearer as a plain main().

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "io/crc32c.h"
#include "kernels/dispatch.h"
#include "kernels/search.h"
#include "util/json_writer.h"

namespace pathcache {
namespace {

using kernels::Tier;

volatile uint64_t g_sink = 0;  // defeats dead-code elimination

struct Options {
  uint64_t reps = 200;        // passes over the query set per measurement
  double check_speedup = 0.0; // 0 = report only, no gate
  // Gate for the packed-KV family (page-format v3).  Separate and lower by
  // design: with L1-resident arrays the packed layout's cache-line economy
  // is invisible, so the microbench can only pin "the packed probe beats
  // the interleaved-record search it replaced" — the layout's real margin
  // is end-to-end (bench_throughput E20, whole pages, ~10%+ QPS).
  double check_packed_speedup = 1.05;
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  auto value_of = [&](int* i, const char* flag) -> const char* {
    const size_t len = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, len) != 0) return nullptr;
    if (argv[*i][len] == '=') return argv[*i] + len + 1;
    if (argv[*i][len] == '\0' && *i + 1 < argc) return argv[++*i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* rv = value_of(&i, "--reps")) {
      o.reps = std::strtoull(rv, nullptr, 10);
    } else if (const char* sv = value_of(&i, "--check-speedup")) {
      o.check_speedup = std::strtod(sv, nullptr);
    } else if (const char* pv2 = value_of(&i, "--check-packed-speedup")) {
      o.check_packed_speedup = std::strtod(pv2, nullptr);
    } else if (const char* jv = value_of(&i, "--json")) {
      o.json_path = jv;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--check-speedup X] "
                   "[--check-packed-speedup X] [--json out]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  const Tier best = kernels::DetectedTier();
  if (best == Tier::kNeon) tiers.push_back(Tier::kNeon);
  if (best == Tier::kSse2 || best == Tier::kAvx2) tiers.push_back(Tier::kSse2);
  if (best == Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  return tiers;
}

// Best-of-3 ns/op for `fn` run `reps` times over `per_pass` operations.
template <typename Fn>
double TimeNsPerOp(uint64_t reps, size_t per_pass, const Fn& fn) {
  double best = 1e300;
  for (int round = 0; round < 3; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < reps; ++r) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count();
    best = std::min(best, ns / (static_cast<double>(reps) * per_pass));
  }
  return best;
}

struct Row {
  const char* kernel;
  size_t n;
  const char* tier;   // "baseline" = the replaced scalar loop
  double ns_per_op;
  double speedup;     // vs the baseline row of the same (kernel, n)
};

const size_t kSizes[] = {16, 32, 64, 128, 256, 512};

// Enough distinct probes that the branch predictor cannot memorize the
// branchy baseline's per-query decision paths across reps — with a few
// hundred repeated queries std::lower_bound measures the predictor's
// capacity, not the search (real workloads probe with unbounded distinct
// keys, so mispredict-free repeats are the unrealistic case).
constexpr size_t kQueries = 4096;

// ---- Sorted-bound family: kernels::LowerBoundI64 vs std::lower_bound ----
void BenchLowerBound(const Options& opt, std::vector<Row>* rows) {
  std::mt19937_64 rng(42);
  for (size_t n : kSizes) {
    std::vector<int64_t> a(n);
    for (auto& v : a) v = static_cast<int64_t>(rng() % (4 * n));
    std::sort(a.begin(), a.end());
    std::vector<int64_t> queries(kQueries);
    for (auto& q : queries) q = static_cast<int64_t>(rng() % (4 * n + 2)) - 1;

    const double base_ns = TimeNsPerOp(opt.reps, kQueries, [&] {
      uint64_t acc = 0;
      for (int64_t q : queries) {
        acc += std::lower_bound(a.begin(), a.end(), q) - a.begin();
      }
      g_sink += acc;
    });
    rows->push_back({"lower_bound_i64", n, "baseline", base_ns, 1.0});
    for (Tier t : AvailableTiers()) {
      kernels::ForceTier(t);
      const double ns = TimeNsPerOp(opt.reps, kQueries, [&] {
        uint64_t acc = 0;
        for (int64_t q : queries) {
          acc += kernels::LowerBoundI64(a.data(), n, q);
        }
        g_sink += acc;
      });
      rows->push_back(
          {"lower_bound_i64", n, kernels::TierName(t), ns, base_ns / ns});
    }
    kernels::ResetTier();
  }
}

// ---- First-match family: kernels::FindFirstBelow vs the naive loop, over
// a plain int64 array (stride 8, the directory-probe shape).  Keys are
// arranged so the crossing lands in the last block: the page-scan case that
// dominates query time is "scan (almost) the whole page, then stop". ----
void BenchFindFirst(const Options& opt, std::vector<Row>* rows) {
  std::mt19937_64 rng(43);
  for (size_t n : kSizes) {
    std::vector<int64_t> a(n);
    for (auto& v : a) v = 1000 + static_cast<int64_t>(rng() % 1000);
    if (n > 0) a[n - 1] = 0;  // first (and only) key below the bound
    const int64_t bound = 500;

    const double base_ns = TimeNsPerOp(opt.reps, kQueries, [&] {
      uint64_t acc = 0;
      for (size_t rep = 0; rep < kQueries; ++rep) {
        size_t hit = n;
        for (size_t i = 0; i < n; ++i) {
          if (a[i] < bound) {
            hit = i;
            break;
          }
        }
        acc += hit;
      }
      g_sink += acc;
    });
    rows->push_back({"find_first_below", n, "baseline", base_ns, 1.0});
    for (Tier t : AvailableTiers()) {
      kernels::ForceTier(t);
      const double ns = TimeNsPerOp(opt.reps, kQueries, [&] {
        uint64_t acc = 0;
        for (size_t rep = 0; rep < kQueries; ++rep) {
          acc += kernels::FindFirstBelow(a.data(), sizeof(int64_t), n, bound);
        }
        g_sink += acc;
      });
      rows->push_back(
          {"find_first_below", n, kernels::TierName(t), ns, base_ns / ns});
    }
    kernels::ResetTier();
  }
}

// ---- 16-byte KV bounds: kernels::LowerBoundKV vs std::lower_bound with
// the lexicographic comparator (the B+-tree leaf-search shape). ----
struct KV {
  int64_t key;
  uint64_t value;
};

void BenchLowerBoundKV(const Options& opt, std::vector<Row>* rows) {
  std::mt19937_64 rng(44);
  for (size_t n : kSizes) {
    std::vector<KV> a(n);
    for (auto& r : a) {
      r.key = static_cast<int64_t>(rng() % (4 * n));
      r.value = rng() % 8;
    }
    std::sort(a.begin(), a.end(), [](const KV& x, const KV& y) {
      if (x.key != y.key) return x.key < y.key;
      return x.value < y.value;
    });
    std::vector<KV> queries(kQueries);
    for (auto& q : queries) {
      q.key = static_cast<int64_t>(rng() % (4 * n + 2)) - 1;
      q.value = rng() % 8;
    }

    const double base_ns = TimeNsPerOp(opt.reps, kQueries, [&] {
      uint64_t acc = 0;
      for (const KV& q : queries) {
        acc += std::lower_bound(a.begin(), a.end(), q,
                                [](const KV& x, const KV& y) {
                                  if (x.key != y.key) return x.key < y.key;
                                  return x.value < y.value;
                                }) -
               a.begin();
      }
      g_sink += acc;
    });
    rows->push_back({"lower_bound_kv", n, "baseline", base_ns, 1.0});
    for (Tier t : AvailableTiers()) {
      kernels::ForceTier(t);
      const double ns = TimeNsPerOp(opt.reps, kQueries, [&] {
        uint64_t acc = 0;
        for (const KV& q : queries) {
          acc += kernels::LowerBoundKV(a.data(), n, q.key, q.value);
        }
        g_sink += acc;
      });
      rows->push_back(
          {"lower_bound_kv", n, kernels::TierName(t), ns, base_ns / ns});
    }
    kernels::ResetTier();
  }
}

// ---- Packed KV bounds: kernels::LowerBoundKVPacked over the v3 split
// keys[]/payloads[] page layout, against the interleaved-record search it
// replaced (std::lower_bound over {key, value} structs with the
// lexicographic comparator — one cache line per record probed).  This is
// the per-page half of the v3 codec claim: same answers, fewer lines. ----
void BenchLowerBoundKVPacked(const Options& opt, std::vector<Row>* rows) {
  std::mt19937_64 rng(46);
  for (size_t n : kSizes) {
    std::vector<KV> a(n);
    for (auto& r : a) {
      r.key = static_cast<int64_t>(rng() % (4 * n));
      r.value = rng() % 8;
    }
    std::sort(a.begin(), a.end(), [](const KV& x, const KV& y) {
      if (x.key != y.key) return x.key < y.key;
      return x.value < y.value;
    });
    std::vector<int64_t> keys(n);
    std::vector<uint64_t> vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = a[i].key;
      vals[i] = a[i].value;
    }
    std::vector<KV> queries(kQueries);
    for (auto& q : queries) {
      q.key = static_cast<int64_t>(rng() % (4 * n + 2)) - 1;
      q.value = rng() % 8;
    }

    const double base_ns = TimeNsPerOp(opt.reps, kQueries, [&] {
      uint64_t acc = 0;
      for (const KV& q : queries) {
        acc += std::lower_bound(a.begin(), a.end(), q,
                                [](const KV& x, const KV& y) {
                                  if (x.key != y.key) return x.key < y.key;
                                  return x.value < y.value;
                                }) -
               a.begin();
      }
      g_sink += acc;
    });
    rows->push_back({"lower_bound_kv_packed", n, "baseline", base_ns, 1.0});
    for (Tier t : AvailableTiers()) {
      kernels::ForceTier(t);
      const double ns = TimeNsPerOp(opt.reps, kQueries, [&] {
        uint64_t acc = 0;
        for (const KV& q : queries) {
          acc += kernels::LowerBoundKVPacked(keys.data(), vals.data(), n,
                                             q.key, q.value);
        }
        g_sink += acc;
      });
      rows->push_back({"lower_bound_kv_packed", n, kernels::TierName(t), ns,
                       base_ns / ns});
    }
    kernels::ResetTier();
  }
}

struct CrcResult {
  bool hw_active = false;
  double sw_gbps = 0.0;
  double hw_gbps = 0.0;
};

// ---- CRC32C: slice-by-8 software vs the CRC instruction, 4 KiB pages ----
CrcResult BenchCrc(const Options& opt) {
  CrcResult res;
  res.hw_active = kernels::HwCrc32cActive();
  std::vector<unsigned char> page(4096);
  std::mt19937_64 rng(45);
  for (auto& b : page) b = static_cast<unsigned char>(rng());
  auto gbps = [&](double ns_per_page) {
    return page.size() / ns_per_page;  // bytes/ns == GB/s
  };
  kernels::ForceTier(Tier::kScalar);  // HwCrc32cActive() false -> slice-by-8
  res.sw_gbps = gbps(TimeNsPerOp(opt.reps / 4 + 1, 1, [&] {
    g_sink += Crc32c(page.data(), page.size());
  }));
  kernels::ResetTier();
  if (res.hw_active) {
    res.hw_gbps = gbps(TimeNsPerOp(opt.reps / 4 + 1, 1, [&] {
      g_sink += Crc32c(page.data(), page.size());
    }));
  }
  return res;
}

// The gate: at directory-typical sizes (n in [min_n, 512]), the best
// vectorized tier must beat the replaced loop by `need`.  Best-over-sizes
// because each family has a sweet spot — bounds win biggest where the
// vectorized count covers the whole array (tail-key directories hold tens
// of keys), scans win biggest where most of a page is scanned.
bool CheckSpeedup(const std::vector<Row>& rows, double need,
                  const char* kernel, size_t min_n) {
  double best = 0.0;
  for (const Row& r : rows) {
    if (std::strcmp(r.kernel, kernel) != 0) continue;
    if (r.n < min_n) continue;
    if (std::strcmp(r.tier, "baseline") == 0 ||
        std::strcmp(r.tier, "scalar") == 0) {
      continue;  // only vectorized tiers count toward the gate
    }
    best = std::max(best, r.speedup);
  }
  std::printf("gate %-18s best vectorized speedup at n>=%zu: %.2fx "
              "(need %.2fx)\n",
              kernel, min_n, best, need);
  return best >= need;
}

void WriteJson(const Options& opt, const std::vector<Row>& rows,
               const CrcResult& crc) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL cannot open %s for writing\n",
                 opt.json_path.c_str());
    std::abort();
  }
  JsonWriter w(f);
  w.BeginObject();
  w.Key("bench").Str("bench_kernels");
  w.Key("detected_tier").Str(kernels::TierName(kernels::DetectedTier()));
  w.Key("rows").BeginArray();
  for (const Row& r : rows) {
    w.BeginObject();
    w.Key("kernel").Str(r.kernel);
    w.Key("n").Uint(r.n);
    w.Key("tier").Str(r.tier);
    w.Key("ns_per_op").Double(r.ns_per_op);
    w.Key("speedup_vs_baseline").Double(r.speedup);
    w.EndObject();
  }
  w.EndArray();
  w.Key("crc32c").BeginObject();
  w.Key("hw_active").Bool(crc.hw_active);
  w.Key("sw_gbps").Double(crc.sw_gbps);
  if (crc.hw_active) w.Key("hw_gbps").Double(crc.hw_gbps);
  w.EndObject();
  w.EndObject();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

int Main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);
  std::printf("detected tier: %s\n",
              kernels::TierName(kernels::DetectedTier()));

  std::vector<Row> rows;
  BenchLowerBound(opt, &rows);
  BenchLowerBoundKV(opt, &rows);
  BenchLowerBoundKVPacked(opt, &rows);
  BenchFindFirst(opt, &rows);

  for (const Row& r : rows) {
    std::printf("%-18s n=%4zu  %-8s  %7.2f ns/op  %5.2fx\n", r.kernel, r.n,
                r.tier, r.ns_per_op, r.speedup);
  }

  const CrcResult crc = BenchCrc(opt);
  std::printf("crc32c 4KiB: software %.2f GB/s", crc.sw_gbps);
  if (crc.hw_active) {
    std::printf("  hardware %.2f GB/s  (%.2fx)", crc.hw_gbps,
                crc.hw_gbps / crc.sw_gbps);
  }
  std::printf("\n");

  // The scalar fallback must always be in the measurement set — if dispatch
  // ever stopped offering it, the portable path would go untested.
  bool scalar_measured = false;
  for (const Row& r : rows) {
    if (std::strcmp(r.tier, "scalar") == 0) scalar_measured = true;
  }
  if (!scalar_measured) {
    std::fprintf(stderr, "FATAL scalar fallback tier was never measured\n");
    return 1;
  }

  if (!opt.json_path.empty()) WriteJson(opt, rows, crc);

  if (opt.check_speedup > 0.0) {
    if (kernels::DetectedTier() == Tier::kScalar) {
      // No vector unit: nothing to gate; correctness is the tests' job.
      std::printf("no vectorized tier on this CPU; speedup gate skipped\n");
      return 0;
    }
    const bool ok_bound =
        CheckSpeedup(rows, opt.check_speedup, "lower_bound_i64", 16);
    const bool ok_packed = CheckSpeedup(rows, opt.check_packed_speedup,
                                        "lower_bound_kv_packed", 16);
    const bool ok_scan =
        CheckSpeedup(rows, opt.check_speedup, "find_first_below", 32);
    if (!ok_bound || !ok_packed || !ok_scan) {
      std::fprintf(stderr, "FATAL kernel speedup gate failed\n");
      return 1;
    }
    std::printf("speedup gate passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace pathcache

int main(int argc, char** argv) { return pathcache::Main(argc, argv); }
