// Experiment E6 (Theorem 3.5): stabbing via the external interval tree —
// optimal queries at O((n/B) log B) space, contrasted with the external
// segment tree (same query bound, O((n/B) log n) space because every
// interval is replicated across O(log n) cover-lists).
//
// Expected shape: both cached trees answer in ~log_B n + t/B reads; the
// interval tree stores each interval O(1) times so its storage sits near
// 2n/B + caches, well under the segment tree's.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/ext_interval_tree.h"
#include "core/ext_segment_tree.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev_it;
  std::unique_ptr<MemPageDevice> dev_st;
  std::unique_ptr<ExtIntervalTree> itree;
  std::unique_ptr<ExtSegmentTree> stree;
  std::vector<Interval> ivs;
};

Env* GetEnv(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev_it = std::make_unique<MemPageDevice>(4096);
  env->dev_st = std::make_unique<MemPageDevice>(4096);
  IntervalGenOptions o;
  o.n = n;
  o.seed = 42;
  o.domain_max = 10'000'000;
  o.mean_len_frac = 0.005;
  env->ivs = GenIntervalsUniform(o);
  MakeEndpointsDistinct(&env->ivs);
  env->itree = std::make_unique<ExtIntervalTree>(env->dev_it.get());
  BenchCheck(env->itree->Build(env->ivs), "build interval tree");
  env->stree = std::make_unique<ExtSegmentTree>(env->dev_st.get());
  BenchCheck(env->stree->Build(env->ivs), "build segment tree");
  Env* raw = env.get();
  cache[n] = std::move(env);
  return raw;
}

void BM_IntervalTree_Stab(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Interval>(4096);
  Rng rng(29);
  const int64_t domain = static_cast<int64_t>(n) * 4;
  env->dev_it->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    std::vector<Interval> out;
    BenchCheck(env->itree->Stab(rng.UniformRange(0, domain), &out), "stab");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev_it->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["storage_blocks"] =
      static_cast<double>(env->dev_it->live_pages());
  state.counters["bound_nB_logB"] =
      static_cast<double>(CeilDiv(n, B) * (FloorLog2(B) + 1));
}

void BM_SegmentTree_Stab(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Interval>(4096);
  Rng rng(29);
  const int64_t domain = static_cast<int64_t>(n) * 4;
  env->dev_st->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    std::vector<Interval> out;
    BenchCheck(env->stree->Stab(rng.UniformRange(0, domain), &out), "stab");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev_st->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["storage_blocks"] =
      static_cast<double>(env->dev_st->live_pages());
  state.counters["bound_nB_logn"] =
      static_cast<double>(CeilDiv(n, B) * CeilLog2(n));
}

BENCHMARK(BM_IntervalTree_Stab)->Arg(20'000)->Arg(100'000)->Arg(400'000);
BENCHMARK(BM_SegmentTree_Stab)->Arg(20'000)->Arg(100'000)->Arg(400'000);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
