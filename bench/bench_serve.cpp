// E17 — Concurrent query serving: QPS vs worker threads, rejection rate vs
// offered load (src/serve/QueryEngine).
//
// Where E14 measured raw concurrent readers hammering structure handles
// directly, this harness measures the full serving path: bounded queue,
// admission control, batch dequeue with locality sort, per-request deadline
// checks and per-request IoStats isolation.  Two sweeps:
//
//   * Warm QPS vs worker count {1, 2, 4, 8} over a mixed 2-sided + stabbing
//     workload on a file-backed store behind a SharedBufferPool.  A
//     per-request result fingerprint is XOR-folded across the run and must
//     come out IDENTICAL for every worker count — the engine's concurrency
//     must be invisible in the bytes (the test suite asserts the same
//     property request-by-request; the bench cross-checks it at scale).
//   * Rejection rate vs offered load: bursts of B requests thrown at a
//     2-worker engine with a small queue, B sweeping past the queue
//     capacity.  Shows kOverloaded back-pressure doing its job; the
//     accepted requests all complete.
//
// `--json out.json` dumps everything machine-readably.  Speedup beyond 1
// worker requires as many hardware threads; single-core machines will show
// flat QPS (the CI smoke run only checks the harness executes).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "io/file_page_device.h"
#include "io/shared_buffer_pool.h"
#include "serve/query_engine.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

constexpr uint32_t kShards = 16;
const uint32_t kWorkerCounts[] = {1, 2, 4, 8};

struct Options {
  uint64_t points = 150'000;
  uint64_t intervals = 100'000;
  uint64_t queries = 4'000;  // per warm sweep run (half 2-sided, half stab)
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  auto value_of = [&](int* i, const char* flag) -> const char* {
    const size_t len = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, len) != 0) return nullptr;
    if (argv[*i][len] == '=') return argv[*i] + len + 1;
    if (argv[*i][len] == '\0' && *i + 1 < argc) return argv[++*i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* pv = value_of(&i, "--points")) {
      o.points = std::strtoull(pv, nullptr, 10);
    } else if (const char* iv = value_of(&i, "--intervals")) {
      o.intervals = std::strtoull(iv, nullptr, 10);
    } else if (const char* qv = value_of(&i, "--queries")) {
      o.queries = std::strtoull(qv, nullptr, 10);
    } else if (const char* jv = value_of(&i, "--json")) {
      o.json_path = jv;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--intervals N] [--queries N] "
                   "[--json out.json]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

struct Store {
  std::unique_ptr<FilePageDevice> dev;
  std::unique_ptr<SharedBufferPool> pool;
  PageId pst_manifest = kInvalidPageId;
  PageId seg_manifest = kInvalidPageId;
};

Store BuildStore(const Options& opt) {
  Store s;
  s.dev = BenchValue(FilePageDevice::Create("/tmp/pathcache_bench_serve.bin"),
                     "create device");
  s.pool = std::make_unique<SharedBufferPool>(s.dev.get(),
                                              /*capacity_pages=*/1 << 20,
                                              kShards);
  PointGenOptions po;
  po.n = opt.points;
  po.seed = 42;
  {
    ExternalPst pst(s.pool.get());
    BenchCheck(pst.Build(GenPointsUniform(po)), "build 2-sided");
    BenchCheck(pst.Cluster(), "cluster 2-sided");
    s.pst_manifest = BenchValue(pst.Save(), "save 2-sided");
  }
  IntervalGenOptions io;
  io.n = opt.intervals;
  io.seed = 43;
  {
    auto ivs = GenIntervalsUniform(io);
    MakeEndpointsDistinct(&ivs);
    ExtSegmentTree st(s.pool.get());
    BenchCheck(st.Build(ivs), "build segment tree");
    BenchCheck(st.Cluster(), "cluster segment tree");
    s.seg_manifest = BenchValue(st.Save(), "save segment tree");
  }
  return s;
}

struct PlannedQuery {
  uint32_t structure;
  ServeQuery query;
};

std::vector<PlannedQuery> MakePlan(uint64_t count, uint32_t pst_id,
                                   uint32_t seg_id) {
  std::vector<PlannedQuery> plan;
  plan.reserve(count);
  Rng rng(7);
  for (uint64_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      plan.push_back({pst_id, ServeQuery::TwoSided(TwoSidedQuery{
                                  rng.UniformRange(500'000'000, 1'000'000'000),
                                  rng.UniformRange(800'000'000,
                                                   1'000'000'000)})});
    } else {
      plan.push_back(
          {seg_id, ServeQuery::Stab(rng.UniformRange(0, 1'000'000'000))});
    }
  }
  return plan;
}

// Order-insensitive fingerprint of one request's result, fold-combined with
// the request ordinal so every request contributes a distinct term.
uint64_t Fingerprint(size_t ordinal, const QueryResult& r) {
  uint64_t h = 0xcbf29ce484222325ULL ^ (ordinal * 0x100000001b3ULL);
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const Point& p : r.points) {
    mix(static_cast<uint64_t>(p.x));
    mix(static_cast<uint64_t>(p.y));
    mix(p.id);
  }
  for (const Interval& iv : r.intervals) {
    mix(static_cast<uint64_t>(iv.lo));
    mix(static_cast<uint64_t>(iv.hi));
    mix(iv.id);
  }
  return h;
}

struct WarmRow {
  uint32_t workers = 0;
  double qps = 0.0;
  double speedup = 0.0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t reads = 0;
  uint64_t fingerprint = 0;
};

WarmRow RunWarm(Store& s, const std::vector<PlannedQuery>& plan,
                uint32_t workers) {
  QueryEngineOptions eopts;
  eopts.num_workers = workers;
  eopts.queue_capacity = plan.size() + 1;  // admission never in the way here
  eopts.batch_size = 8;
  QueryEngine engine(s.pool.get(), eopts);
  const uint32_t pst_id =
      BenchValue(engine.AddStructure(s.pst_manifest), "register 2-sided");
  const uint32_t seg_id =
      BenchValue(engine.AddStructure(s.seg_manifest), "register stabbing");
  (void)pst_id;
  (void)seg_id;
  BenchCheck(engine.Start(), "start engine");

  std::atomic<uint64_t> fp{0};
  auto submit_all = [&](bool fingerprinted) {
    for (size_t i = 0; i < plan.size(); ++i) {
      Status st = engine.Submit(
          plan[i].structure, plan[i].query,
          [i, fingerprinted, &fp](QueryResult r) {
            BenchCheck(r.status, "serve query");
            if (fingerprinted) {
              fp.fetch_xor(Fingerprint(i, r), std::memory_order_relaxed);
            }
          });
      BenchCheck(st, "submit");
    }
    engine.Drain();
  };

  submit_all(false);  // warm the pool; results discarded

  const auto start = std::chrono::steady_clock::now();
  submit_all(true);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const ServeStats stats = engine.stats();
  WarmRow row;
  row.workers = workers;
  row.qps = static_cast<double>(plan.size()) / secs;
  row.p50 = stats.latency.p50;
  row.p95 = stats.latency.p95;
  row.p99 = stats.latency.p99;
  row.reads = stats.io.reads;
  row.fingerprint = fp.load();
  engine.Stop();
  return row;
}

struct LoadRow {
  uint64_t burst = 0;       // requests thrown at the queue back-to-back
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  double rejection_rate = 0.0;
};

// Offered-load sweep: a 2-worker engine with a deliberately small queue;
// each burst is submitted as fast as the loop can go, then drained.
std::vector<LoadRow> RunLoadSweep(Store& s,
                                  const std::vector<PlannedQuery>& plan,
                                  size_t queue_capacity) {
  QueryEngineOptions eopts;
  eopts.num_workers = 2;
  eopts.queue_capacity = queue_capacity;
  eopts.batch_size = 4;
  QueryEngine engine(s.pool.get(), eopts);
  BenchCheck(engine.AddStructure(s.pst_manifest).ToStatus(), "register 2-sided");
  BenchCheck(engine.AddStructure(s.seg_manifest).ToStatus(), "register stab");
  BenchCheck(engine.Start(), "start engine");

  std::vector<LoadRow> rows;
  for (uint64_t burst :
       {queue_capacity / 2, queue_capacity, 2 * queue_capacity,
        4 * queue_capacity, 8 * queue_capacity}) {
    LoadRow row;
    row.burst = burst;
    std::atomic<uint64_t> done{0};
    for (uint64_t i = 0; i < burst; ++i) {
      const PlannedQuery& pq = plan[i % plan.size()];
      Status st = engine.Submit(pq.structure, pq.query,
                                [&done](QueryResult r) {
                                  BenchCheck(r.status, "load query");
                                  done.fetch_add(1);
                                });
      if (st.IsOverloaded()) {
        ++row.rejected;
      } else {
        BenchCheck(st, "load submit");
        ++row.accepted;
      }
    }
    engine.Drain();
    if (done.load() != row.accepted) {
      std::fprintf(stderr, "FATAL accepted %llu but completed %llu\n",
                   static_cast<unsigned long long>(row.accepted),
                   static_cast<unsigned long long>(done.load()));
      std::abort();
    }
    row.rejection_rate =
        burst == 0 ? 0.0
                   : static_cast<double>(row.rejected) /
                         static_cast<double>(burst);
    rows.push_back(row);
  }
  engine.Stop();
  return rows;
}

void WriteJson(const Options& opt, const std::vector<WarmRow>& warm,
               const std::vector<LoadRow>& load) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL cannot open %s for writing\n",
                 opt.json_path.c_str());
    std::abort();
  }
  JsonWriter w(f);
  w.BeginObject();
  w.Key("bench").Str("bench_serve");
  w.Key("points").Uint(opt.points);
  w.Key("intervals").Uint(opt.intervals);
  w.Key("queries").Uint(opt.queries);
  w.Key("warm_sweep").BeginArray();
  for (const WarmRow& r : warm) {
    w.BeginObject();
    w.Key("workers").Uint(r.workers);
    w.Key("qps").Double(r.qps);
    w.Key("speedup").Double(r.speedup);
    w.Key("latency_p50_us").Uint(r.p50);
    w.Key("latency_p95_us").Uint(r.p95);
    w.Key("latency_p99_us").Uint(r.p99);
    w.Key("pool_reads").Uint(r.reads);
    w.EndObject();
  }
  w.EndArray();
  w.Key("load_sweep").BeginArray();
  for (const LoadRow& r : load) {
    w.BeginObject();
    w.Key("burst").Uint(r.burst);
    w.Key("accepted").Uint(r.accepted);
    w.Key("rejected").Uint(r.rejected);
    w.Key("rejection_rate").Double(r.rejection_rate);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

int Main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);
  Store s = BuildStore(opt);

  // Probe structure ids once (identical registration order per engine).
  std::vector<PlannedQuery> plan = MakePlan(opt.queries, 0, 1);

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::vector<WarmRow> warm;
  double qps1 = 0.0;
  for (uint32_t workers : kWorkerCounts) {
    WarmRow row = RunWarm(s, plan, workers);
    if (workers == 1) qps1 = row.qps;
    row.speedup = qps1 == 0.0 ? 0.0 : row.qps / qps1;
    warm.push_back(row);
    std::printf(
        "warm workers=%u  qps=%9.0f  speedup=%.2fx  p50=%lluus  p95=%lluus  "
        "p99=%lluus  pool reads=%llu\n",
        row.workers, row.qps, row.speedup,
        static_cast<unsigned long long>(row.p50),
        static_cast<unsigned long long>(row.p95),
        static_cast<unsigned long long>(row.p99),
        static_cast<unsigned long long>(row.reads));
  }

  // The engine's concurrency must be invisible in the results: every worker
  // count folds the same per-request fingerprints.
  for (const WarmRow& r : warm) {
    if (r.fingerprint != warm[0].fingerprint) {
      std::fprintf(stderr,
                   "FATAL result fingerprint diverged at %u workers: "
                   "%016llx vs %016llx\n",
                   r.workers,
                   static_cast<unsigned long long>(r.fingerprint),
                   static_cast<unsigned long long>(warm[0].fingerprint));
      std::abort();
    }
  }
  std::printf("result fingerprints identical across worker counts "
              "(asserted)\n\n");

  const std::vector<LoadRow> load = RunLoadSweep(s, plan,
                                                 /*queue_capacity=*/64);
  for (const LoadRow& r : load) {
    std::printf(
        "load burst=%5llu  accepted=%5llu  rejected=%5llu  "
        "rejection_rate=%.3f\n",
        static_cast<unsigned long long>(r.burst),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.rejected), r.rejection_rate);
  }

  if (!opt.json_path.empty()) WriteJson(opt, warm, load);
  return 0;
}

}  // namespace
}  // namespace pathcache

int main(int argc, char** argv) { return pathcache::Main(argc, argv); }
