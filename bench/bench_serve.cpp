// E17 — Concurrent query serving: QPS vs worker threads, rejection rate vs
// offered load (src/serve/QueryEngine).
//
// Where E14 measured raw concurrent readers hammering structure handles
// directly, this harness measures the full serving path: bounded queue,
// admission control, batch dequeue with locality sort, per-request deadline
// checks and per-request IoStats isolation.  Two sweeps:
//
//   * Warm QPS vs worker count {1, 2, 4, 8} over a mixed 2-sided + stabbing
//     workload on a file-backed store behind a SharedBufferPool.  A
//     per-request result fingerprint is XOR-folded across the run and must
//     come out IDENTICAL for every worker count — the engine's concurrency
//     must be invisible in the bytes (the test suite asserts the same
//     property request-by-request; the bench cross-checks it at scale).
//   * Rejection rate vs offered load: bursts of B requests thrown at a
//     2-worker engine with a small queue, B sweeping past the queue
//     capacity.  Shows kOverloaded back-pressure doing its job; the
//     accepted requests all complete.
//
// E21 — Online updates (--update-mix / --check-dynamic-overhead): the same
// 2-sided data wrapped in a DynamicStore and served through the engine.
// Two measurements: read-only QPS through the dynamic read path (pin +
// merge with an empty overlay) vs the static engine — the "idle overhead"
// a deployment pays for keeping a structure updatable, gated in CI — and
// throughput under a mixed stream where a fraction of requests are durable
// update groups (WAL append + group-commit fsync each).
//
// E23 — Sharded serving (--shards N): the same 2-sided + stabbing data
// partitioned across N independent shard stacks (device + pool slice +
// engine each) behind a ShardRouter, replayed against an unsharded twin
// engine over identical data.  Three assertions ride along with the QPS
// comparison: the canonicalized result fingerprints must be IDENTICAL
// sharded vs unsharded, a saturating tenant with a small admission quota
// must see kOverloaded while the quiet tenant completes every request, and
// a persistent read fault injected under exactly one shard must surface as
// a typed per-shard error while the healthy shard still answers.
//
// `--json out.json` dumps everything machine-readably.  Speedup beyond 1
// worker requires as many hardware threads; single-core machines will show
// flat QPS (the CI smoke run only checks the harness executes).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "dynamic/dynamic_store.h"
#include "io/fault_page_device.h"
#include "io/file_page_device.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "kernels/dispatch.h"
#include "obs/metrics.h"
#include "obs/promlint.h"
#include "obs/trace.h"
#include "serve/query_engine.h"
#include "serve/serve_metrics.h"
#include "shard/shard_router.h"
#include "shard/sharded_store.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

constexpr uint32_t kShards = 16;
const uint32_t kWorkerCounts[] = {1, 2, 4, 8};

struct Options {
  uint64_t points = 150'000;
  uint64_t intervals = 100'000;
  uint64_t queries = 4'000;  // per warm sweep run (half 2-sided, half stab)
  // --zipf THETA: skew query popularity Zipf(theta) over the candidate
  // pool, so the warm sweep reports QPS and tail latency under the hot-key
  // concentration real serving traffic has.  0 keeps the uniform stream.
  double zipf_theta = 0.0;
  std::string json_path;
  // --obs: run the observability overhead comparison (E18) — best-of-5 warm
  // QPS through three configurations: no obs wired, obs wired with the
  // tracer in its default disabled state, and tracer enabled.
  bool obs = false;
  // Overhead gate in percent (0 disables): abort if the wired (tracer-off)
  // best-of-5 QPS regresses more than this vs the no-obs baseline.
  double check_overhead_pct = 0.0;
  std::string metrics_out;   // Prometheus text dump (lint-checked)
  std::string metrics_json;  // JSON metrics dump
  std::string trace_out;     // Chrome trace-event dump
  // --update-mix PCT: run E21's mixed stream with PCT percent of requests
  // being durable update groups (0 skips the mixed run).
  double update_mix = 0.0;
  // --check-dynamic-overhead PCT: run E21's idle-overhead comparison and
  // abort if the dynamic read path costs more than PCT percent QPS vs the
  // static engine on an identical read-only stream (0 = measure when E21
  // runs, never gate).
  double check_dynamic_overhead_pct = 0.0;
  // --shards N: run E23's sharded segment — sharded-vs-unsharded
  // fingerprint equality, per-tenant quota mix, and the single-shard
  // fault-injection partial-failure assertion (0 skips it).
  uint32_t shards = 0;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  auto value_of = [&](int* i, const char* flag) -> const char* {
    const size_t len = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, len) != 0) return nullptr;
    if (argv[*i][len] == '=') return argv[*i] + len + 1;
    if (argv[*i][len] == '\0' && *i + 1 < argc) return argv[++*i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* pv = value_of(&i, "--points")) {
      o.points = std::strtoull(pv, nullptr, 10);
    } else if (const char* iv = value_of(&i, "--intervals")) {
      o.intervals = std::strtoull(iv, nullptr, 10);
    } else if (const char* qv = value_of(&i, "--queries")) {
      o.queries = std::strtoull(qv, nullptr, 10);
    } else if (const char* zv = value_of(&i, "--zipf")) {
      o.zipf_theta = std::strtod(zv, nullptr);
    } else if (const char* jv = value_of(&i, "--json")) {
      o.json_path = jv;
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      o.obs = true;
    } else if (const char* ov = value_of(&i, "--check-overhead")) {
      o.check_overhead_pct = std::strtod(ov, nullptr);
      o.obs = true;
    } else if (const char* mv = value_of(&i, "--metrics-out")) {
      o.metrics_out = mv;
      o.obs = true;
    } else if (const char* mj = value_of(&i, "--metrics-json")) {
      o.metrics_json = mj;
      o.obs = true;
    } else if (const char* tv = value_of(&i, "--trace-out")) {
      o.trace_out = tv;
      o.obs = true;
    } else if (const char* uv = value_of(&i, "--update-mix")) {
      o.update_mix = std::strtod(uv, nullptr);
    } else if (const char* dv = value_of(&i, "--check-dynamic-overhead")) {
      o.check_dynamic_overhead_pct = std::strtod(dv, nullptr);
    } else if (const char* sv = value_of(&i, "--shards")) {
      o.shards = static_cast<uint32_t>(std::strtoul(sv, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--intervals N] [--queries N] "
                   "[--zipf THETA] "
                   "[--json out.json] [--obs] [--check-overhead PCT] "
                   "[--metrics-out m.prom] [--metrics-json m.json] "
                   "[--trace-out t.json] [--update-mix PCT] "
                   "[--check-dynamic-overhead PCT] [--shards N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

struct Store {
  std::unique_ptr<FilePageDevice> dev;
  std::unique_ptr<SharedBufferPool> pool;
  PageId pst_manifest = kInvalidPageId;
  PageId seg_manifest = kInvalidPageId;
};

Store BuildStore(const Options& opt) {
  Store s;
  s.dev = BenchValue(FilePageDevice::Create("/tmp/pathcache_bench_serve.bin"),
                     "create device");
  s.pool = std::make_unique<SharedBufferPool>(s.dev.get(),
                                              /*capacity_pages=*/1 << 20,
                                              kShards);
  PointGenOptions po;
  po.n = opt.points;
  po.seed = 42;
  {
    ExternalPst pst(s.pool.get());
    BenchCheck(pst.Build(GenPointsUniform(po)), "build 2-sided");
    BenchCheck(pst.Cluster(), "cluster 2-sided");
    s.pst_manifest = BenchValue(pst.Save(), "save 2-sided");
  }
  IntervalGenOptions io;
  io.n = opt.intervals;
  io.seed = 43;
  {
    auto ivs = GenIntervalsUniform(io);
    MakeEndpointsDistinct(&ivs);
    ExtSegmentTree st(s.pool.get());
    BenchCheck(st.Build(ivs), "build segment tree");
    BenchCheck(st.Cluster(), "cluster segment tree");
    s.seg_manifest = BenchValue(st.Save(), "save segment tree");
  }
  return s;
}

struct PlannedQuery {
  uint32_t structure;
  ServeQuery query;
};

std::vector<PlannedQuery> MakePlan(uint64_t count, uint32_t pst_id,
                                   uint32_t seg_id, double zipf_theta) {
  std::vector<PlannedQuery> plan;
  plan.reserve(count);
  Rng rng(7);
  for (uint64_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      plan.push_back({pst_id, ServeQuery::TwoSided(TwoSidedQuery{
                                  rng.UniformRange(500'000'000, 1'000'000'000),
                                  rng.UniformRange(800'000'000,
                                                   1'000'000'000)})});
    } else {
      plan.push_back(
          {seg_id, ServeQuery::Stab(rng.UniformRange(0, 1'000'000'000))});
    }
  }
  if (zipf_theta > 0.0) {
    // Skewed popularity: the submitted stream draws from the candidate plan
    // Zipf(theta)-distributed, within each structure's half so the 2-sided /
    // stab mix stays 50:50.  The fingerprint cross-check still holds — every
    // worker count replays the identical skewed stream.
    std::vector<PlannedQuery> candidates = std::move(plan);
    plan.clear();
    plan.reserve(count);
    const auto idx =
        ZipfIndexStream(candidates.size() / 2, count, zipf_theta, 8);
    for (uint64_t i = 0; i < count; ++i) {
      plan.push_back(candidates[2 * idx[i] + (i % 2)]);
    }
  }
  return plan;
}

// Order-insensitive fingerprint of one request's result, fold-combined with
// the request ordinal so every request contributes a distinct term.
uint64_t Fingerprint(size_t ordinal, const QueryResult& r) {
  uint64_t h = 0xcbf29ce484222325ULL ^ (ordinal * 0x100000001b3ULL);
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const Point& p : r.points) {
    mix(static_cast<uint64_t>(p.x));
    mix(static_cast<uint64_t>(p.y));
    mix(p.id);
  }
  for (const Interval& iv : r.intervals) {
    mix(static_cast<uint64_t>(iv.lo));
    mix(static_cast<uint64_t>(iv.hi));
    mix(iv.id);
  }
  return h;
}

struct WarmRow {
  uint32_t workers = 0;
  double qps = 0.0;
  double speedup = 0.0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t reads = 0;
  uint64_t fingerprint = 0;
};

WarmRow RunWarm(Store& s, const std::vector<PlannedQuery>& plan,
                uint32_t workers) {
  QueryEngineOptions eopts;
  eopts.num_workers = workers;
  eopts.queue_capacity = plan.size() + 1;  // admission never in the way here
  eopts.batch_size = 8;
  QueryEngine engine(s.pool.get(), eopts);
  const uint32_t pst_id =
      BenchValue(engine.AddStructure(s.pst_manifest), "register 2-sided");
  const uint32_t seg_id =
      BenchValue(engine.AddStructure(s.seg_manifest), "register stabbing");
  (void)pst_id;
  (void)seg_id;
  BenchCheck(engine.Start(), "start engine");

  std::atomic<uint64_t> fp{0};
  auto submit_all = [&](bool fingerprinted) {
    for (size_t i = 0; i < plan.size(); ++i) {
      Status st = engine.Submit(
          plan[i].structure, plan[i].query,
          [i, fingerprinted, &fp](QueryResult r) {
            BenchCheck(r.status, "serve query");
            if (fingerprinted) {
              fp.fetch_xor(Fingerprint(i, r), std::memory_order_relaxed);
            }
          });
      BenchCheck(st, "submit");
    }
    engine.Drain();
  };

  submit_all(false);  // warm the pool; results discarded

  const auto start = std::chrono::steady_clock::now();
  submit_all(true);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const ServeStats stats = engine.stats();
  WarmRow row;
  row.workers = workers;
  row.qps = static_cast<double>(plan.size()) / secs;
  row.p50 = stats.latency.p50;
  row.p95 = stats.latency.p95;
  row.p99 = stats.latency.p99;
  row.reads = stats.io.reads;
  row.fingerprint = fp.load();
  engine.Stop();
  return row;
}

struct LoadRow {
  uint64_t burst = 0;       // requests thrown at the queue back-to-back
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  double rejection_rate = 0.0;
};

// Offered-load sweep: a 2-worker engine with a deliberately small queue;
// each burst is submitted as fast as the loop can go, then drained.
std::vector<LoadRow> RunLoadSweep(Store& s,
                                  const std::vector<PlannedQuery>& plan,
                                  size_t queue_capacity) {
  QueryEngineOptions eopts;
  eopts.num_workers = 2;
  eopts.queue_capacity = queue_capacity;
  eopts.batch_size = 4;
  QueryEngine engine(s.pool.get(), eopts);
  BenchCheck(engine.AddStructure(s.pst_manifest).ToStatus(), "register 2-sided");
  BenchCheck(engine.AddStructure(s.seg_manifest).ToStatus(), "register stab");
  BenchCheck(engine.Start(), "start engine");

  std::vector<LoadRow> rows;
  for (uint64_t burst :
       {queue_capacity / 2, queue_capacity, 2 * queue_capacity,
        4 * queue_capacity, 8 * queue_capacity}) {
    LoadRow row;
    row.burst = burst;
    std::atomic<uint64_t> done{0};
    for (uint64_t i = 0; i < burst; ++i) {
      const PlannedQuery& pq = plan[i % plan.size()];
      Status st = engine.Submit(pq.structure, pq.query,
                                [&done](QueryResult r) {
                                  BenchCheck(r.status, "load query");
                                  done.fetch_add(1);
                                });
      if (st.IsOverloaded()) {
        ++row.rejected;
      } else {
        BenchCheck(st, "load submit");
        ++row.accepted;
      }
    }
    engine.Drain();
    if (done.load() != row.accepted) {
      std::fprintf(stderr, "FATAL accepted %llu but completed %llu\n",
                   static_cast<unsigned long long>(row.accepted),
                   static_cast<unsigned long long>(done.load()));
      std::abort();
    }
    row.rejection_rate =
        burst == 0 ? 0.0
                   : static_cast<double>(row.rejected) /
                         static_cast<double>(burst);
    rows.push_back(row);
  }
  engine.Stop();
  return rows;
}

// --- E18: observability overhead -------------------------------------------

struct ObsRow {
  double qps_base = 0.0;   // best of 5, engine with no obs wired at all
  double qps_wired = 0.0;  // best of 5, obs wired, tracer in its default
                           // (disabled) state -- the production shape
  double qps_traced = 0.0;  // best of 5, tracer enabled (every device I/O
                            // recorded; informational, not gated)
  double wired_overhead_pct = 0.0;   // (base - wired) / base * 100
  double traced_overhead_pct = 0.0;  // (base - traced) / base * 100
  uint64_t trace_recorded = 0;
  uint64_t trace_dropped = 0;
};

// Identical warm traffic through three engine configurations:
//   base    no obs wired (no tracer, no slow-query log, no metrics)
//   wired   obs wired as it ships: metrics registered (export is off the
//           hot path), slow-query log armed, tracer attached but left in
//           its default disabled state -- this is the <3% budget
//   traced  tracer enabled, so every serve.query span and every device
//           read underneath lands in the ring.  Reported, not gated: on a
//           RAM-backed device each query is microseconds of work against
//           ~dozens of per-I/O events, so full tracing costs real double-
//           digit percent here; against actual disks the same events are
//           noise next to seek time.
// The slow-query log is armed on a read-count threshold no query in this
// workload reaches: the per-query threshold checks run, the sink never
// fires mid-measurement (latency thresholds are useless under this closed
// loop anyway -- submit-all-then-drain queueing inflates every latency).
ObsRow RunObsComparison(Store& s, const std::vector<PlannedQuery>& plan,
                        const Options& opt) {
  auto run_once = [&](QueryEngine& engine) -> double {
    const auto start = std::chrono::steady_clock::now();
    for (const PlannedQuery& pq : plan) {
      BenchCheck(engine.Submit(pq.structure, pq.query,
                               [](QueryResult r) {
                                 BenchCheck(r.status, "obs query");
                               }),
                 "obs submit");
    }
    engine.Drain();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return static_cast<double>(plan.size()) / secs;
  };
  ObsRow row;

  {
    QueryEngineOptions eopts;
    eopts.num_workers = 4;
    eopts.queue_capacity = plan.size() + 1;
    eopts.batch_size = 8;
    QueryEngine base(s.pool.get(), eopts);
    BenchCheck(base.AddStructure(s.pst_manifest).ToStatus(),
               "register 2-sided");
    BenchCheck(base.AddStructure(s.seg_manifest).ToStatus(), "register stab");
    BenchCheck(base.Start(), "start base engine");
    run_once(base);  // warm the pool and the workers
    for (int i = 0; i < 5; ++i)
      row.qps_base = std::max(row.qps_base, run_once(base));
    base.Stop();
  }

  Tracer tracer(1 << 16);
  MetricsRegistry registry;
  QueryEngineOptions eopts;
  eopts.num_workers = 4;
  eopts.queue_capacity = plan.size() + 1;
  eopts.batch_size = 8;
  eopts.tracer = &tracer;
  eopts.slow_query_log.reads_threshold = 1'000'000;
  eopts.slow_query_log.sink = [](const SlowQueryLogEntry& e) {
    const std::string text = e.ToString();
    std::fprintf(stderr, "%s\n", text.c_str());
  };
  QueryEngine engine(s.pool.get(), eopts);
  BenchCheck(engine.AddStructure(s.pst_manifest).ToStatus(),
             "register 2-sided");
  BenchCheck(engine.AddStructure(s.seg_manifest).ToStatus(), "register stab");
  BenchCheck(RegisterServeMetrics(&registry, "bench", &engine),
             "register serve metrics");
  BenchCheck(RegisterSharedBufferPoolMetrics(&registry, "pool", s.pool.get()),
             "register pool metrics");
  BenchCheck(engine.Start(), "start engine");

  run_once(engine);  // warm this engine's worker handles
  for (int i = 0; i < 5; ++i)
    row.qps_wired = std::max(row.qps_wired, run_once(engine));
  tracer.Enable();
  for (int i = 0; i < 5; ++i)
    row.qps_traced = std::max(row.qps_traced, run_once(engine));
  tracer.Disable();
  auto pct = [&](double qps) {
    return row.qps_base == 0.0 ? 0.0
                               : (row.qps_base - qps) / row.qps_base * 100.0;
  };
  row.wired_overhead_pct = pct(row.qps_wired);
  row.traced_overhead_pct = pct(row.qps_traced);
  row.trace_recorded = tracer.recorded();
  row.trace_dropped = tracer.dropped();

  if (!opt.metrics_out.empty()) {
    std::string text;
    registry.WritePrometheus(&text);
    BenchCheck(PrometheusLint(text), "lint metrics export");
    std::FILE* f = std::fopen(opt.metrics_out.c_str(), "w");
    if (f == nullptr || std::fwrite(text.data(), 1, text.size(), f) !=
                            text.size()) {
      std::fprintf(stderr, "FATAL cannot write %s\n", opt.metrics_out.c_str());
      std::abort();
    }
    std::fclose(f);
    std::printf("wrote %s (lint-clean)\n", opt.metrics_out.c_str());
  }
  if (!opt.metrics_json.empty()) {
    std::string json;
    registry.WriteJson(&json);
    json.push_back('\n');
    std::FILE* f = std::fopen(opt.metrics_json.c_str(), "w");
    if (f == nullptr || std::fwrite(json.data(), 1, json.size(), f) !=
                            json.size()) {
      std::fprintf(stderr, "FATAL cannot write %s\n",
                   opt.metrics_json.c_str());
      std::abort();
    }
    std::fclose(f);
    std::printf("wrote %s\n", opt.metrics_json.c_str());
  }
  if (!opt.trace_out.empty()) {
    std::FILE* f = std::fopen(opt.trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL cannot write %s\n", opt.trace_out.c_str());
      std::abort();
    }
    BenchCheck(tracer.WriteChromeTrace(f), "dump trace");
    std::fclose(f);
    std::printf("wrote %s (%llu events, %llu dropped by the ring)\n",
                opt.trace_out.c_str(),
                static_cast<unsigned long long>(row.trace_recorded),
                static_cast<unsigned long long>(row.trace_dropped));
  }
  engine.Stop();
  return row;
}

// Captures one slow-query log entry for documentation: a throwaway 1-worker
// engine with reads_threshold=1, so the very first query trips the log.
// Untimed — never part of the overhead measurement.
void PrintSlowQuerySample(Store& s, const std::vector<PlannedQuery>& plan) {
  QueryEngineOptions eopts;
  eopts.num_workers = 1;
  eopts.slow_query_log.reads_threshold = 1;
  std::string captured;
  eopts.slow_query_log.sink = [&captured](const SlowQueryLogEntry& e) {
    if (captured.empty()) captured = e.ToString();
  };
  QueryEngine engine(s.pool.get(), eopts);
  BenchCheck(engine.AddStructure(s.pst_manifest).ToStatus(),
             "register 2-sided");
  BenchCheck(engine.AddStructure(s.seg_manifest).ToStatus(), "register stab");
  BenchCheck(engine.Start(), "start engine");
  BenchCheck(engine.Submit(plan[0].structure, plan[0].query, nullptr),
             "sample submit");
  engine.Drain();
  engine.Stop();
  std::printf("sample slow-query log entry (reads_threshold=1):\n%s\n",
              captured.c_str());
}

// --- E21: online updates ---------------------------------------------------

struct DynOverheadRow {
  double qps_static = 0.0;   // best of 7, manifest registered via AddStructure
  double qps_dynamic = 0.0;  // best of 7, same data behind AddDynamicStore
                             // with an empty delta — the idle shape
  double overhead_pct = 0.0;  // (static - dynamic) / static * 100
};

struct UpdateMixRow {
  double update_pct = 0.0;
  double throughput = 0.0;  // completed requests (queries + groups) per sec
  uint64_t queries = 0;
  uint64_t update_groups = 0;
  uint64_t updates_applied = 0;
  uint64_t rebuilds = 0;
  uint64_t read_repins = 0;
};

// A 2-sided-only stream for the dynamic store (it wraps only the point
// data).  Same range shape as the main plan's pst half.
std::vector<ServeQuery> MakeTwoSidedPlan(uint64_t count) {
  std::vector<ServeQuery> plan;
  plan.reserve(count);
  Rng rng(11);
  for (uint64_t i = 0; i < count; ++i) {
    plan.push_back(ServeQuery::TwoSided(
        TwoSidedQuery{rng.UniformRange(500'000'000, 1'000'000'000),
                      rng.UniformRange(800'000'000, 1'000'000'000)}));
  }
  return plan;
}

// The price of keeping a structure updatable while nobody updates it: the
// identical read-only stream through an engine serving the saved manifest
// (AddStructure) vs one serving the dynamic twin (AddDynamicStore — pin,
// base query, merge with an empty overlay, unpin, per request).  Both
// best-of-5 after a warm pass; the gap is the gated idle overhead.
DynOverheadRow RunDynamicIdleOverhead(Store& s, DynamicStore* store,
                                      const std::vector<ServeQuery>& qplan) {
  QueryEngineOptions eopts;
  eopts.num_workers = 4;
  eopts.queue_capacity = qplan.size() + 1;
  eopts.batch_size = 8;
  QueryEngine st_engine(s.pool.get(), eopts);
  QueryEngine dy_engine(s.pool.get(), eopts);
  const uint32_t st_id = BenchValue(st_engine.AddStructure(s.pst_manifest),
                                    "register static twin");
  const uint32_t dy_id =
      BenchValue(dy_engine.AddDynamicStore(store), "register dynamic");
  BenchCheck(st_engine.Start(), "start static engine");
  BenchCheck(dy_engine.Start(), "start dynamic engine");
  // Loop the plan so each timed round is at least ~16k requests: a round
  // that lasts milliseconds measures scheduler mood, not the read path.
  const uint64_t reps = (16'000 + qplan.size() - 1) / qplan.size();
  auto run_once = [&](QueryEngine& engine, uint32_t id) -> double {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < reps; ++r) {
      for (const ServeQuery& q : qplan) {
        BenchCheck(engine.Submit(id, q,
                                 [](QueryResult r2) {
                                   BenchCheck(r2.status, "idle query");
                                 }),
                   "idle submit");
      }
      engine.Drain();
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return static_cast<double>(reps * qplan.size()) / secs;
  };
  run_once(st_engine, st_id);  // warm the worker handles and the pool
  run_once(dy_engine, dy_id);
  // Interleave the measured rounds: frequency drift, page-cache state and
  // scheduler mood hit both engines alike, so best-of-N compares like with
  // like instead of "whichever ran second on a warmer machine".
  DynOverheadRow row;
  for (int i = 0; i < 7; ++i) {
    row.qps_static = std::max(row.qps_static, run_once(st_engine, st_id));
    row.qps_dynamic = std::max(row.qps_dynamic, run_once(dy_engine, dy_id));
  }
  st_engine.Stop();
  dy_engine.Stop();
  row.overhead_pct =
      row.qps_static == 0.0
          ? 0.0
          : (row.qps_static - row.qps_dynamic) / row.qps_static * 100.0;
  return row;
}

// Mixed stream: each slot in the plan becomes a single-insert update group
// with probability update_pct/100 (WAL append + group-commit fsync on the
// worker thread before the ack) and a 2-sided query otherwise.  The
// deterministic coin keeps reruns comparable.  Inserted ids start far above
// the loaded data's so the query half's result sizes stay stable.
UpdateMixRow RunUpdateMix(Store& s, DynamicStore* store,
                          const std::vector<ServeQuery>& qplan,
                          double update_pct) {
  QueryEngineOptions eopts;
  eopts.num_workers = 4;
  eopts.queue_capacity = qplan.size() + 1;
  eopts.batch_size = 8;
  QueryEngine engine(s.pool.get(), eopts);
  const uint32_t id =
      BenchValue(engine.AddDynamicStore(store), "register dynamic");
  BenchCheck(engine.Start(), "start engine");

  Rng rng(29);
  uint64_t next_id = 1'000'000'000'000ULL + store->stats().updates_applied;
  UpdateMixRow row;
  row.update_pct = update_pct;
  const DynamicStoreStats before = store->stats();
  const auto start = std::chrono::steady_clock::now();
  for (const ServeQuery& q : qplan) {
    if (rng.NextDouble() * 100.0 < update_pct) {
      const DynamicUpdate u{
          UpdateOp::kInsert,
          DynamicItem{rng.UniformRange(0, 1'000'000'000),
                      rng.UniformRange(0, 1'000'000'000), next_id++}};
      BenchCheck(engine.SubmitUpdate(id, std::span(&u, 1),
                                     [](QueryResult r) {
                                       BenchCheck(r.status, "mix update");
                                     }),
                 "mix submit update");
      ++row.update_groups;
    } else {
      BenchCheck(engine.Submit(id, q,
                               [](QueryResult r) {
                                 BenchCheck(r.status, "mix query");
                               }),
                 "mix submit query");
      ++row.queries;
    }
  }
  engine.Drain();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  row.throughput = static_cast<double>(qplan.size()) / secs;
  row.read_repins = engine.stats().read_repins;
  const DynamicStoreStats after = store->stats();
  row.updates_applied = after.updates_applied - before.updates_applied;
  row.rebuilds = after.rebuilds - before.rebuilds;
  engine.Stop();
  return row;
}

// --- E23: sharded serving ---------------------------------------------------

// Order-insensitive per-request fingerprint over canonically sorted
// results, so the sharded router's merge order and the unsharded engine's
// traversal order cannot make identical answers look different.
uint64_t CanonicalFingerprint(size_t ordinal, const QueryResult& r) {
  QueryResult c;
  c.points = r.points;
  c.intervals = r.intervals;
  std::sort(c.points.begin(), c.points.end(),
            [](const Point& a, const Point& b) {
              return std::tie(a.x, a.y, a.id) < std::tie(b.x, b.y, b.id);
            });
  std::sort(c.intervals.begin(), c.intervals.end(),
            [](const Interval& a, const Interval& b) {
              return std::tie(a.lo, a.hi, a.id) < std::tie(b.lo, b.hi, b.id);
            });
  return Fingerprint(ordinal, c);
}

struct ShardRow {
  uint32_t shards = 0;
  double qps_sharded = 0.0;
  double qps_unsharded = 0.0;
  uint64_t fingerprint = 0;  // identical sharded vs unsharded (asserted)
  uint64_t quiet_submitted = 0;
  uint64_t quiet_completed = 0;
  uint64_t starved_submitted = 0;
  uint64_t starved_rejected = 0;
  bool partial_failure_typed = false;
};

// Replays `plan` through `svc`, XOR-folding canonical fingerprints, and
// returns QPS.  Every request must succeed.
double ReplayPlan(QueryService* svc, const std::vector<PlannedQuery>& plan,
                  std::atomic<uint64_t>* fp) {
  const auto start = std::chrono::steady_clock::now();
  std::atomic<size_t> outstanding{plan.size()};
  std::promise<void> all_done;
  for (size_t i = 0; i < plan.size(); ++i) {
    Status st = svc->Submit(plan[i].structure, plan[i].query,
                            [i, fp, &outstanding, &all_done](QueryResult r) {
                              BenchCheck(r.status, "sharded replay");
                              fp->fetch_xor(CanonicalFingerprint(i, r),
                                            std::memory_order_relaxed);
                              if (outstanding.fetch_sub(1) == 1) {
                                all_done.set_value();
                              }
                            });
    BenchCheck(st, "sharded submit");
  }
  all_done.get_future().wait();
  return static_cast<double>(plan.size()) /
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count();
}

// A persistent read fault under exactly one shard must come back as a
// typed per-shard IoError while the healthy shard's slice still answers.
bool RunPartialFailure(const std::vector<Point>& pts) {
  MemPageDevice healthy_dev{4096};
  MemPageDevice faulty_inner{4096};
  FaultPageDevice fault(&faulty_inner);
  ShardedStoreOptions sopts;
  sopts.shards = 2;
  sopts.devices = {&healthy_dev, &fault};
  sopts.pool_pages_total = 2048;
  ShardedStore store(sopts);
  const uint32_t id = BenchValue(store.AddTwoSided(pts), "pf register");
  BenchCheck(store.Start(), "pf start");
  ShardRouter router(&store);

  fault.FailReadAt(fault.reads_seen(), /*persistent=*/true);
  store.pool(1)->Clear();

  std::promise<QueryResult> done;
  auto fut = done.get_future();
  BenchCheck(router.Submit(id,
                           ServeQuery::TwoSided(TwoSidedQuery{
                               std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::min()}),
                           [&done](QueryResult r) {
                             done.set_value(std::move(r));
                           }),
             "pf submit");
  QueryResult r = fut.get();
  store.Stop();

  bool typed = r.status.IsIoError() &&
               r.status.message().find("shard 1") != std::string::npos &&
               r.shards.size() == 2;
  if (typed) {
    typed = r.shards[0].status.ok() && !r.points.empty() &&
            r.shards[1].status.IsIoError();
  }
  return typed;
}

ShardRow RunSharded(const Options& opt) {
  constexpr uint32_t kStarvedTenant = 7;
  constexpr uint64_t kStarvedQuota = 4;

  // The same generated data BuildStore feeds the unsharded segments.
  PointGenOptions po;
  po.n = opt.points;
  po.seed = 42;
  const std::vector<Point> pts = GenPointsUniform(po);
  IntervalGenOptions io;
  io.n = opt.intervals;
  io.seed = 43;
  std::vector<Interval> ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&ivs);

  ShardedStoreOptions sopts;
  sopts.shards = opt.shards;
  sopts.pool_pages_total = 1 << 18;
  sopts.engine_workers = 2;
  sopts.queue_capacity = 4096;
  ShardedStore store(sopts);
  const uint32_t pst_id = BenchValue(store.AddTwoSided(pts), "shard 2-sided");
  const uint32_t seg_id = BenchValue(store.AddStabbing(ivs), "shard stab");
  BenchCheck(store.SetTenantQuota(kStarvedTenant, kStarvedQuota),
             "shard quota");
  BenchCheck(store.Start(), "start sharded store");
  ShardRouter router(&store);

  MemPageDevice twin_dev{4096};
  SharedBufferPool twin_pool(&twin_dev, 1 << 18);
  PageId twin_pst = kInvalidPageId;
  PageId twin_seg = kInvalidPageId;
  {
    ExternalPst pst(&twin_pool);
    BenchCheck(pst.Build(pts), "twin build 2-sided");
    twin_pst = BenchValue(pst.Save(), "twin save 2-sided");
  }
  {
    ExtSegmentTree st(&twin_pool);
    BenchCheck(st.Build(ivs), "twin build stab");
    twin_seg = BenchValue(st.Save(), "twin save stab");
  }
  QueryEngineOptions eopts;
  eopts.num_workers = 2 * opt.shards;  // same total worker budget
  eopts.queue_capacity = 4096;
  eopts.batch_size = 8;
  QueryEngine twin(&twin_pool, eopts);
  BenchCheck(twin.AddStructure(twin_pst).ToStatus(), "twin register 2-sided");
  BenchCheck(twin.AddStructure(twin_seg).ToStatus(), "twin register stab");
  BenchCheck(twin.Start(), "start twin engine");

  const std::vector<PlannedQuery> plan =
      MakePlan(opt.queries, pst_id, seg_id, opt.zipf_theta);

  ShardRow row;
  row.shards = opt.shards;
  std::atomic<uint64_t> fp_warm{0};
  ReplayPlan(&router, plan, &fp_warm);  // warm both pools
  ReplayPlan(&twin, plan, &fp_warm);
  std::atomic<uint64_t> fp_sharded{0};
  std::atomic<uint64_t> fp_unsharded{0};
  row.qps_sharded = ReplayPlan(&router, plan, &fp_sharded);
  row.qps_unsharded = ReplayPlan(&twin, plan, &fp_unsharded);
  if (fp_sharded.load() != fp_unsharded.load()) {
    std::fprintf(stderr,
                 "FATAL sharded result fingerprint diverged from unsharded "
                 "twin: %016llx vs %016llx\n",
                 static_cast<unsigned long long>(fp_sharded.load()),
                 static_cast<unsigned long long>(fp_unsharded.load()));
    std::abort();
  }
  row.fingerprint = fp_sharded.load();

  // Per-tenant mix: full-domain scans from a quiet unlimited tenant and a
  // saturating tenant holding kStarvedQuota queue tokens.  The burst
  // outruns the workers, so the starved tenant must see kOverloaded
  // bounces while every quiet-tenant request completes.
  const ServeQuery heavy = ServeQuery::TwoSided(
      TwoSidedQuery{std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::min()});
  std::atomic<uint64_t> quiet_done{0};
  std::atomic<uint64_t> starved_rejected{0};
  constexpr uint64_t kBurst = 64;
  for (uint64_t i = 0; i < kBurst; ++i) {
    BenchCheck(router.Submit(pst_id, heavy,
                             [&quiet_done](QueryResult r) {
                               BenchCheck(r.status, "quiet tenant");
                               quiet_done.fetch_add(1);
                             },
                             /*deadline_micros=*/0, /*tenant=*/0),
               "quiet submit");
    BenchCheck(router.Submit(pst_id, heavy,
                             [&starved_rejected](QueryResult r) {
                               if (r.status.IsOverloaded()) {
                                 starved_rejected.fetch_add(1);
                               } else {
                                 BenchCheck(r.status, "starved tenant");
                               }
                             },
                             /*deadline_micros=*/0, kStarvedTenant),
               "starved submit");
  }
  for (uint32_t k = 0; k < store.shards(); ++k) store.engine(k)->Drain();
  row.quiet_submitted = kBurst;
  row.quiet_completed = quiet_done.load();
  row.starved_submitted = kBurst;
  row.starved_rejected = starved_rejected.load();
  if (row.quiet_completed != row.quiet_submitted) {
    std::fprintf(stderr,
                 "FATAL quiet tenant lost requests: %llu of %llu\n",
                 static_cast<unsigned long long>(row.quiet_completed),
                 static_cast<unsigned long long>(row.quiet_submitted));
    std::abort();
  }
  if (row.starved_rejected == 0) {
    std::fprintf(stderr,
                 "FATAL saturating tenant saw no quota rejections\n");
    std::abort();
  }
  twin.Stop();
  store.Stop();

  row.partial_failure_typed = RunPartialFailure(pts);
  if (!row.partial_failure_typed) {
    std::fprintf(stderr,
                 "FATAL single-shard fault did not surface as a typed "
                 "per-shard error\n");
    std::abort();
  }
  return row;
}

void WriteJson(const Options& opt, const std::vector<WarmRow>& warm,
               const std::vector<LoadRow>& load, const ObsRow* obs,
               const DynOverheadRow* dyn,
               const std::vector<UpdateMixRow>& mix, const ShardRow* shard) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL cannot open %s for writing\n",
                 opt.json_path.c_str());
    std::abort();
  }
  JsonWriter w(f);
  w.BeginObject();
  w.Key("bench").Str("bench_serve");
  w.Key("kernel_tier").Str(kernels::TierName(kernels::ActiveTier()));
  w.Key("points").Uint(opt.points);
  w.Key("intervals").Uint(opt.intervals);
  w.Key("queries").Uint(opt.queries);
  w.Key("zipf_theta").Double(opt.zipf_theta);
  w.Key("warm_sweep").BeginArray();
  for (const WarmRow& r : warm) {
    w.BeginObject();
    w.Key("workers").Uint(r.workers);
    w.Key("qps").Double(r.qps);
    w.Key("speedup").Double(r.speedup);
    w.Key("latency_p50_us").Uint(r.p50);
    w.Key("latency_p95_us").Uint(r.p95);
    w.Key("latency_p99_us").Uint(r.p99);
    w.Key("pool_reads").Uint(r.reads);
    w.EndObject();
  }
  w.EndArray();
  w.Key("load_sweep").BeginArray();
  for (const LoadRow& r : load) {
    w.BeginObject();
    w.Key("burst").Uint(r.burst);
    w.Key("accepted").Uint(r.accepted);
    w.Key("rejected").Uint(r.rejected);
    w.Key("rejection_rate").Double(r.rejection_rate);
    w.EndObject();
  }
  w.EndArray();
  if (obs != nullptr) {
    w.Key("obs_overhead").BeginObject();
    w.Key("qps_base").Double(obs->qps_base);
    w.Key("qps_wired").Double(obs->qps_wired);
    w.Key("qps_traced").Double(obs->qps_traced);
    w.Key("wired_overhead_pct").Double(obs->wired_overhead_pct);
    w.Key("traced_overhead_pct").Double(obs->traced_overhead_pct);
    w.Key("trace_recorded").Uint(obs->trace_recorded);
    w.Key("trace_dropped").Uint(obs->trace_dropped);
    w.EndObject();
  }
  if (dyn != nullptr) {
    w.Key("dynamic_idle_overhead").BeginObject();
    w.Key("qps_static").Double(dyn->qps_static);
    w.Key("qps_dynamic").Double(dyn->qps_dynamic);
    w.Key("overhead_pct").Double(dyn->overhead_pct);
    w.EndObject();
  }
  if (!mix.empty()) {
    w.Key("update_mix").BeginArray();
    for (const UpdateMixRow& r : mix) {
      w.BeginObject();
      w.Key("update_pct").Double(r.update_pct);
      w.Key("throughput").Double(r.throughput);
      w.Key("queries").Uint(r.queries);
      w.Key("update_groups").Uint(r.update_groups);
      w.Key("updates_applied").Uint(r.updates_applied);
      w.Key("rebuilds").Uint(r.rebuilds);
      w.Key("read_repins").Uint(r.read_repins);
      w.EndObject();
    }
    w.EndArray();
  }
  if (shard != nullptr) {
    w.Key("sharded").BeginObject();
    w.Key("shards").Uint(shard->shards);
    w.Key("qps_sharded").Double(shard->qps_sharded);
    w.Key("qps_unsharded").Double(shard->qps_unsharded);
    w.Key("fingerprint_match").Uint(1);
    w.Key("quiet_submitted").Uint(shard->quiet_submitted);
    w.Key("quiet_completed").Uint(shard->quiet_completed);
    w.Key("starved_submitted").Uint(shard->starved_submitted);
    w.Key("starved_rejected").Uint(shard->starved_rejected);
    w.Key("partial_failure_typed").Uint(shard->partial_failure_typed ? 1 : 0);
    w.EndObject();
  }
  w.EndObject();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

int Main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);
  Store s = BuildStore(opt);

  // Probe structure ids once (identical registration order per engine).
  std::vector<PlannedQuery> plan = MakePlan(opt.queries, 0, 1, opt.zipf_theta);

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  if (opt.zipf_theta > 0.0) {
    std::printf("query popularity: Zipf(theta=%.2f)\n", opt.zipf_theta);
  }
  std::vector<WarmRow> warm;
  double qps1 = 0.0;
  for (uint32_t workers : kWorkerCounts) {
    WarmRow row = RunWarm(s, plan, workers);
    if (workers == 1) qps1 = row.qps;
    row.speedup = qps1 == 0.0 ? 0.0 : row.qps / qps1;
    warm.push_back(row);
    std::printf(
        "warm workers=%u  qps=%9.0f  speedup=%.2fx  p50=%lluus  p95=%lluus  "
        "p99=%lluus  pool reads=%llu\n",
        row.workers, row.qps, row.speedup,
        static_cast<unsigned long long>(row.p50),
        static_cast<unsigned long long>(row.p95),
        static_cast<unsigned long long>(row.p99),
        static_cast<unsigned long long>(row.reads));
  }

  // The engine's concurrency must be invisible in the results: every worker
  // count folds the same per-request fingerprints.
  for (const WarmRow& r : warm) {
    if (r.fingerprint != warm[0].fingerprint) {
      std::fprintf(stderr,
                   "FATAL result fingerprint diverged at %u workers: "
                   "%016llx vs %016llx\n",
                   r.workers,
                   static_cast<unsigned long long>(r.fingerprint),
                   static_cast<unsigned long long>(warm[0].fingerprint));
      std::abort();
    }
  }
  std::printf("result fingerprints identical across worker counts "
              "(asserted)\n\n");

  const std::vector<LoadRow> load = RunLoadSweep(s, plan,
                                                 /*queue_capacity=*/64);
  for (const LoadRow& r : load) {
    std::printf(
        "load burst=%5llu  accepted=%5llu  rejected=%5llu  "
        "rejection_rate=%.3f\n",
        static_cast<unsigned long long>(r.burst),
        static_cast<unsigned long long>(r.accepted),
        static_cast<unsigned long long>(r.rejected), r.rejection_rate);
  }

  ObsRow obs;
  if (opt.obs) {
    std::printf("\n");
    obs = RunObsComparison(s, plan, opt);
    std::printf(
        "obs wired (tracer off, default): base=%9.0f qps  wired=%9.0f qps  "
        "overhead=%.2f%%  (best of 5 each)\n",
        obs.qps_base, obs.qps_wired, obs.wired_overhead_pct);
    std::printf(
        "obs traced (tracer on):          base=%9.0f qps  traced=%9.0f qps  "
        "overhead=%.2f%%  (%llu trace events recorded)\n",
        obs.qps_base, obs.qps_traced, obs.traced_overhead_pct,
        static_cast<unsigned long long>(obs.trace_recorded));
    PrintSlowQuerySample(s, plan);
    if (opt.check_overhead_pct > 0.0 &&
        obs.wired_overhead_pct > opt.check_overhead_pct) {
      std::fprintf(stderr, "FATAL obs overhead %.2f%% exceeds budget %.2f%%\n",
                   obs.wired_overhead_pct, opt.check_overhead_pct);
      std::abort();
    }
  }

  DynOverheadRow dyn;
  std::vector<UpdateMixRow> mix;
  const bool dynamic_bench =
      opt.update_mix > 0.0 || opt.check_dynamic_overhead_pct > 0.0;
  if (dynamic_bench) {
    std::printf("\n");
    // Dynamic twin of the 2-sided structure: the same generated points,
    // wrapped in a WAL-backed DynamicStore on the same pool.
    PointGenOptions po;
    po.n = opt.points;
    po.seed = 42;
    const auto pts = GenPointsUniform(po);
    std::vector<DynamicItem> items;
    items.reserve(pts.size());
    for (const Point& p : pts) items.push_back(DynamicItem::From(p));
    DynamicStoreOptions dopts;
    // Low enough that even the CI smoke run's update half crosses it: the
    // mixed sweep should measure serving DURING background rebuilds and
    // publishes, not just WAL appends into a growing delta.
    dopts.rebuild_threshold = 64;
    dopts.background_rebuild = true;
    auto store = BenchValue(
        DynamicStore::Create(s.pool.get(), DynamicStructure::kExternalPst,
                             items, dopts),
        "create dynamic twin");
    const std::vector<ServeQuery> qplan = MakeTwoSidedPlan(opt.queries);
    dyn = RunDynamicIdleOverhead(s, store.get(), qplan);
    std::printf(
        "dynamic idle: static=%9.0f qps  dynamic=%9.0f qps  overhead=%.2f%%  "
        "(read-only stream, best of 7 interleaved)\n",
        dyn.qps_static, dyn.qps_dynamic, dyn.overhead_pct);
    if (opt.check_dynamic_overhead_pct > 0.0 &&
        dyn.overhead_pct > opt.check_dynamic_overhead_pct) {
      std::fprintf(stderr,
                   "FATAL dynamic idle overhead %.2f%% exceeds budget "
                   "%.2f%%\n",
                   dyn.overhead_pct, opt.check_dynamic_overhead_pct);
      std::abort();
    }
    if (opt.update_mix > 0.0) {
      for (double pct : {opt.update_mix / 2.0, opt.update_mix}) {
        const UpdateMixRow row = RunUpdateMix(s, store.get(), qplan, pct);
        mix.push_back(row);
        std::printf(
            "update mix=%5.1f%%  throughput=%9.0f req/s  queries=%llu  "
            "groups=%llu  applied=%llu  rebuilds=%llu  repins=%llu\n",
            row.update_pct, row.throughput,
            static_cast<unsigned long long>(row.queries),
            static_cast<unsigned long long>(row.update_groups),
            static_cast<unsigned long long>(row.updates_applied),
            static_cast<unsigned long long>(row.rebuilds),
            static_cast<unsigned long long>(row.read_repins));
      }
    }
    BenchCheck(store->WaitForRebuild(), "drain background rebuild");
    BenchCheck(store->Destroy(), "destroy dynamic twin");
  }

  ShardRow shard;
  if (opt.shards > 0) {
    std::printf("\n");
    shard = RunSharded(opt);
    std::printf(
        "sharded shards=%u  qps=%9.0f  unsharded qps=%9.0f  "
        "fingerprints identical (asserted)\n",
        shard.shards, shard.qps_sharded, shard.qps_unsharded);
    std::printf(
        "sharded tenants: quiet %llu/%llu completed  starved %llu/%llu "
        "rejected kOverloaded (asserted >=1)\n",
        static_cast<unsigned long long>(shard.quiet_completed),
        static_cast<unsigned long long>(shard.quiet_submitted),
        static_cast<unsigned long long>(shard.starved_rejected),
        static_cast<unsigned long long>(shard.starved_submitted));
    std::printf(
        "sharded partial failure: single-shard fault surfaced as typed "
        "per-shard IoError, healthy shard answered (asserted)\n");
  }

  if (!opt.json_path.empty()) {
    WriteJson(opt, warm, load, opt.obs ? &obs : nullptr,
              dynamic_bench ? &dyn : nullptr, mix,
              opt.shards > 0 ? &shard : nullptr);
  }
  return 0;
}

}  // namespace
}  // namespace pathcache

int main(int argc, char** argv) { return pathcache::Main(argc, argv); }
