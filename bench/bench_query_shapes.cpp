// Experiment E8 (Figure 1): the four query shapes of the paper, each
// answered by the structure specialized for it — diagonal-corner queries
// via the [KRV] stabbing reduction, 2-sided via the two-level PST, 3-sided
// via the 3-sided PST, and general 2-D composed from a 3-sided query plus
// an in-memory filter (the paper leaves optimal general 4-sided external
// search open; the composition is output-sensitive only in the open side).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/pathcache.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<TwoLevelPst> two;
  std::unique_ptr<ThreeSidedPst> three;
  std::unique_ptr<DynamicStabbingIndex> stab;
};

Env* GetEnv(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  auto pts = GenPointsUniform(o);
  env->two = std::make_unique<TwoLevelPst>(env->dev.get());
  BenchCheck(env->two->Build(pts), "build 2-sided");
  env->three = std::make_unique<ThreeSidedPst>(env->dev.get());
  BenchCheck(env->three->Build(pts), "build 3-sided");
  IntervalGenOptions io;
  io.n = n;
  io.seed = 43;
  io.domain_max = 1'000'000'000;
  io.mean_len_frac = 0.002;
  env->stab = std::make_unique<DynamicStabbingIndex>(env->dev.get());
  BenchCheck(env->stab->Build(GenIntervalsUniform(io)), "build stabbing");
  Env* raw = env.get();
  cache[n] = std::move(env);
  return raw;
}

void BM_Shape_DiagonalCorner(benchmark::State& state) {
  Env* env = GetEnv(state.range(0));
  Rng rng(3);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    // Stabbing IS the diagonal-corner query after the [KRV] reduction.
    std::vector<Interval> out;
    BenchCheck(env->stab->Stab(rng.UniformRange(0, 1'000'000'000), &out),
               "stab");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
}
BENCHMARK(BM_Shape_DiagonalCorner)->Arg(200'000);

void BM_Shape_TwoSided(benchmark::State& state) {
  Env* env = GetEnv(state.range(0));
  Rng rng(5);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    TwoSidedQuery q{rng.UniformRange(800'000'000, 1'000'000'000),
                    rng.UniformRange(800'000'000, 1'000'000'000)};
    std::vector<Point> out;
    BenchCheck(env->two->QueryTwoSided(q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
}
BENCHMARK(BM_Shape_TwoSided)->Arg(200'000);

void BM_Shape_ThreeSided(benchmark::State& state) {
  Env* env = GetEnv(state.range(0));
  Rng rng(7);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    int64_t x1 = rng.UniformRange(0, 900'000'000);
    ThreeSidedQuery q{x1, x1 + 100'000'000,
                      rng.UniformRange(900'000'000, 1'000'000'000)};
    std::vector<Point> out;
    BenchCheck(env->three->QueryThreeSided(q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
}
BENCHMARK(BM_Shape_ThreeSided)->Arg(200'000);

void BM_Shape_General2D(benchmark::State& state) {
  Env* env = GetEnv(state.range(0));
  Rng rng(9);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    int64_t x1 = rng.UniformRange(0, 900'000'000);
    int64_t y1 = rng.UniformRange(700'000'000, 950'000'000);
    RangeQuery q{x1, x1 + 100'000'000, y1, y1 + 50'000'000};
    std::vector<Point> tmp, out;
    BenchCheck(env->three->QueryThreeSided(
                   ThreeSidedQuery{q.x_min, q.x_max, q.y_min}, &tmp),
               "query");
    for (const auto& p : tmp) {
      if (p.y <= q.y_max) out.push_back(p);
    }
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
}
BENCHMARK(BM_Shape_General2D)->Arg(200'000);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
