// Experiment E11 (Section 1 baseline claims): B+-tree external 1-D range
// search costs O(log_B n + t/B) I/Os and updates cost O(log_B n).
//
// Counters reported per benchmark:
//   io_per_query   measured device reads per operation
//   bound          the paper's bound with constant 1 (log_B n + t/B)
//   t              mean output size

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "btree/bplus_tree.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "util/random.h"

namespace pathcache {
namespace {

std::vector<BTreeEntry> MakeEntries(uint64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<BTreeEntry> entries(n);
  for (uint64_t i = 0; i < n; ++i) {
    entries[i] = {static_cast<int64_t>(i * 16 + rng.Uniform(16)), i};
  }
  return entries;
}

void BM_BTreePointLookup(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  MemPageDevice dev(4096);
  BPlusTree tree(&dev);
  auto entries = MakeEntries(n, 1);
  BenchCheck(tree.BulkLoad(entries), "bulk load");

  Rng rng(7);
  dev.ResetStats();
  uint64_t ops = 0;
  for (auto _ : state) {
    bool found;
    uint64_t v;
    BenchCheck(tree.Get(entries[rng.Uniform(n)].key, &v, &found), "get");
    benchmark::DoNotOptimize(found);
    ++ops;
  }
  RegisterIoCounters(state, dev.stats(), ops, "io_per_query");
  state.counters["bound_logB_n"] =
      static_cast<double>(CeilLogBase(n, tree.leaf_capacity()));
}
BENCHMARK(BM_BTreePointLookup)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_BTreeRangeScan(benchmark::State& state) {
  const uint64_t n = 1'000'000;
  const uint64_t t_target = static_cast<uint64_t>(state.range(0));
  MemPageDevice dev(4096);
  BPlusTree tree(&dev);
  auto entries = MakeEntries(n, 2);
  BenchCheck(tree.BulkLoad(entries), "bulk load");

  Rng rng(11);
  dev.ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    uint64_t start = rng.Uniform(n - t_target);
    std::vector<BTreeEntry> out;
    BenchCheck(tree.RangeScan(entries[start].key,
                              entries[start + t_target - 1].key, &out),
               "range scan");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, dev.stats(), ops, "io_per_query");
  state.counters["t"] = static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["bound"] = static_cast<double>(
      CeilLogBase(n, tree.leaf_capacity()) +
      CeilDiv(t_target, tree.leaf_capacity()));
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_BTreeInsert(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  MemPageDevice dev(4096);
  BPlusTree tree(&dev);
  auto entries = MakeEntries(n, 3);
  BenchCheck(tree.BulkLoad(entries), "bulk load");

  Rng rng(13);
  dev.ResetStats();
  uint64_t ops = 0;
  for (auto _ : state) {
    BTreeEntry e{static_cast<int64_t>(rng.Uniform(n * 16)),
                 (1ULL << 40) + ops};
    BenchCheck(tree.Insert(e), "insert");
    ++ops;
  }
  RegisterIoCounters(state, dev.stats(), ops, "io_per_op", /*count_writes=*/true);
  state.counters["bound_logB_n"] =
      static_cast<double>(CeilLogBase(n, tree.leaf_capacity()));
}
BENCHMARK(BM_BTreeInsert)->Arg(100'000)->Arg(1'000'000);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
