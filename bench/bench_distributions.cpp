// Experiment E13 (Section 1's worst-case-vs-heuristic argument): query I/O
// across data distributions for the worst-case-optimal two-level PST vs the
// grid-file heuristic ([NHS]-style) vs the B+-tree scan.
//
// Expected shape: the grid is competitive on uniform data (its design
// point) and degrades on clustered/diagonal/Zipf inputs where points crowd
// into few cells; the path-cached structure's counts barely move across
// distributions — the paper's case for worst-case bounds in one table.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/grid_baseline.h"
#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

const char* DistName(int d) {
  switch (d) {
    case 0: return "uniform";
    case 1: return "clustered";
    case 2: return "diagonal";
    case 3: return "zipf";
  }
  return "?";
}

std::vector<Point> MakePoints(int dist, uint64_t n) {
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  switch (dist) {
    case 0: return GenPointsUniform(o);
    case 1: return GenPointsClustered(o, 6, 5'000'000);
    case 2: return GenPointsDiagonal(o, 10'000'000);
    default: return GenPointsZipfX(o, 0.99);
  }
}

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<TwoLevelPst> pst;
  std::unique_ptr<GridBaseline> grid;
  std::unique_ptr<XSortedBaseline> scan;
  std::vector<Point> pts;
  std::vector<int64_t> xs_desc, ys_desc;
};

Env* GetEnv(int dist, uint64_t n) {
  static std::map<std::pair<int, uint64_t>, std::unique_ptr<Env>> cache;
  auto key = std::make_pair(dist, n);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  env->pts = MakePoints(dist, n);
  env->pst = std::make_unique<TwoLevelPst>(env->dev.get());
  BenchCheck(env->pst->Build(env->pts), "build pst");
  env->grid = std::make_unique<GridBaseline>(env->dev.get());
  BenchCheck(env->grid->Build(env->pts), "build grid");
  env->scan = std::make_unique<XSortedBaseline>(env->dev.get());
  BenchCheck(env->scan->Build(env->pts), "build scan");
  for (const auto& p : env->pts) {
    env->xs_desc.push_back(p.x);
    env->ys_desc.push_back(p.y);
  }
  std::sort(env->xs_desc.begin(), env->xs_desc.end(), std::greater<>());
  std::sort(env->ys_desc.begin(), env->ys_desc.end(), std::greater<>());
  Env* raw = env.get();
  cache[key] = std::move(env);
  return raw;
}

template <typename F>
void Run(benchmark::State& state, F&& query_fn) {
  const int dist = static_cast<int>(state.range(0));
  const uint64_t n = static_cast<uint64_t>(state.range(1));
  Env* env = GetEnv(dist, n);
  Rng rng(7);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    // Selective corners (t <= ~1k): both edges at high ranks, so the cost
    // differences are structural, not output-volume.
    uint64_t k = 200 + rng.Uniform(800);
    TwoSidedQuery q{env->xs_desc[k], env->ys_desc[k]};
    std::vector<Point> out;
    BenchCheck(query_fn(*env, q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  const uint32_t B = RecordsPerPage<Point>(4096);
  state.SetLabel(DistName(dist));
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["t_over_B"] = static_cast<double>(total_t) /
                               static_cast<double>(ops) /
                               static_cast<double>(B);
}

void BM_Dist_TwoLevelPst(benchmark::State& state) {
  Run(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.pst->QueryTwoSided(q, out);
  });
}
void BM_Dist_GridFile(benchmark::State& state) {
  Run(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.grid->QueryTwoSided(q, out);
  });
}
void BM_Dist_BtreeScan(benchmark::State& state) {
  Run(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.scan->QueryTwoSided(q, out);
  });
}

static void Args(benchmark::internal::Benchmark* b) {
  for (int dist : {0, 1, 2, 3}) b->Args({dist, 200'000});
}
BENCHMARK(BM_Dist_TwoLevelPst)->Apply(Args);
BENCHMARK(BM_Dist_GridFile)->Apply(Args);
BENCHMARK(BM_Dist_BtreeScan)->Apply(Args);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
