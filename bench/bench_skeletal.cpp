// Experiment E9 (Figure 2): skeletal-B-tree blocking — a root-to-leaf
// descent of a binary tree costs one page read per chunk of ~log2(B) levels,
// i.e. O(log_B n) instead of O(log_2 n), across page sizes.
//
// Expected shape: reads per descent track ceil(height / chunk_height) and
// shrink as the page grows; the pointer-chased (1-node-per-page) layout
// pays the full height.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/skeletal.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "util/random.h"

namespace pathcache {
namespace {

struct TestRec {
  int64_t key = 0;
  NodeRef left;
  NodeRef right;
};

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  SkeletalTreeInfo info;
  int32_t n = 0;
};

Env* GetEnv(int64_t n, uint32_t page_size, bool blocked) {
  static std::map<std::tuple<int64_t, uint32_t, bool>, std::unique_ptr<Env>>
      cache;
  auto key = std::make_tuple(n, page_size, blocked);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  // "Unblocked" pointer-chasing: a page so small it fits one node.
  env->dev = std::make_unique<MemPageDevice>(
      blocked ? page_size : sizeof(SkeletalPageHeader) + sizeof(TestRec));
  env->n = static_cast<int32_t>(n);

  // Complete BST over keys 0..n-1 in heap order.
  std::vector<TestRec> recs(n);
  std::vector<int32_t> left(n, -1), right(n, -1);
  struct R {
    std::vector<TestRec>& recs;
    std::vector<int32_t>& left;
    std::vector<int32_t>& right;
    int64_t next_key = 0;
    void Visit(int32_t i) {
      int32_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < static_cast<int32_t>(recs.size())) {
        left[i] = l;
        Visit(l);
      }
      recs[i].key = next_key++;
      if (r < static_cast<int32_t>(recs.size())) {
        right[i] = r;
        Visit(r);
      }
    }
  } builder{recs, left, right};
  builder.Visit(0);
  auto r = WriteSkeletalTree<TestRec>(env->dev.get(), recs, left, right, 0);
  BenchCheck(r.ToStatus(), "write skeletal tree");
  env->info = std::move(r).value();
  Env* raw = env.get();
  cache[key] = std::move(env);
  return raw;
}

void RunDescent(benchmark::State& state, bool blocked) {
  const int64_t n = state.range(0);
  const uint32_t page_size = static_cast<uint32_t>(state.range(1));
  Env* env = GetEnv(n, page_size, blocked);

  Rng rng(31);
  env->dev->ResetStats();
  uint64_t ops = 0;
  for (auto _ : state) {
    SkeletalTreeReader<TestRec> reader(env->dev.get());
    int64_t target = rng.UniformRange(0, n - 1);
    NodeRef cur = env->info.root;
    TestRec rec;
    while (cur.valid()) {
      BenchCheck(reader.Read(cur, &rec), "read");
      if (rec.key == target) break;
      cur = target < rec.key ? rec.left : rec.right;
    }
    ++ops;
  }
  const uint32_t cap = SkeletalNodesPerPage<TestRec>(
      blocked ? page_size
              : sizeof(SkeletalPageHeader) + sizeof(TestRec));
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_descent");
  state.counters["height"] = static_cast<double>(CeilLog2(n));
  state.counters["chunk_height"] =
      static_cast<double>(std::max<uint32_t>(1, FloorLog2(cap + 1)));
}

void BM_Skeletal_Blocked(benchmark::State& state) { RunDescent(state, true); }
void BM_Skeletal_PointerChase(benchmark::State& state) {
  RunDescent(state, false);
}

static void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {65'535, 1'048'575}) {
    for (int64_t page : {512, 4096, 16384}) b->Args({n, page});
  }
}
BENCHMARK(BM_Skeletal_Blocked)->Apply(Args);
BENCHMARK(BM_Skeletal_PointerChase)->Args({65'535, 4096})
    ->Args({1'048'575, 4096});

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
