// Experiment E10 (Figure 4 / Section 3 accounting): per-query breakdown of
// block reads by structural role — navigation / caches / corner / ancestor /
// sibling / descendant — and the useful-vs-wasteful classification that the
// paper's charging argument is built on ("every wasteful I/O is paid for by
// a useful one": wasteful <= 2*useful + O(log_B n)).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<TwoLevelPst> pst;
  std::vector<Point> pts;
};

Env* GetEnv(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  env->pts = GenPointsUniform(o);
  env->pst = std::make_unique<TwoLevelPst>(env->dev.get());
  BenchCheck(env->pst->Build(env->pts), "build");
  Env* raw = env.get();
  cache[n] = std::move(env);
  return raw;
}

void BM_Accounting_Breakdown(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const int64_t corner_pct = state.range(1);  // query corner position
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Point>(4096);

  const int64_t c = 10'000'000 * corner_pct;
  Rng rng(37);
  QueryStats agg;
  uint64_t ops = 0;
  for (auto _ : state) {
    TwoSidedQuery q{c + rng.UniformRange(0, 10'000'000),
                    c + rng.UniformRange(0, 10'000'000)};
    std::vector<Point> out;
    QueryStats qs;
    BenchCheck(env->pst->QueryTwoSided(q, &out, &qs), "query");
    agg += qs;
    ++ops;
  }
  auto per = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(ops);
  };
  state.counters["nav"] = per(agg.navigation);
  state.counters["cache"] = per(agg.cache);
  state.counters["ancestor"] = per(agg.ancestor);
  state.counters["sibling"] = per(agg.sibling);
  state.counters["descendant"] = per(agg.descendant);
  state.counters["useful"] = per(agg.useful);
  state.counters["wasteful"] = per(agg.wasteful);
  state.counters["t_mean"] = per(agg.records_reported);
  state.counters["paid_bound"] =
      2.0 * per(agg.useful) + 10.0 * CeilLogBase(n, B) + 16;
}

static void Args(benchmark::internal::Benchmark* b) {
  // Corner at 30%/70%/95% of the domain: sweeping output size from huge to
  // tiny shifts the breakdown from descendant-dominated to cache-dominated.
  for (int64_t pct : {30, 70, 95}) b->Args({400'000, pct});
}
BENCHMARK(BM_Accounting_Breakdown)->Apply(Args);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
