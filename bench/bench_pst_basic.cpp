// Experiment E2 (Theorem 3.2): 2-sided queries on the basic path-cached PST
// vs the [IKO] no-cache baseline vs the B+-tree x-scan, across n and output
// size t.  Queries are built with controlled t (k-th largest x as the edge)
// so the additive log term is visible.
//
// Expected shape: path-cached I/O ~ log_B n + t/B (flat in n); [IKO] adds
// ~log_2(n/B) underfull reads; the B+-tree scan grows with the
// x-selectivity t_x >> t.  Space: basic ~ (n/B) log B, [IKO] ~ n/B.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/pst_external.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<ExternalPst> cached;
  std::unique_ptr<ExternalPst> iko;
  std::unique_ptr<XSortedBaseline> scan;
  std::vector<int64_t> xs_desc;  // for controlled-t queries
  std::vector<int64_t> ys_desc;
};

Env* GetEnv(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  auto pts = GenPointsUniform(o);
  env->cached = std::make_unique<ExternalPst>(env->dev.get());
  BenchCheck(env->cached->Build(pts), "build cached");
  ExternalPstOptions iko_opts;
  iko_opts.enable_path_caching = false;
  env->iko = std::make_unique<ExternalPst>(env->dev.get(), iko_opts);
  BenchCheck(env->iko->Build(pts), "build iko");
  env->scan = std::make_unique<XSortedBaseline>(env->dev.get());
  BenchCheck(env->scan->Build(pts), "build scan");
  for (const auto& p : pts) {
    env->xs_desc.push_back(p.x);
    env->ys_desc.push_back(p.y);
  }
  std::sort(env->xs_desc.begin(), env->xs_desc.end(), std::greater<>());
  std::sort(env->ys_desc.begin(), env->ys_desc.end(), std::greater<>());
  Env* raw = env.get();
  cache[n] = std::move(env);
  return raw;
}

// Query with t ~ t_target, built to be Y-SELECTIVE over a wide x-range:
// x >= median x (half the data passes the x test), y >= the 2*t_target-th
// largest y, so t ~ t_target.  This is the regime the paper targets — a
// 1-D index on x must scan ~n/2 records to produce ~t results.
TwoSidedQuery ControlledQuery(const Env& env, uint64_t t_target, Rng* rng) {
  uint64_t k = 2 * t_target + rng->Uniform(std::max<uint64_t>(1, t_target));
  k = std::min<uint64_t>(k, env.ys_desc.size() - 1);
  return TwoSidedQuery{env.xs_desc[env.xs_desc.size() / 2], env.ys_desc[k]};
}

template <typename F>
void RunTwoSided(benchmark::State& state, uint64_t n, uint64_t t_target,
                 F&& query_fn) {
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Point>(4096);
  Rng rng(13);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    std::vector<Point> out;
    BenchCheck(query_fn(*env, ControlledQuery(*env, t_target, &rng), &out),
               "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
  state.counters["log2_n_over_B"] =
      static_cast<double>(CeilLog2(std::max<uint64_t>(2, n / B)));
}

void BM_PstBasic_Cached(benchmark::State& state) {
  RunTwoSided(state, state.range(0), state.range(1),
              [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
                return e.cached->QueryTwoSided(q, out);
              });
  state.counters["storage_blocks"] =
      static_cast<double>(GetEnv(state.range(0))->cached->storage().total());
}
void BM_PstBasic_IKO(benchmark::State& state) {
  RunTwoSided(state, state.range(0), state.range(1),
              [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
                return e.iko->QueryTwoSided(q, out);
              });
  state.counters["storage_blocks"] =
      static_cast<double>(GetEnv(state.range(0))->iko->storage().total());
}
void BM_PstBasic_BtreeScan(benchmark::State& state) {
  RunTwoSided(state, state.range(0), state.range(1),
              [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
                return e.scan->QueryTwoSided(q, out);
              });
}

static void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {20'000, 100'000, 500'000}) {
    for (int64_t t : {64, 1024, 16'384}) b->Args({n, t});
  }
}
BENCHMARK(BM_PstBasic_Cached)->Apply(Args);
BENCHMARK(BM_PstBasic_IKO)->Apply(Args);
BENCHMARK(BM_PstBasic_BtreeScan)->Apply(Args);

// DEEP-CORNER queries: x >= (t-th largest x) with a LOW y edge, so the
// corner descent runs the full tree depth while t stays small.  This is the
// regime exposing [IKO]'s additive log_2(n/B): every path node and sibling
// costs an underfull read, while the cached version reads O(log_B n)
// coalesced caches.
TwoSidedQuery DeepCornerQuery(const Env& env, uint64_t t_target, Rng* rng) {
  uint64_t k = t_target + rng->Uniform(std::max<uint64_t>(1, t_target / 4));
  k = std::min<uint64_t>(k, env.xs_desc.size() - 1);
  return TwoSidedQuery{env.xs_desc[k],
                       env.ys_desc[env.ys_desc.size() * 19 / 20]};
}

template <typename F>
void RunDeep(benchmark::State& state, F&& query_fn) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint64_t t_target = static_cast<uint64_t>(state.range(1));
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Point>(4096);
  Rng rng(29);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    std::vector<Point> out;
    BenchCheck(query_fn(*env, DeepCornerQuery(*env, t_target, &rng), &out),
               "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
  state.counters["log2_n_over_B"] =
      static_cast<double>(CeilLog2(std::max<uint64_t>(2, n / B)));
}

void BM_PstBasic_Cached_DeepCorner(benchmark::State& state) {
  RunDeep(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.cached->QueryTwoSided(q, out);
  });
}
void BM_PstBasic_IKO_DeepCorner(benchmark::State& state) {
  RunDeep(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.iko->QueryTwoSided(q, out);
  });
}
static void DeepArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {20'000, 100'000, 500'000}) {
    for (int64_t t : {64, 512}) b->Args({n, t});
  }
}
BENCHMARK(BM_PstBasic_Cached_DeepCorner)->Apply(DeepArgs);
BENCHMARK(BM_PstBasic_IKO_DeepCorner)->Apply(DeepArgs);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
