// Experiment E3 (Lemmas 4.1/4.2, Theorem 4.3): the two-level recursive
// scheme — optimal query I/O at O((n/B) log log B) space.
//
// Expected shape: io_per_query matches the basic scheme's (both optimal),
// while storage_blocks tracks (n/B) log log B, well below the basic
// scheme's (n/B) log B; the top level alone (X/Y/A/S) is O(n/B).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/pst_external.h"
#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<TwoLevelPst> two;
  std::unique_ptr<ExternalPst> basic;
  std::vector<int64_t> xs_desc, ys_desc;
};

Env* GetEnv(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  auto pts = GenPointsUniform(o);
  env->two = std::make_unique<TwoLevelPst>(env->dev.get());
  BenchCheck(env->two->Build(pts), "build two-level");
  env->basic = std::make_unique<ExternalPst>(env->dev.get());
  BenchCheck(env->basic->Build(pts), "build basic");
  for (const auto& p : pts) {
    env->xs_desc.push_back(p.x);
    env->ys_desc.push_back(p.y);
  }
  std::sort(env->xs_desc.begin(), env->xs_desc.end(), std::greater<>());
  std::sort(env->ys_desc.begin(), env->ys_desc.end(), std::greater<>());
  Env* raw = env.get();
  cache[n] = std::move(env);
  return raw;
}

template <typename F>
void Run(benchmark::State& state, F&& query_fn) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint64_t t_target = static_cast<uint64_t>(state.range(1));
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Point>(4096);
  Rng rng(17);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    uint64_t k = std::min<uint64_t>(t_target + rng.Uniform(t_target / 4 + 1),
                                    n - 1);
    TwoSidedQuery q{env->xs_desc[k], env->ys_desc[n / 2]};
    std::vector<Point> out;
    BenchCheck(query_fn(*env, q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
  state.counters["n_over_B"] = static_cast<double>(CeilDiv(n, B));
  state.counters["loglogB"] = static_cast<double>(FloorLogLog2(B));
}

void BM_TwoLevel_Query(benchmark::State& state) {
  Run(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.two->QueryTwoSided(q, out);
  });
  Env* env = GetEnv(state.range(0));
  auto st = env->two->storage();
  state.counters["storage_blocks"] = static_cast<double>(st.total());
  state.counters["top_level_blocks"] =
      static_cast<double>(st.total() - st.second_level);
  state.counters["second_level_blocks"] = static_cast<double>(st.second_level);
}

void BM_Basic_Query(benchmark::State& state) {
  Run(state, [](Env& e, const TwoSidedQuery& q, std::vector<Point>* out) {
    return e.basic->QueryTwoSided(q, out);
  });
  state.counters["storage_blocks"] =
      static_cast<double>(GetEnv(state.range(0))->basic->storage().total());
}

static void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {50'000, 200'000, 1'000'000}) {
    for (int64_t t : {128, 8'192}) b->Args({n, t});
  }
}
BENCHMARK(BM_TwoLevel_Query)->Apply(Args);
BENCHMARK(BM_Basic_Query)->Apply(Args);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
