// Experiment E12 (ablations): design-choice sweeps DESIGN.md calls out.
//  (a) Page size B: 512..16384 bytes — query I/O falls as log_B n and the
//      caches get relatively cheaper.
//  (b) Buffer pool on top of the device: hit rates convert logical reads
//      into fewer physical reads; the structures' bounds apply to misses.
//  (c) Cache segment length: shorter segments = more caches per query but
//      smaller ones; the floor(log2 B) default is the sweet spot.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/pst_two_level.h"
#include "io/buffer_pool.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<TwoLevelPst> pst;
};

Env* GetEnv(uint32_t page_size, uint32_t seg_len) {
  static std::map<std::pair<uint32_t, uint32_t>, std::unique_ptr<Env>> cache;
  auto key = std::make_pair(page_size, seg_len);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(page_size);
  PointGenOptions o;
  o.n = 300'000;
  o.seed = 42;
  TwoLevelPstOptions opts;
  opts.segment_len = seg_len;
  env->pst = std::make_unique<TwoLevelPst>(env->dev.get(), opts);
  BenchCheck(env->pst->Build(GenPointsUniform(o)), "build");
  Env* raw = env.get();
  cache[key] = std::move(env);
  return raw;
}

void QueryLoop(benchmark::State& state, Env* env, MemPageDevice* counter,
               PageDevice* via, uint32_t page_size) {
  (void)via;
  Rng rng(41);
  counter->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    TwoSidedQuery q{rng.UniformRange(700'000'000, 1'000'000'000),
                    rng.UniformRange(900'000'000, 1'000'000'000)};
    std::vector<Point> out;
    BenchCheck(env->pst->QueryTwoSided(q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  const uint32_t B = RecordsPerPage<Point>(page_size);
  RegisterIoCounters(state, counter->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["B"] = static_cast<double>(B);
  state.counters["storage_blocks"] =
      static_cast<double>(counter->live_pages());
}

void BM_Ablation_PageSize(benchmark::State& state) {
  const uint32_t page_size = static_cast<uint32_t>(state.range(0));
  Env* env = GetEnv(page_size, 0);
  QueryLoop(state, env, env->dev.get(), env->dev.get(), page_size);
}
BENCHMARK(BM_Ablation_PageSize)->Arg(512)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Ablation_SegmentLen(benchmark::State& state) {
  const uint32_t seg = static_cast<uint32_t>(state.range(0));
  Env* env = GetEnv(4096, seg);
  QueryLoop(state, env, env->dev.get(), env->dev.get(), 4096);
  state.counters["seg_len"] = static_cast<double>(env->pst->segment_len());
}
BENCHMARK(BM_Ablation_SegmentLen)->Arg(1)->Arg(2)->Arg(4)->Arg(7);

// Buffer pool ablation: a pool in front of the same device turns repeat
// touches (skeletal top pages, hot caches) into hits.
void BM_Ablation_BufferPool(benchmark::State& state) {
  const uint64_t pool_pages = static_cast<uint64_t>(state.range(0));
  static std::unique_ptr<MemPageDevice> inner;
  static std::unique_ptr<BufferPool> pool;
  static std::unique_ptr<TwoLevelPst> pst;
  static uint64_t built_pool = UINT64_MAX;
  if (built_pool != pool_pages) {
    inner = std::make_unique<MemPageDevice>(4096);
    pool = std::make_unique<BufferPool>(inner.get(), pool_pages);
    pst = std::make_unique<TwoLevelPst>(pool.get());
    PointGenOptions o;
    o.n = 300'000;
    o.seed = 42;
    BenchCheck(pst->Build(GenPointsUniform(o)), "build");
    built_pool = pool_pages;
  }
  Rng rng(43);
  inner->ResetStats();
  pool->ResetStats();
  uint64_t ops = 0;
  for (auto _ : state) {
    TwoSidedQuery q{rng.UniformRange(700'000'000, 1'000'000'000),
                    rng.UniformRange(900'000'000, 1'000'000'000)};
    std::vector<Point> out;
    BenchCheck(pst->QueryTwoSided(q, &out), "query");
    ++ops;
  }
  RegisterIoCounters(state, inner->stats(), ops, "physical_io_per_query");
  RegisterIoCounters(state, pool->stats(), ops, "logical_io_per_query");
  state.counters["hit_rate"] =
      pool->hits() + pool->misses() == 0
          ? 0.0
          : static_cast<double>(pool->hits()) /
                static_cast<double>(pool->hits() + pool->misses());
}
BENCHMARK(BM_Ablation_BufferPool)->Arg(0)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
