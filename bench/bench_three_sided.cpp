// Experiment E5 (Theorem 3.3): 3-sided queries — path-cached vs the
// uncached PST walk vs the B+-tree x-range scan-and-filter.
//
// Expected shape: path-cached I/O ~ log_B n + t/B; the uncached walk pays
// ~2 log_2(n/B) extra; the B+-tree scan pays (x-range selectivity)/B, which
// explodes for wide, y-selective queries.  Space tracks (n/B) log^2 B for
// the cached version (the anchored sibling caches) vs n/B uncached.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/three_sided.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<ThreeSidedPst> cached;
  std::unique_ptr<ThreeSidedPst> uncached;
  std::unique_ptr<XSortedBaseline> scan;
  std::vector<Point> pts;
  std::vector<int64_t> ys_desc;
};

Env* GetEnv(uint64_t n) {
  static std::map<uint64_t, std::unique_ptr<Env>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  env->pts = GenPointsUniform(o);
  env->cached = std::make_unique<ThreeSidedPst>(env->dev.get());
  BenchCheck(env->cached->Build(env->pts), "build cached");
  ThreeSidedPstOptions un;
  un.enable_path_caching = false;
  env->uncached = std::make_unique<ThreeSidedPst>(env->dev.get(), un);
  BenchCheck(env->uncached->Build(env->pts), "build uncached");
  env->scan = std::make_unique<XSortedBaseline>(env->dev.get());
  BenchCheck(env->scan->Build(env->pts), "build scan");
  for (const auto& p : env->pts) env->ys_desc.push_back(p.y);
  std::sort(env->ys_desc.begin(), env->ys_desc.end(), std::greater<>());
  Env* raw = env.get();
  cache[n] = std::move(env);
  return raw;
}

// x-band width in permille of the domain; y edge at the given rank (a high
// rank = low y edge = DEEP corner paths, the regime where the uncached
// walk pays its log_2 n and caches earn their keep).
ThreeSidedQuery MakeQuery(const Env& env, int64_t x_permille,
                          uint64_t y_rank, Rng* rng) {
  int64_t width = 1'000'000'000 / 1000 * x_permille;
  int64_t x1 = rng->UniformRange(0, 1'000'000'000 - width);
  return ThreeSidedQuery{x1, x1 + width, env.ys_desc[y_rank]};
}

template <typename F>
void Run(benchmark::State& state, F&& query_fn) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const int64_t x_permille = state.range(1);
  const uint64_t y_rank =
      std::min<uint64_t>(n - 1, n * static_cast<uint64_t>(state.range(2)) /
                                    100);
  Env* env = GetEnv(n);
  const uint32_t B = RecordsPerPage<Point>(4096);
  Rng rng(23);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    auto q = MakeQuery(*env, x_permille, y_rank, &rng);
    std::vector<Point> out;
    BenchCheck(query_fn(*env, q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
}

void BM_ThreeSided_Cached(benchmark::State& state) {
  Run(state, [](Env& e, const ThreeSidedQuery& q, std::vector<Point>* out) {
    return e.cached->QueryThreeSided(q, out);
  });
  state.counters["storage_blocks"] =
      static_cast<double>(GetEnv(state.range(0))->cached->storage().total());
}
void BM_ThreeSided_Uncached(benchmark::State& state) {
  Run(state, [](Env& e, const ThreeSidedQuery& q, std::vector<Point>* out) {
    return e.uncached->QueryThreeSided(q, out);
  });
  state.counters["storage_blocks"] = static_cast<double>(
      GetEnv(state.range(0))->uncached->storage().total());
}
void BM_ThreeSided_BtreeScan(benchmark::State& state) {
  Run(state, [](Env& e, const ThreeSidedQuery& q, std::vector<Point>* out) {
    return e.scan->QueryThreeSided(q, out);
  });
}

static void Args(benchmark::internal::Benchmark* b) {
  // (n, x-band width in permille, y-edge rank as % of n).
  for (int64_t n : {50'000, 300'000}) {
    b->Args({n, 2, 90});    // narrow band, deep corners: the log_2 n regime
    b->Args({n, 20, 50});   // moderate band and depth
    b->Args({n, 200, 2});   // wide band, y-selective, descendant-dominated
  }
}
BENCHMARK(BM_ThreeSided_Cached)->Apply(Args);
BENCHMARK(BM_ThreeSided_Uncached)->Apply(Args);
BENCHMARK(BM_ThreeSided_BtreeScan)->Apply(Args);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
