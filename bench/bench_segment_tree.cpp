// Experiment E1 (Section 2, Figure 3, Theorem 3.4): stabbing-query I/Os on
// the external segment tree, path caching ON vs OFF, across n.
//
// Expected shape: with caching, reads/query stay ~flat in n at fixed output
// (log_B n + t/B); without caching every underfull cover-list on the
// log_2 n-deep path costs a read, so the OFF curve grows with log_2 n.
// Counters: io_per_query, t_mean, wasteful/useful split, storage_blocks.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/ext_segment_tree.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<ExtSegmentTree> tree;
  std::vector<Interval> ivs;
};

Env* GetEnv(uint64_t n, bool caching) {
  static std::map<std::pair<uint64_t, bool>, std::unique_ptr<Env>> cache;
  auto key = std::make_pair(n, caching);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  IntervalGenOptions o;
  o.n = n;
  o.seed = 42;
  o.domain_max = 10'000'000;
  o.mean_len_frac = 0.001;  // short intervals: underfull cover-lists
  env->ivs = GenIntervalsUniform(o);
  MakeEndpointsDistinct(&env->ivs);
  ExtSegmentTreeOptions opts;
  opts.enable_path_caching = caching;
  env->tree = std::make_unique<ExtSegmentTree>(env->dev.get(), opts);
  BenchCheck(env->tree->Build(env->ivs), "build");
  Env* raw = env.get();
  cache[key] = std::move(env);
  return raw;
}

void RunStab(benchmark::State& state, bool caching) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Env* env = GetEnv(n, caching);
  const uint32_t B = RecordsPerPage<Interval>(4096);

  Rng rng(7);
  const int64_t domain = static_cast<int64_t>(env->ivs.size()) * 4;
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  QueryStats agg;
  for (auto _ : state) {
    std::vector<Interval> out;
    QueryStats qs;
    BenchCheck(env->tree->Stab(rng.UniformRange(0, domain), &out, &qs),
               "stab");
    total_t += out.size();
    agg += qs;
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["wasteful_per_q"] =
      static_cast<double>(agg.wasteful) / static_cast<double>(ops);
  state.counters["useful_per_q"] =
      static_cast<double>(agg.useful) / static_cast<double>(ops);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
  state.counters["log2_n"] = static_cast<double>(CeilLog2(n));
  state.counters["storage_blocks"] =
      static_cast<double>(env->dev->live_pages());
}

void BM_SegTree_PathCached(benchmark::State& state) { RunStab(state, true); }
void BM_SegTree_Naive(benchmark::State& state) { RunStab(state, false); }

BENCHMARK(BM_SegTree_PathCached)
    ->Arg(10'000)
    ->Arg(50'000)
    ->Arg(200'000)
    ->Arg(500'000);
BENCHMARK(BM_SegTree_Naive)
    ->Arg(10'000)
    ->Arg(50'000)
    ->Arg(200'000)
    ->Arg(500'000);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
