// Concurrent query throughput over a file-backed store — the wall-clock
// side of the batching + lock-striped-pool work.
//
// Everything else in bench/ measures COUNTED I/Os on a MemPageDevice (the
// paper's cost model, deterministic and machine-independent).  This harness
// instead measures queries/second with N reader threads sharing one
// ExternalPst + ThreeSidedPst built over a FilePageDevice behind a
// SharedBufferPool:
//
//   * QPS per thread count (1, 2, 4, 8) — warm-pool scaling comes from lock
//     striping; the single inner device stays serialized behind one mutex.
//   * hit_rate — fraction of logical reads absorbed by the pool.
//   * syscalls_saved — preadv coalescing on the cold pass: counted reads
//     that reached the file minus the pread/preadv calls actually issued.
//
// Not a google-benchmark binary: thread sweeps over one shared fixture are
// clearer as a plain main(), and keeping wall-clock timing out of the
// counted-I/O suite keeps EXPERIMENTS.md's tables machine-independent.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "io/file_page_device.h"
#include "io/shared_buffer_pool.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

constexpr uint64_t kPoints = 200'000;
constexpr uint64_t kQueriesPerThread = 1'000;
constexpr uint32_t kShards = 16;
const uint32_t kThreadCounts[] = {1, 2, 4, 8};

struct QuerySet {
  std::vector<TwoSidedQuery> two;
  std::vector<ThreeSidedQuery> three;
};

QuerySet MakeQueries(uint64_t count, uint32_t seed) {
  QuerySet qs;
  Rng rng(seed);
  qs.two.reserve(count);
  qs.three.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    qs.two.push_back(TwoSidedQuery{
        rng.UniformRange(500'000'000, 1'000'000'000),
        rng.UniformRange(800'000'000, 1'000'000'000)});
    const int64_t x1 = rng.UniformRange(0, 900'000'000);
    qs.three.push_back(ThreeSidedQuery{
        x1, x1 + 100'000'000, rng.UniformRange(800'000'000, 1'000'000'000)});
  }
  return qs;
}

// Runs `nthreads` workers concurrently (each gets its thread ordinal) and
// returns aggregate queries/second.  Workers park on an atomic start flag so
// thread spawn cost stays outside the timed region.
template <typename WorkFn>
double RunThreads(uint32_t nthreads, uint64_t queries_per_thread,
                  const WorkFn& work) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(nthreads);
  for (uint32_t t = 0; t < nthreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      work(t);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(nthreads) * queries_per_thread / secs;
}

int Main() {
  const std::string path = "/tmp/pathcache_bench_throughput.bin";
  auto dev = BenchValue(FilePageDevice::Create(path), "create device");

  // The structures are built THROUGH the pool (write-through), so the same
  // handles later serve pooled queries.  Capacity covers the whole store:
  // the warm passes measure lock-striping scalability, not eviction.
  SharedBufferPool pool(dev.get(), /*capacity_pages=*/1 << 20, kShards);

  PointGenOptions o;
  o.n = kPoints;
  o.seed = 42;
  auto points = GenPointsUniform(o);

  ExternalPst pst(&pool);
  BenchCheck(pst.Build(points), "build 2-sided");
  ThreeSidedPst pst3(&pool);
  BenchCheck(pst3.Build(std::move(points)), "build 3-sided");

  // ---- Cold pass (single-threaded): every page read reaches the file;
  // measures preadv coalescing. ----
  pool.ClearAndResetStats();
  dev->ResetStats();
  {
    const QuerySet qs = MakeQueries(kQueriesPerThread, 7);
    for (uint64_t i = 0; i < kQueriesPerThread; ++i) {
      std::vector<Point> out;
      BenchCheck(pst.QueryTwoSided(qs.two[i], &out), "cold 2-sided query");
      out.clear();
      BenchCheck(pst3.QueryThreeSided(qs.three[i], &out),
                 "cold 3-sided query");
    }
  }
  const uint64_t cold_reads = dev->stats().reads;
  const uint64_t cold_syscalls = dev->read_syscalls();
  std::printf(
      "cold pass: file reads=%llu  read syscalls=%llu  "
      "syscalls_saved=%.1f%%  pool hit_rate=%.4f\n\n",
      static_cast<unsigned long long>(cold_reads),
      static_cast<unsigned long long>(cold_syscalls),
      cold_reads == 0
          ? 0.0
          : 100.0 * (cold_reads - cold_syscalls) / cold_reads,
      pool.hits() + pool.misses() == 0
          ? 0.0
          : static_cast<double>(pool.hits()) /
                static_cast<double>(pool.hits() + pool.misses()));

  // ---- Warm sweeps: pool already holds every page the queries touch.
  // Query streams are pre-generated per thread ordinal so the timed region
  // holds only query execution. ----
  uint32_t max_threads = 1;
  for (uint32_t n : kThreadCounts) max_threads = std::max(max_threads, n);
  std::vector<QuerySet> streams;
  streams.reserve(max_threads);
  for (uint32_t t = 0; t < max_threads; ++t) {
    streams.push_back(MakeQueries(kQueriesPerThread, 100 + t));
  }

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  double qps1 = 0.0;
  for (uint32_t nthreads : kThreadCounts) {
    pool.ResetStats();
    dev->ResetStats();
    const double qps = RunThreads(
        nthreads, 2 * kQueriesPerThread, [&](uint32_t t) {
          const QuerySet& qs = streams[t];
          std::vector<Point> out;
          for (uint64_t i = 0; i < kQueriesPerThread; ++i) {
            out.clear();
            BenchCheck(pst.QueryTwoSided(qs.two[i], &out), "2-sided query");
            out.clear();
            BenchCheck(pst3.QueryThreeSided(qs.three[i], &out),
                       "3-sided query");
          }
        });
    if (nthreads == 1) qps1 = qps;
    const uint64_t hits = pool.hits();
    const uint64_t misses = pool.misses();
    std::printf(
        "warm threads=%u  qps=%9.0f  speedup=%.2fx  hit_rate=%.4f  "
        "file reads=%llu\n",
        nthreads, qps, qps1 == 0.0 ? 0.0 : qps / qps1,
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses),
        static_cast<unsigned long long>(dev->stats().reads));
  }
  std::printf(
      "\n(each \"query\" above is one 2-sided plus one 3-sided lookup; "
      "speedup beyond 1 thread requires as many hardware threads)\n");
  return 0;
}

}  // namespace
}  // namespace pathcache

int main() { return pathcache::Main(); }
