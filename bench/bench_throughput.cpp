// Concurrent query throughput over a file-backed store — the wall-clock
// side of the batching + lock-striped-pool + disk-layout work.
//
// Everything else in bench/ measures COUNTED I/Os on a MemPageDevice (the
// paper's cost model, deterministic and machine-independent).  This harness
// instead measures the transport layer under that unchanged cost model,
// with an ExternalPst + ThreeSidedPst built over a FilePageDevice behind a
// SharedBufferPool:
//
//   * Cold ablation (E15): {readahead off/on} x {clustered off/on}, each
//     cell a single-threaded cold-cache pass.  Clustering (io/layout.h)
//     relocates each structure's pages so chains and skeletal levels are
//     disk-contiguous; the preadv coalescing in ReadBatch then folds more
//     counted reads into each syscall, raising syscalls_saved.  Counted
//     file reads are asserted IDENTICAL down each column — layout is
//     invisible to the paper's cost model.
//   * Warm sweeps: QPS per thread count (1, 2, 4, 8) on the clustered
//     store — lock-striping scalability, pool hit rate.
//
// `--json out.json` dumps every number machine-readably (CI uploads it);
// `--points N` / `--queries N` shrink the fixture for smoke runs.
//
// Not a google-benchmark binary: config sweeps over one shared fixture are
// clearer as a plain main(), and keeping wall-clock timing out of the
// counted-I/O suite keeps EXPERIMENTS.md's tables machine-independent.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/persist.h"
#include "core/pst_external.h"
#include "core/three_sided.h"
#include "io/checksum_page_device.h"
#include "io/file_page_device.h"
#include "io/page_codec.h"
#include "io/shared_buffer_pool.h"
#include "kernels/dispatch.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

constexpr uint32_t kShards = 16;
const uint32_t kThreadCounts[] = {1, 2, 4, 8};

struct Options {
  uint64_t points = 200'000;
  uint64_t queries = 1'000;  // per thread, and per cold pass
  bool checksums = false;    // also measure the CRC32C trailer's warm cost
  // E20's skewed workload: Zipf(theta) popularity over the candidate query
  // pool.  --zipf overrides; 0.99 is the YCSB-style default.
  double zipf_theta = 0.99;
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  auto value_of = [&](int* i, const char* flag) -> const char* {
    const size_t len = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, len) != 0) return nullptr;
    if (argv[*i][len] == '=') return argv[*i] + len + 1;
    if (argv[*i][len] == '\0' && *i + 1 < argc) return argv[++*i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* pv = value_of(&i, "--points")) {
      o.points = std::strtoull(pv, nullptr, 10);
    } else if (const char* qv = value_of(&i, "--queries")) {
      o.queries = std::strtoull(qv, nullptr, 10);
    } else if (const char* zv = value_of(&i, "--zipf")) {
      o.zipf_theta = std::strtod(zv, nullptr);
    } else if (const char* jv = value_of(&i, "--json")) {
      o.json_path = jv;
    } else if (std::strcmp(argv[i], "--checksums") == 0) {
      o.checksums = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--queries N] [--checksums] "
                   "[--zipf THETA] [--json out.json]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

struct QuerySet {
  std::vector<TwoSidedQuery> two;
  std::vector<ThreeSidedQuery> three;
};

QuerySet MakeQueries(uint64_t count, uint32_t seed) {
  QuerySet qs;
  Rng rng(seed);
  qs.two.reserve(count);
  qs.three.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    qs.two.push_back(TwoSidedQuery{
        rng.UniformRange(500'000'000, 1'000'000'000),
        rng.UniformRange(800'000'000, 1'000'000'000)});
    const int64_t x1 = rng.UniformRange(0, 900'000'000);
    qs.three.push_back(ThreeSidedQuery{
        x1, x1 + 100'000'000, rng.UniformRange(800'000'000, 1'000'000'000)});
  }
  return qs;
}

// Probe-heavy query set for E20: selectivity tuned so each answer stays
// O(B) records, making the directory descent and in-page bounds — the
// costs the v3 node layout actually changes — the dominant term.  The
// broad-range streams above stay in the measurement for the
// output-dominated regime, where record filtering caps any layout win
// (E19's Amdahl lesson, reported honestly either way).
QuerySet MakeProbeQueries(uint64_t count, uint32_t seed) {
  QuerySet qs;
  Rng rng(seed);
  qs.two.reserve(count);
  qs.three.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    qs.two.push_back(TwoSidedQuery{
        rng.UniformRange(970'000'000, 1'000'000'000),
        rng.UniformRange(970'000'000, 1'000'000'000)});
    const int64_t x1 = rng.UniformRange(0, 990'000'000);
    qs.three.push_back(ThreeSidedQuery{
        x1, x1 + 2'000'000, rng.UniformRange(950'000'000, 1'000'000'000)});
  }
  return qs;
}

// One built store: both structures over one FilePageDevice behind one pool.
// Building THROUGH the pool (write-through) lets the same handles serve
// pooled queries later.
struct Store {
  std::unique_ptr<FilePageDevice> dev;
  std::unique_ptr<ChecksumPageDevice> sum;  // set only with --checksums
  std::unique_ptr<SharedBufferPool> pool;
  std::unique_ptr<ExternalPst> pst;
  std::unique_ptr<ThreeSidedPst> pst3;
  PageId pst_manifest = kInvalidPageId;
  PageId pst3_manifest = kInvalidPageId;
};

Store BuildStore(const std::string& path, const std::vector<Point>& points,
                 bool clustered, bool checksums = false) {
  Store s;
  s.dev = BenchValue(FilePageDevice::Create(path), "create device");
  PageDevice* base = s.dev.get();
  if (checksums) {
    // File -> Checksum -> pool: every page entering the pool is CRC-verified
    // once; warm hits pay nothing extra (see README stacking order).
    s.sum = std::make_unique<ChecksumPageDevice>(base);
    base = s.sum.get();
  }
  // Capacity covers the whole store: warm passes measure lock-striping
  // scalability, not eviction.
  s.pool = std::make_unique<SharedBufferPool>(base,
                                              /*capacity_pages=*/1 << 20,
                                              kShards);
  // Age the allocator the way long-lived stores age: build and destroy a
  // sacrificial pair of structures first.  The real build below then draws
  // every page from the LIFO free list in reverse order, so its chains come
  // out id-descending — zero contig runs, the preadv coalescing can fold
  // nothing.  A freshly created file would be accidentally near-optimal and
  // leave the clustering pass nothing to show.
  {
    ExternalPst tmp(s.pool.get());
    BenchCheck(tmp.Build(points), "age build 2-sided");
    ThreeSidedPst tmp3(s.pool.get());
    BenchCheck(tmp3.Build(points), "age build 3-sided");
    BenchCheck(tmp.Destroy(), "age destroy 2-sided");
    BenchCheck(tmp3.Destroy(), "age destroy 3-sided");
    s.pool->ClearAndResetStats();
  }
  s.pst = std::make_unique<ExternalPst>(s.pool.get());
  BenchCheck(s.pst->Build(points), "build 2-sided");
  s.pst3 = std::make_unique<ThreeSidedPst>(s.pool.get());
  BenchCheck(s.pst3->Build(points), "build 3-sided");
  if (clustered) {
    BenchCheck(s.pst->Cluster(), "cluster 2-sided");
    BenchCheck(s.pst3->Cluster(), "cluster 3-sided");
  }
  // Save manifests so the readahead-off cold passes can reopen the same
  // structures under different query options.
  s.pst_manifest = BenchValue(s.pst->Save(), "save 2-sided");
  s.pst3_manifest = BenchValue(s.pst3->Save(), "save 3-sided");
  return s;
}

struct ColdCell {
  bool clustered = false;
  bool readahead = false;
  uint64_t file_reads = 0;
  uint64_t read_syscalls = 0;
  uint64_t sorted_batches = 0;
  double syscalls_saved_pct = 0.0;
  double hit_rate = 0.0;
};

// Single-threaded cold-cache pass over `queries` 2-sided + 3-sided lookups,
// reopening the saved structures with `readahead` on or off.
ColdCell RunColdPass(Store& s, const QuerySet& qs, bool clustered,
                     bool readahead) {
  ExternalPstOptions o2;
  o2.enable_readahead = readahead;
  ExternalPst pst(s.pool.get(), o2);
  BenchCheck(pst.Open(s.pst_manifest), "open 2-sided");
  ThreeSidedPstOptions o3;
  o3.enable_readahead = readahead;
  ThreeSidedPst pst3(s.pool.get(), o3);
  BenchCheck(pst3.Open(s.pst3_manifest), "open 3-sided");

  s.pool->ClearAndResetStats();
  s.dev->ResetStats();
  std::vector<Point> out;
  for (uint64_t i = 0; i < qs.two.size(); ++i) {
    out.clear();
    BenchCheck(pst.QueryTwoSided(qs.two[i], &out), "cold 2-sided query");
    out.clear();
    BenchCheck(pst3.QueryThreeSided(qs.three[i], &out), "cold 3-sided query");
  }

  ColdCell c;
  c.clustered = clustered;
  c.readahead = readahead;
  c.file_reads = s.dev->stats().reads;
  c.read_syscalls = s.dev->read_syscalls();
  c.sorted_batches = s.dev->sorted_batches();
  c.syscalls_saved_pct =
      c.file_reads == 0
          ? 0.0
          : 100.0 * static_cast<double>(c.file_reads - c.read_syscalls) /
                static_cast<double>(c.file_reads);
  const uint64_t logical = s.pool->hits() + s.pool->misses();
  c.hit_rate = logical == 0 ? 0.0
                            : static_cast<double>(s.pool->hits()) /
                                  static_cast<double>(logical);
  return c;
}

struct WarmRow {
  uint32_t threads = 0;
  double qps = 0.0;
  double speedup = 0.0;
  double hit_rate = 0.0;
  uint64_t file_reads = 0;
};

// Runs `nthreads` workers concurrently (each gets its thread ordinal) and
// returns aggregate queries/second.  Workers park on an atomic start flag so
// thread spawn cost stays outside the timed region.
template <typename WorkFn>
double RunThreads(uint32_t nthreads, uint64_t queries_per_thread,
                  const WorkFn& work) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(nthreads);
  for (uint32_t t = 0; t < nthreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      work(t);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(nthreads) * queries_per_thread / secs;
}

struct KernelAblation {
  const char* tier = "scalar";     // the tier "kernels on" dispatches to
  uint64_t cold_reads_scalar = 0;  // counted reads, kernels forced scalar
  uint64_t cold_reads_kernels = 0; // counted reads, full dispatch tier
  double qps_scalar = 0.0;         // warm 1-thread best-of-5, scalar forced
  double qps_kernels = 0.0;        // warm 1-thread best-of-5, kernels on
  double speedup = 0.0;
};

struct E20Row {
  const char* structure;  // "2-sided" | "3-sided"
  const char* workload;   // "uniform" | "zipf"
  double qps_v2 = 0.0;    // interleaved pages (pre-v4 writers)
  double qps_v3 = 0.0;    // packed cache-line pages (the default)
  double speedup = 0.0;   // qps_v3 / qps_v2
};

struct E20Result {
  double theta = 0.0;
  uint64_t cold_reads_v2 = 0;  // asserted == cold_reads_v3
  uint64_t cold_reads_v3 = 0;
  bool uring_available = false;
  uint64_t cold_reads_preadv = 0;  // asserted == cold_reads_uring
  uint64_t cold_reads_uring = 0;
  std::vector<E20Row> rows;
};

struct ChecksumResult {
  bool enabled = false;
  double qps_plain = 0.0;       // contemporaneous 1-thread warm baseline
  double qps_checksummed = 0.0; // same pass through File -> Checksum -> pool
  double overhead_pct = 0.0;    // target: < 3% (E16)
  uint64_t pages_verified = 0;
};

void WriteJson(const Options& opt, const std::vector<ColdCell>& cold,
               const std::vector<WarmRow>& warm, const KernelAblation& ka,
               const ChecksumResult& sum, const E20Result& e20) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL cannot open %s for writing\n",
                 opt.json_path.c_str());
    std::abort();
  }
  JsonWriter w(f);
  w.BeginObject();
  w.Key("bench").Str("bench_throughput");
  w.Key("points").Uint(opt.points);
  w.Key("queries_per_thread").Uint(opt.queries);
  w.Key("cold_ablation").BeginArray();
  for (const ColdCell& c : cold) {
    w.BeginObject();
    w.Key("clustered").Bool(c.clustered);
    w.Key("readahead").Bool(c.readahead);
    w.Key("file_reads").Uint(c.file_reads);
    w.Key("read_syscalls").Uint(c.read_syscalls);
    w.Key("sorted_batches").Uint(c.sorted_batches);
    w.Key("syscalls_saved_pct").Double(c.syscalls_saved_pct);
    w.Key("hit_rate").Double(c.hit_rate);
    w.EndObject();
  }
  w.EndArray();
  w.Key("warm_sweep").BeginArray();
  for (const WarmRow& r : warm) {
    w.BeginObject();
    w.Key("threads").Uint(r.threads);
    w.Key("qps").Double(r.qps);
    w.Key("speedup").Double(r.speedup);
    w.Key("hit_rate").Double(r.hit_rate);
    w.Key("file_reads").Uint(r.file_reads);
    w.EndObject();
  }
  w.EndArray();
  w.Key("kernel_ablation").BeginObject();
  w.Key("tier").Str(ka.tier);
  w.Key("cold_file_reads_scalar").Uint(ka.cold_reads_scalar);
  w.Key("cold_file_reads_kernels").Uint(ka.cold_reads_kernels);
  w.Key("warm_qps_scalar").Double(ka.qps_scalar);
  w.Key("warm_qps_kernels").Double(ka.qps_kernels);
  w.Key("kernel_speedup").Double(ka.speedup);
  w.EndObject();
  if (sum.enabled) {
    w.Key("checksum_overhead").BeginObject();
    w.Key("qps_plain").Double(sum.qps_plain);
    w.Key("qps_checksummed").Double(sum.qps_checksummed);
    w.Key("checksum_overhead_pct").Double(sum.overhead_pct);
    w.Key("pages_verified").Uint(sum.pages_verified);
    w.EndObject();
  }
  w.Key("e20_codec_async").BeginObject();
  w.Key("zipf_theta").Double(e20.theta);
  w.Key("cold_file_reads_interleaved").Uint(e20.cold_reads_v2);
  w.Key("cold_file_reads_packed").Uint(e20.cold_reads_v3);
  w.Key("uring_available").Bool(e20.uring_available);
  w.Key("cold_file_reads_preadv").Uint(e20.cold_reads_preadv);
  w.Key("cold_file_reads_uring").Uint(e20.cold_reads_uring);
  w.Key("rows").BeginArray();
  for (const E20Row& r : e20.rows) {
    w.BeginObject();
    w.Key("structure").Str(r.structure);
    w.Key("workload").Str(r.workload);
    w.Key("qps_interleaved").Double(r.qps_v2);
    w.Key("qps_packed").Double(r.qps_v3);
    w.Key("speedup").Double(r.speedup);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

int Main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);

  PointGenOptions po;
  po.n = opt.points;
  po.seed = 42;
  const auto points = GenPointsUniform(po);
  const QuerySet cold_qs = MakeQueries(opt.queries, 7);

  // ---- Cold 2x2 ablation: readahead x clustering.  One build per layout;
  // the readahead toggle reopens the saved structures. ----
  std::vector<ColdCell> cold;
  Store clustered_store;
  for (bool clustered : {false, true}) {
    const std::string path = std::string("/tmp/pathcache_bench_throughput") +
                             (clustered ? ".clustered.bin" : ".plain.bin");
    Store s = BuildStore(path, points, clustered);
    for (bool readahead : {false, true}) {
      cold.push_back(RunColdPass(s, cold_qs, clustered, readahead));
      const ColdCell& c = cold.back();
      std::printf(
          "cold clustered=%d readahead=%d: file reads=%llu  "
          "read syscalls=%llu  syscalls_saved=%.1f%%  hit_rate=%.4f\n",
          c.clustered ? 1 : 0, c.readahead ? 1 : 0,
          static_cast<unsigned long long>(c.file_reads),
          static_cast<unsigned long long>(c.read_syscalls),
          c.syscalls_saved_pct, c.hit_rate);
    }
    if (clustered) clustered_store = std::move(s);
  }

  // Layout is invisible to the paper's cost model: each readahead column
  // must show identical counted file reads with and without clustering.
  for (size_t i = 0; i < 2; ++i) {
    if (cold[i].file_reads != cold[i + 2].file_reads) {
      std::fprintf(stderr,
                   "FATAL counted reads differ with clustering: "
                   "readahead=%d %llu vs %llu\n",
                   cold[i].readahead ? 1 : 0,
                   static_cast<unsigned long long>(cold[i].file_reads),
                   static_cast<unsigned long long>(cold[i + 2].file_reads));
      std::abort();
    }
  }
  std::printf("counted file reads identical across layouts (asserted)\n\n");

  // ---- Warm sweeps on the clustered store: pool already holds every page
  // the queries touch.  Query streams are pre-generated per thread ordinal
  // so the timed region holds only query execution. ----
  Store& s = clustered_store;
  uint32_t max_threads = 1;
  for (uint32_t n : kThreadCounts) max_threads = std::max(max_threads, n);
  std::vector<QuerySet> streams;
  streams.reserve(max_threads);
  for (uint32_t t = 0; t < max_threads; ++t) {
    streams.push_back(MakeQueries(opt.queries, 100 + t));
  }

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::vector<WarmRow> warm;
  double qps1 = 0.0;
  for (uint32_t nthreads : kThreadCounts) {
    s.pool->ResetStats();
    s.dev->ResetStats();
    const double qps = RunThreads(nthreads, 2 * opt.queries, [&](uint32_t t) {
      const QuerySet& qs = streams[t];
      std::vector<Point> out;
      for (uint64_t i = 0; i < qs.two.size(); ++i) {
        out.clear();
        BenchCheck(s.pst->QueryTwoSided(qs.two[i], &out), "2-sided query");
        out.clear();
        BenchCheck(s.pst3->QueryThreeSided(qs.three[i], &out),
                   "3-sided query");
      }
    });
    if (nthreads == 1) qps1 = qps;
    const uint64_t hits = s.pool->hits();
    const uint64_t misses = s.pool->misses();
    WarmRow row;
    row.threads = nthreads;
    row.qps = qps;
    row.speedup = qps1 == 0.0 ? 0.0 : qps / qps1;
    row.hit_rate = hits + misses == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(hits + misses);
    row.file_reads = s.dev->stats().reads;
    warm.push_back(row);
    std::printf(
        "warm threads=%u  qps=%9.0f  speedup=%.2fx  hit_rate=%.4f  "
        "file reads=%llu\n",
        row.threads, row.qps, row.speedup, row.hit_rate,
        static_cast<unsigned long long>(row.file_reads));
  }
  std::printf(
      "\n(each \"query\" above is one 2-sided plus one 3-sided lookup; "
      "speedup beyond 1 thread requires as many hardware threads)\n");

  // ---- Kernel ablation (E19): the same pass with the SIMD kernels forced
  // to the scalar tier vs the full dispatch tier.  Two claims: (1) kernels
  // change NO counted I/O — a cold pass per tier must read the identical
  // number of pages (the first-match family returns the same scan prefix on
  // every tier, see kernels/search.h) — and (2) warm QPS improves, since a
  // warm pass is all in-page work.  Warm timing is alternating best-of-5
  // for the same reason as the checksum comparison below. ----
  KernelAblation ka;
  ka.tier = kernels::TierName(kernels::DetectedTier());
  auto warm_pass = [&](uint32_t t) {
    const QuerySet& qs = streams[t];
    std::vector<Point> out;
    for (uint64_t i = 0; i < qs.two.size(); ++i) {
      out.clear();
      BenchCheck(s.pst->QueryTwoSided(qs.two[i], &out), "e19 2-sided");
      out.clear();
      BenchCheck(s.pst3->QueryThreeSided(qs.three[i], &out), "e19 3-sided");
    }
  };
  kernels::ForceTier(kernels::Tier::kScalar);
  s.pool->ClearAndResetStats();
  s.dev->ResetStats();
  warm_pass(0);
  ka.cold_reads_scalar = s.dev->stats().reads;
  kernels::ResetTier();
  s.pool->ClearAndResetStats();
  s.dev->ResetStats();
  warm_pass(0);
  ka.cold_reads_kernels = s.dev->stats().reads;
  if (ka.cold_reads_scalar != ka.cold_reads_kernels) {
    std::fprintf(stderr,
                 "FATAL counted reads differ across kernel tiers: "
                 "scalar=%llu %s=%llu\n",
                 static_cast<unsigned long long>(ka.cold_reads_scalar),
                 ka.tier,
                 static_cast<unsigned long long>(ka.cold_reads_kernels));
    std::abort();
  }
  for (int round = 0; round < 5; ++round) {
    kernels::ForceTier(kernels::Tier::kScalar);
    ka.qps_scalar = std::max(
        ka.qps_scalar,
        RunThreads(1, 2 * opt.queries, [&](uint32_t) { warm_pass(0); }));
    kernels::ResetTier();
    ka.qps_kernels = std::max(
        ka.qps_kernels,
        RunThreads(1, 2 * opt.queries, [&](uint32_t) { warm_pass(0); }));
  }
  ka.speedup = ka.qps_scalar == 0.0 ? 0.0 : ka.qps_kernels / ka.qps_scalar;
  std::printf(
      "\nkernels (E19): tier=%s  counted reads identical (asserted, "
      "%llu)  warm qps scalar=%9.0f  kernels=%9.0f  speedup=%.3fx\n",
      ka.tier, static_cast<unsigned long long>(ka.cold_reads_kernels),
      ka.qps_scalar, ka.qps_kernels, ka.speedup);

  // ---- Checksum overhead (E16): the same warm single-threaded pass on a
  // clustered store read through File -> Checksum -> pool.  Every page is
  // CRC-verified exactly once on its way into the pool; warm hits bypass the
  // trailer entirely, so the steady-state overhead should stay under 3%. ----
  ChecksumResult sumres;
  if (opt.checksums) {
    Store cs = BuildStore("/tmp/pathcache_bench_throughput.sum.bin", points,
                          /*clustered=*/true, /*checksums=*/true);
    auto run_once = [&](Store& st) {
      const QuerySet& qs = streams[0];
      std::vector<Point> out;
      for (uint64_t i = 0; i < qs.two.size(); ++i) {
        out.clear();
        BenchCheck(st.pst->QueryTwoSided(qs.two[i], &out), "sum 2-sided");
        out.clear();
        BenchCheck(st.pst3->QueryThreeSided(qs.three[i], &out), "sum 3-sided");
      }
    };
    cs.pool->ClearAndResetStats();  // drop build-time frames
    run_once(cs);  // fill the pool: verification cost paid here, once
    sumres.enabled = true;
    // Alternating best-of-5: the true warm delta (hits never reach the
    // trailer) is far below scheduler noise on a shared machine, so a
    // single pass per stack can report either sign.  Best-of filters the
    // noise floor; alternation keeps thermal drift from biasing one side.
    for (int round = 0; round < 5; ++round) {
      sumres.qps_checksummed = std::max(
          sumres.qps_checksummed,
          RunThreads(1, 2 * opt.queries, [&](uint32_t) { run_once(cs); }));
      sumres.qps_plain = std::max(
          sumres.qps_plain,
          RunThreads(1, 2 * opt.queries, [&](uint32_t) { run_once(s); }));
    }
    sumres.overhead_pct =
        sumres.qps_plain == 0.0
            ? 0.0
            : 100.0 * (sumres.qps_plain - sumres.qps_checksummed) /
                  sumres.qps_plain;
    sumres.pages_verified = cs.sum->pages_verified();
    std::printf(
        "\nchecksums: warm qps plain=%9.0f  checksummed=%9.0f  "
        "overhead=%.2f%%  pages_verified=%llu  (target < 3%%)\n",
        sumres.qps_plain, sumres.qps_checksummed, sumres.overhead_pct,
        static_cast<unsigned long long>(sumres.pages_verified));
  }

  // ---- Page-format + async-readahead ablation (E20): the identical store
  // built with the packed v3 codec forced OFF — the pages a pre-v4 writer
  // lays down — against the default.  Three claims:
  //   (1) cold counted reads are bit-identical codec-on/off: the packed
  //       layout never changes per-page capacity (io/page_codec.h), so the
  //       paper's cost model cannot see it;
  //   (2) cold counted reads are bit-identical preadv vs async io_uring:
  //       the ring is a transport, readahead is counted at batch
  //       granularity either way;
  //   (3) warm single-thread per-structure QPS, uniform and Zipf-skewed,
  //       best-of-5 with v2/v3 alternation (same noise rules as E16).
  //       Honest-null reporting: every cell prints even when its speedup
  //       rounds to 1.00x — the claim lives or dies per structure.
  E20Result e20;
  e20.theta = opt.zipf_theta;
  codec::SetPackedPagesEnabled(0);
  Store v2 = BuildStore("/tmp/pathcache_bench_throughput.v2.bin", points,
                        /*clustered=*/true);
  codec::SetPackedPagesEnabled(-1);

  e20.cold_reads_v3 = RunColdPass(s, cold_qs, true, true).file_reads;
  e20.cold_reads_v2 = RunColdPass(v2, cold_qs, true, true).file_reads;
  if (e20.cold_reads_v2 != e20.cold_reads_v3) {
    std::fprintf(stderr,
                 "FATAL counted reads differ across page codecs: "
                 "interleaved=%llu packed=%llu\n",
                 static_cast<unsigned long long>(e20.cold_reads_v2),
                 static_cast<unsigned long long>(e20.cold_reads_v3));
    std::abort();
  }
  std::printf(
      "\ne20: counted cold reads identical codec-on/off (asserted, %llu)\n",
      static_cast<unsigned long long>(e20.cold_reads_v3));

  // preadv vs io_uring over the same clustered v3 bytes: reopen the file
  // through a fresh device per backend and replay the cold pass.
  auto cold_with_backend = [&](FilePageDevice::ReadBackend be,
                               bool* supported) -> uint64_t {
    auto dev = BenchValue(
        FilePageDevice::Open("/tmp/pathcache_bench_throughput.clustered.bin"),
        "reopen clustered store");
    if (!dev->SetReadBackend(be).ok()) {
      *supported = false;
      return 0;
    }
    *supported = true;
    SharedBufferPool pool(dev.get(), /*capacity_pages=*/1 << 20, kShards);
    ExternalPstOptions o2;
    o2.enable_readahead = true;
    ExternalPst pst(&pool, o2);
    BenchCheck(pst.Open(s.pst_manifest), "e20 reopen 2-sided");
    ThreeSidedPstOptions o3;
    o3.enable_readahead = true;
    ThreeSidedPst pst3(&pool, o3);
    BenchCheck(pst3.Open(s.pst3_manifest), "e20 reopen 3-sided");
    dev->ResetStats();  // count the query pass, not the manifest opens
    std::vector<Point> out;
    for (uint64_t i = 0; i < cold_qs.two.size(); ++i) {
      out.clear();
      BenchCheck(pst.QueryTwoSided(cold_qs.two[i], &out), "e20 cold 2-sided");
      out.clear();
      BenchCheck(pst3.QueryThreeSided(cold_qs.three[i], &out),
                 "e20 cold 3-sided");
    }
    return dev->stats().reads;
  };
  bool preadv_ok = false;
  e20.cold_reads_preadv =
      cold_with_backend(FilePageDevice::ReadBackend::kPreadv, &preadv_ok);
  if (!preadv_ok) {
    std::fprintf(stderr, "FATAL preadv backend refused on a reopened store\n");
    std::abort();
  }
  e20.cold_reads_uring = cold_with_backend(FilePageDevice::ReadBackend::kIoUring,
                                           &e20.uring_available);
  if (e20.uring_available) {
    if (e20.cold_reads_preadv != e20.cold_reads_uring) {
      std::fprintf(stderr,
                   "FATAL counted reads differ across read backends: "
                   "preadv=%llu io_uring=%llu\n",
                   static_cast<unsigned long long>(e20.cold_reads_preadv),
                   static_cast<unsigned long long>(e20.cold_reads_uring));
      std::abort();
    }
    std::printf(
        "e20: counted cold reads identical preadv vs io_uring (asserted, "
        "%llu)\n",
        static_cast<unsigned long long>(e20.cold_reads_uring));
  } else {
    std::printf("e20: io_uring unavailable here; backend parity not run "
                "(preadv cold reads %llu)\n",
                static_cast<unsigned long long>(e20.cold_reads_preadv));
  }

  // Warm per-structure sweeps over two candidate pools.  The probe-heavy
  // pool keeps every answer at O(B) records, so the descent + in-page
  // bounds the v3 layout changes dominate each query; it runs uniformly
  // indexed and Zipf(theta)-skewed (same queries, different popularity).
  // The broad-range pool (the regular warm stream) keeps the
  // output-dominated regime in the record — there, per-record filtering
  // caps any layout win and a near-null speedup is the expected, honest
  // result (E19's Amdahl lesson).
  const QuerySet cand = MakeProbeQueries(opt.queries, 21);
  const QuerySet& broad = streams[0];
  std::vector<size_t> uniform_idx(cand.two.size());
  for (size_t i = 0; i < uniform_idx.size(); ++i) uniform_idx[i] = i;
  std::vector<size_t> broad_idx(broad.two.size());
  for (size_t i = 0; i < broad_idx.size(); ++i) broad_idx[i] = i;
  const std::vector<size_t> zipf_idx =
      ZipfIndexStream(cand.two.size(), cand.two.size(), opt.zipf_theta, 99);

  auto pass_two = [&](Store& st, const QuerySet& qs,
                      const std::vector<size_t>& idx) {
    std::vector<Point> out;
    for (size_t i : idx) {
      out.clear();
      BenchCheck(st.pst->QueryTwoSided(qs.two[i], &out), "e20 2-sided");
    }
  };
  auto pass_three = [&](Store& st, const QuerySet& qs,
                        const std::vector<size_t>& idx) {
    std::vector<Point> out;
    for (size_t i : idx) {
      out.clear();
      BenchCheck(st.pst3->QueryThreeSided(qs.three[i], &out), "e20 3-sided");
    }
  };
  // Warm both pools back up after the cold passes above.
  for (Store* st : {&v2, &s}) {
    pass_two(*st, cand, uniform_idx);
    pass_three(*st, cand, uniform_idx);
    pass_two(*st, broad, broad_idx);
    pass_three(*st, broad, broad_idx);
  }

  e20.rows = {{"2-sided", "uniform"}, {"2-sided", "zipf"},
              {"2-sided", "broad"},   {"3-sided", "uniform"},
              {"3-sided", "zipf"},    {"3-sided", "broad"}};
  for (int round = 0; round < 5; ++round) {
    for (E20Row& row : e20.rows) {
      const bool is_broad = std::strcmp(row.workload, "broad") == 0;
      const QuerySet& qs = is_broad ? broad : cand;
      const std::vector<size_t>& idx =
          is_broad ? broad_idx
                   : (std::strcmp(row.workload, "zipf") == 0 ? zipf_idx
                                                             : uniform_idx);
      const bool two = std::strcmp(row.structure, "2-sided") == 0;
      auto time_pass = [&](Store& st) {
        return RunThreads(1, idx.size(), [&](uint32_t) {
          if (two) {
            pass_two(st, qs, idx);
          } else {
            pass_three(st, qs, idx);
          }
        });
      };
      row.qps_v2 = std::max(row.qps_v2, time_pass(v2));
      row.qps_v3 = std::max(row.qps_v3, time_pass(s));
    }
  }
  for (E20Row& row : e20.rows) {
    row.speedup = row.qps_v2 == 0.0 ? 0.0 : row.qps_v3 / row.qps_v2;
    std::printf(
        "e20 %-8s %-8s  warm qps interleaved=%9.0f  packed=%9.0f  "
        "speedup=%.3fx\n",
        row.structure, row.workload, row.qps_v2, row.qps_v3, row.speedup);
  }

  if (!opt.json_path.empty()) WriteJson(opt, cold, warm, ka, sumres, e20);
  return 0;
}

}  // namespace
}  // namespace pathcache

int main(int argc, char** argv) { return pathcache::Main(argc, argv); }
