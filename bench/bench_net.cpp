// E22 — Network serving: wall-clock QPS and end-to-end latency through the
// binary TCP front-end (src/net), plus the overload contract.
//
// Where E17 measured the QueryEngine with callers in the same process, this
// harness pays the full serving bill: frame encode + CRC32C on the client,
// loopback TCP, the server's epoll loop, decode + CRC check, engine queue,
// worker execution, response encode, and the trip back.  The load generator
// is open-loop per connection: a sender thread issues requests on its own
// schedule (paced by --rate, or as fast as the pipeline window allows when
// unpaced) while a separate receiver thread drains responses, so slow
// responses cannot throttle the offered load the way a call-and-wait client
// would.  Latency is measured send-to-receive per request and accumulated
// into the same power-of-two LatencyHistogram the engine uses internally,
// so the reported p50/p95/p99 are comparable with E17's engine-side tails.
//
// Two segments:
//
//   * Warm sweep: QPS vs engine worker count {1, 2, 4} over a mixed
//     2-sided + stabbing candidate pool on a RAM-backed store, C
//     connections each keeping up to D requests in flight.  --zipf THETA
//     skews which candidate each request replays (ZipfIndexStream), so the
//     hot-key concentration real traffic has is one flag away.
//   * Overload: a tiny-queue 1-worker engine is hit with a pipelined burst
//     of full-domain scans.  The assertion is the protocol contract, not a
//     number: some requests must come back RETRY_AFTER, every RETRY_AFTER
//     must succeed on retry, and the server must not have dropped the
//     connection (connections_closed stays 0).
//
// E23 (--shards N) adds a third segment: the same candidate pool served
// through a ShardRouter over N shard stacks behind the same TCP front-end,
// so the scatter-gather cost shows up in end-to-end tails next to the
// single-engine rows.  A per-tenant mix rides along on the wire: a starved
// tenant (admission quota 0, bound per-connection via SET_TENANT) must see
// every request answered RETRY_AFTER while a quiet tenant on a second
// connection completes the identical stream — both asserted.
//
// `--json out.json` dumps both segments machine-readably (the CI artifact);
// `--check-qps MIN` gates the 4-worker row for regression runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/latency_histogram.h"
#include "serve/query_engine.h"
#include "shard/shard_router.h"
#include "shard/sharded_store.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

using net::MsgType;
using net::NetClient;
using net::NetServer;
using net::NetServerOptions;
using net::NetServerStats;
using net::Request;
using net::Response;

const uint32_t kWorkerCounts[] = {1, 2, 4};
constexpr size_t kCandidatePool = 4096;

struct Options {
  uint64_t points = 150'000;
  uint64_t intervals = 100'000;
  uint64_t requests = 20'000;  // per connection, per warm-sweep cell
  uint32_t connections = 8;
  uint32_t pipeline = 32;  // per-connection in-flight window
  double rate = 0.0;       // per-connection offered QPS; 0 = unpaced
  double zipf_theta = 0.0;
  double check_qps = 0.0;  // gate on the 4-worker row; 0 disables
  uint32_t shards = 0;     // --shards N: run the E23 sharded segment
  std::string json_path;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  auto value_of = [&](int* i, const char* flag) -> const char* {
    const size_t len = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, len) != 0) return nullptr;
    if (argv[*i][len] == '=') return argv[*i] + len + 1;
    if (argv[*i][len] == '\0' && *i + 1 < argc) return argv[++*i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of(&i, "--points")) {
      o.points = std::strtoull(v, nullptr, 10);
    } else if (const char* v2 = value_of(&i, "--intervals")) {
      o.intervals = std::strtoull(v2, nullptr, 10);
    } else if (const char* v3 = value_of(&i, "--requests")) {
      o.requests = std::strtoull(v3, nullptr, 10);
    } else if (const char* v4 = value_of(&i, "--connections")) {
      o.connections = static_cast<uint32_t>(std::strtoul(v4, nullptr, 10));
    } else if (const char* v5 = value_of(&i, "--pipeline")) {
      o.pipeline = static_cast<uint32_t>(std::strtoul(v5, nullptr, 10));
    } else if (const char* v6 = value_of(&i, "--rate")) {
      o.rate = std::strtod(v6, nullptr);
    } else if (const char* v7 = value_of(&i, "--zipf")) {
      o.zipf_theta = std::strtod(v7, nullptr);
    } else if (const char* v8 = value_of(&i, "--check-qps")) {
      o.check_qps = std::strtod(v8, nullptr);
    } else if (const char* v9 = value_of(&i, "--json")) {
      o.json_path = v9;
    } else if (const char* v10 = value_of(&i, "--shards")) {
      o.shards = static_cast<uint32_t>(std::strtoul(v10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--intervals N] [--requests N] "
                   "[--connections C] [--pipeline D] [--rate QPS] "
                   "[--zipf THETA] [--check-qps MIN] [--shards N] "
                   "[--json out.json]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (o.pipeline == 0) o.pipeline = 1;
  if (o.connections == 0) o.connections = 1;
  return o;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Store {
  MemPageDevice dev{4096};
  std::unique_ptr<SharedBufferPool> pool;
  PageId pst_manifest = kInvalidPageId;
  PageId seg_manifest = kInvalidPageId;
};

void BuildStore(const Options& opt, Store* s) {
  s->pool = std::make_unique<SharedBufferPool>(&s->dev,
                                               /*capacity_pages=*/1 << 18);
  PointGenOptions po;
  po.n = opt.points;
  po.seed = 42;
  {
    ExternalPst pst(s->pool.get());
    BenchCheck(pst.Build(GenPointsUniform(po)), "build 2-sided");
    s->pst_manifest = BenchValue(pst.Save(), "save 2-sided");
  }
  IntervalGenOptions io;
  io.n = opt.intervals;
  io.seed = 43;
  {
    auto ivs = GenIntervalsUniform(io);
    MakeEndpointsDistinct(&ivs);
    ExtSegmentTree st(s->pool.get());
    BenchCheck(st.Build(ivs), "build segment tree");
    s->seg_manifest = BenchValue(st.Save(), "save segment tree");
  }
}

// Even slots query the 2-sided structure, odd slots stab the segment tree.
// The 2-sided corners sit deep in the top-right so the average answer is a
// few dozen points — the "fetch my handful of matches" shape network
// serving exists for.  (E17's wide scans would make this a memcpy/loopback
// bandwidth bench: at its ~4k-point average answer every request moves
// ~100 KB of payload.)  Structure ids follow registration order (0 pst,
// 1 seg).
std::vector<Request> MakeCandidates() {
  std::vector<Request> pool;
  pool.reserve(kCandidatePool);
  Rng rng(7);
  for (size_t i = 0; i < kCandidatePool; ++i) {
    Request r;
    if (i % 2 == 0) {
      r.type = MsgType::kQueryTwoSided;
      r.structure_id = 0;
      r.two_sided = TwoSidedQuery{rng.UniformRange(960'000'000, 1'000'000'000),
                                  rng.UniformRange(960'000'000,
                                                   1'000'000'000)};
    } else {
      r.type = MsgType::kQueryStab;
      r.structure_id = 1;
      r.stab = rng.UniformRange(0, 1'000'000'000);
    }
    pool.push_back(r);
  }
  return pool;
}

// One connection of the open-loop generator: the sender paces Send() calls
// and stamps each with its send time; the receiver drains responses (the
// server answers in order, so timestamps pop FIFO) into the histogram.
// The pipeline window bounds memory, not pacing — when it is full the
// sender blocks, which an open-loop run reports as inflated latency rather
// than silently shedding offered load.
void RunConnection(uint16_t port, const std::vector<Request>& candidates,
                   const std::vector<size_t>& stream, uint32_t window,
                   double rate, LatencyHistogram* hist,
                   std::atomic<bool>* failed) {
  NetClient client;
  Status st = client.Connect("127.0.0.1", port);
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL connect: %s\n", st.ToString().c_str());
    failed->store(true);
    return;
  }

  std::mutex mu;
  std::condition_variable room;
  std::deque<uint64_t> send_times;

  std::thread receiver([&] {
    for (size_t i = 0; i < stream.size(); ++i) {
      Response resp;
      Status rs = client.Receive(&resp);
      if (!rs.ok() ||
          (resp.type != MsgType::kPoints && resp.type != MsgType::kIntervals &&
           resp.type != MsgType::kPong)) {
        std::fprintf(stderr, "FATAL receive: %s (type 0x%02x)\n",
                     rs.ToString().c_str(), unsigned(resp.type));
        failed->store(true);
        room.notify_all();
        return;
      }
      uint64_t sent;
      {
        std::lock_guard<std::mutex> lk(mu);
        sent = send_times.front();
        send_times.pop_front();
      }
      hist->Record(NowUs() - sent);
      room.notify_one();
    }
  });

  const uint64_t start = NowUs();
  const double interval_us = rate > 0.0 ? 1e6 / rate : 0.0;
  for (size_t i = 0; i < stream.size() && !failed->load(); ++i) {
    if (interval_us > 0.0) {
      const uint64_t due =
          start + static_cast<uint64_t>(interval_us * double(i));
      uint64_t now = NowUs();
      if (now < due) {
        std::this_thread::sleep_for(std::chrono::microseconds(due - now));
      }
    }
    {
      std::unique_lock<std::mutex> lk(mu);
      room.wait(lk, [&] {
        return send_times.size() < window || failed->load();
      });
      if (failed->load()) break;
      send_times.push_back(NowUs());
    }
    Status ss = client.Send(candidates[stream[i]]);
    if (!ss.ok()) {
      std::fprintf(stderr, "FATAL send: %s\n", ss.ToString().c_str());
      failed->store(true);
      break;
    }
  }
  receiver.join();
}

struct WarmRow {
  uint32_t workers = 0;
  double qps = 0.0;
  uint64_t completed = 0;
  LatencyHistogram::Snapshot latency;
};

WarmRow RunWarm(Store& s, const Options& opt,
                const std::vector<Request>& candidates, uint32_t workers) {
  QueryEngineOptions eopts;
  eopts.num_workers = workers;
  eopts.queue_capacity = 4096;
  eopts.batch_size = 8;
  QueryEngine engine(s.pool.get(), eopts);
  BenchCheck(engine.AddStructure(s.pst_manifest).ToStatus(),
             "register 2-sided");
  BenchCheck(engine.AddStructure(s.seg_manifest).ToStatus(), "register stab");
  BenchCheck(engine.Start(), "start engine");
  NetServer server(&engine);
  BenchCheck(server.Start(), "start server");

  // Per-connection replay streams over the shared candidate pool.  Theta=0
  // degenerates to uniform, so one code path covers both.
  std::vector<std::vector<size_t>> streams;
  for (uint32_t c = 0; c < opt.connections; ++c) {
    streams.push_back(ZipfIndexStream(kCandidatePool, opt.requests,
                                      opt.zipf_theta, 100 + c));
  }

  auto run_pass = [&](uint64_t requests_per_conn,
                      LatencyHistogram* hist) -> double {
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    const uint64_t t0 = NowUs();
    for (uint32_t c = 0; c < opt.connections; ++c) {
      const std::vector<size_t>& full = streams[c];
      threads.emplace_back([&, c, requests_per_conn] {
        std::vector<size_t> cut(full.begin(),
                                full.begin() +
                                    std::min<size_t>(requests_per_conn,
                                                     full.size()));
        RunConnection(server.port(), candidates, cut, opt.pipeline, opt.rate,
                      hist, &failed);
      });
    }
    for (auto& t : threads) t.join();
    const double secs = double(NowUs() - t0) / 1e6;
    if (failed.load()) {
      std::fprintf(stderr, "FATAL warm pass failed at %u workers\n", workers);
      std::abort();
    }
    return secs;
  };

  LatencyHistogram warm_hist;
  run_pass(std::max<uint64_t>(opt.requests / 8, 256), &warm_hist);  // warm

  LatencyHistogram hist;
  const double secs = run_pass(opt.requests, &hist);

  WarmRow row;
  row.workers = workers;
  row.completed = uint64_t(opt.connections) * opt.requests;
  row.qps = double(row.completed) / secs;
  row.latency = hist.TakeSnapshot();
  server.Stop();
  engine.Stop();
  return row;
}

struct OverloadRow {
  uint64_t burst = 0;
  uint64_t retry_after = 0;  // RETRY_AFTER responses in the first pass
  uint64_t retries = 0;      // resends needed until everything completed
  uint64_t connections_closed = 0;
};

// The overload contract, end to end: a 1-worker engine with a 2-slot queue
// cannot absorb a pipelined burst of full-domain scans, so the server must
// answer the excess with RETRY_AFTER — same connection, in order — and a
// client that honors the hint must eventually complete every request.
OverloadRow RunOverload(Store& s, const Options& opt) {
  QueryEngineOptions eopts;
  eopts.num_workers = 1;
  eopts.queue_capacity = 2;
  eopts.batch_size = 1;
  QueryEngine engine(s.pool.get(), eopts);
  BenchCheck(engine.AddStructure(s.pst_manifest).ToStatus(),
             "register 2-sided");
  BenchCheck(engine.Start(), "start engine");
  NetServerOptions sopts;
  sopts.retry_after_micros = 500;
  NetServer server(&engine, sopts);
  BenchCheck(server.Start(), "start server");

  NetClient client;
  BenchCheck(client.Connect("127.0.0.1", server.port()), "connect");

  // Each burst query must be expensive enough that a 1-worker engine cannot
  // drain the queue between two decode-time submits: aim the corner so the
  // answer is ~min(points/2, 50k) points — milliseconds of merge + encode
  // per request, while staying under the frame payload cap however large
  // --points is.
  const double frac =
      std::min(0.5, 50'000.0 / static_cast<double>(opt.points));
  Request heavy;
  heavy.type = MsgType::kQueryTwoSided;
  heavy.structure_id = 0;
  heavy.two_sided = TwoSidedQuery{
      0, static_cast<int64_t>(1e9 * (1.0 - frac))};

  OverloadRow row;
  row.burst = 16;
  uint64_t outstanding = row.burst;
  for (uint64_t i = 0; i < row.burst; ++i) {
    BenchCheck(client.Send(heavy), "overload send");
  }
  bool first_pass = true;
  while (outstanding > 0) {
    uint64_t need_retry = 0;
    for (uint64_t i = 0; i < outstanding; ++i) {
      Response resp;
      BenchCheck(client.Receive(&resp), "overload receive");
      if (resp.type == MsgType::kRetryAfter) {
        ++need_retry;
        if (first_pass) ++row.retry_after;
      } else if (resp.type != MsgType::kPoints) {
        std::fprintf(stderr, "FATAL unexpected overload response 0x%02x\n",
                     unsigned(resp.type));
        std::abort();
      }
    }
    first_pass = false;
    outstanding = need_retry;
    if (outstanding > 0) {
      row.retries += outstanding;
      std::this_thread::sleep_for(
          std::chrono::microseconds(sopts.retry_after_micros));
      for (uint64_t i = 0; i < outstanding; ++i) {
        BenchCheck(client.Send(heavy), "overload resend");
      }
    }
  }
  BenchCheck(client.Ping(), "post-overload ping");
  const NetServerStats st = server.stats();
  row.connections_closed = st.connections_closed;
  if (row.retry_after == 0) {
    std::fprintf(stderr,
                 "FATAL overload burst produced no RETRY_AFTER responses\n");
    std::abort();
  }
  if (row.connections_closed != 0) {
    std::fprintf(stderr,
                 "FATAL server dropped a connection under overload\n");
    std::abort();
  }
  server.Stop();
  engine.Stop();
  return row;
}

// --- E23: sharded serving over the wire -------------------------------------

struct ShardedNetRow {
  uint32_t shards = 0;
  double qps = 0.0;
  uint64_t completed = 0;
  LatencyHistogram::Snapshot latency;
  uint64_t quiet_completed = 0;
  uint64_t starved_bounced = 0;
};

// The warm-sweep harness pointed at a ShardRouter instead of a single
// engine: the server speaks the identical protocol, so RunConnection needs
// no changes — sharding is invisible on the wire except in the tails.
ShardedNetRow RunSharded(const Options& opt,
                         const std::vector<Request>& candidates) {
  constexpr uint32_t kStarvedTenant = 9;

  // The same generated data BuildStore gave the single-engine rows.
  PointGenOptions po;
  po.n = opt.points;
  po.seed = 42;
  const std::vector<Point> pts = GenPointsUniform(po);
  IntervalGenOptions io;
  io.n = opt.intervals;
  io.seed = 43;
  std::vector<Interval> ivs = GenIntervalsUniform(io);
  MakeEndpointsDistinct(&ivs);

  ShardedStoreOptions sopts;
  sopts.shards = opt.shards;
  sopts.pool_pages_total = 1 << 18;
  sopts.engine_workers = 2;
  sopts.queue_capacity = 4096;
  ShardedStore store(sopts);
  BenchCheck(store.AddTwoSided(pts).ToStatus(), "shard register 2-sided");
  BenchCheck(store.AddStabbing(ivs).ToStatus(), "shard register stab");
  BenchCheck(store.SetTenantQuota(kStarvedTenant, 0), "shard quota");
  BenchCheck(store.Start(), "start sharded store");
  ShardRouter router(&store);
  NetServerOptions nopts;
  nopts.retry_after_micros = 200;
  NetServer server(&router, nopts);
  BenchCheck(server.Start(), "start sharded server");

  std::vector<std::vector<size_t>> streams;
  for (uint32_t c = 0; c < opt.connections; ++c) {
    streams.push_back(ZipfIndexStream(kCandidatePool, opt.requests,
                                      opt.zipf_theta, 100 + c));
  }
  auto run_pass = [&](uint64_t requests_per_conn,
                      LatencyHistogram* hist) -> double {
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    const uint64_t t0 = NowUs();
    for (uint32_t c = 0; c < opt.connections; ++c) {
      const std::vector<size_t>& full = streams[c];
      threads.emplace_back([&, requests_per_conn] {
        std::vector<size_t> cut(full.begin(),
                                full.begin() +
                                    std::min<size_t>(requests_per_conn,
                                                     full.size()));
        RunConnection(server.port(), candidates, cut, opt.pipeline, opt.rate,
                      hist, &failed);
      });
    }
    for (auto& t : threads) t.join();
    const double secs = double(NowUs() - t0) / 1e6;
    if (failed.load()) {
      std::fprintf(stderr, "FATAL sharded warm pass failed\n");
      std::abort();
    }
    return secs;
  };

  LatencyHistogram warm_hist;
  run_pass(std::max<uint64_t>(opt.requests / 8, 256), &warm_hist);

  LatencyHistogram hist;
  const double secs = run_pass(opt.requests, &hist);

  ShardedNetRow row;
  row.shards = opt.shards;
  row.completed = uint64_t(opt.connections) * opt.requests;
  row.qps = double(row.completed) / secs;
  row.latency = hist.TakeSnapshot();

  // Per-tenant mix on the wire: the starved tenant binds its quota-0
  // identity with SET_TENANT, so every request on that connection must be
  // answered RETRY_AFTER while the quiet connection completes the same
  // stream.
  NetClient starved;
  BenchCheck(starved.Connect("127.0.0.1", server.port()), "starved connect");
  BenchCheck(starved.SetTenant(kStarvedTenant), "starved set tenant");
  NetClient quiet;
  BenchCheck(quiet.Connect("127.0.0.1", server.port()), "quiet connect");
  constexpr uint64_t kMix = 64;
  for (uint64_t i = 0; i < kMix; ++i) {
    // Even candidate slots are 2-sided queries; their x-range always
    // intersects a point-bearing shard, so admission (and thus the quota
    // bounce) is guaranteed to be exercised.  A stab key can land in a
    // shard holding none of the stabbing structure's intervals, where the
    // router answers empty inline without entering any engine queue.
    const Request& req = candidates[(2 * i) % candidates.size()];
    Response resp;
    BenchCheck(starved.Call(req, &resp), "starved call");
    if (resp.type == MsgType::kRetryAfter) {
      ++row.starved_bounced;
    } else {
      std::fprintf(stderr,
                   "FATAL quota-0 tenant got response 0x%02x, expected "
                   "RETRY_AFTER\n",
                   unsigned(resp.type));
      std::abort();
    }
    Response qresp;
    BenchCheck(quiet.Call(req, &qresp), "quiet call");
    if (qresp.type != MsgType::kPoints && qresp.type != MsgType::kIntervals) {
      std::fprintf(stderr, "FATAL quiet tenant got response 0x%02x\n",
                   unsigned(qresp.type));
      std::abort();
    }
    ++row.quiet_completed;
  }
  starved.Close();
  quiet.Close();
  server.Stop();
  store.Stop();
  return row;
}

void WriteJson(const Options& opt, const std::vector<WarmRow>& warm,
               const OverloadRow& overload, const ShardedNetRow* shard) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL cannot open %s for writing\n",
                 opt.json_path.c_str());
    std::abort();
  }
  JsonWriter w(f);
  w.BeginObject();
  w.Key("bench").Str("bench_net");
  w.Key("points").Uint(opt.points);
  w.Key("intervals").Uint(opt.intervals);
  w.Key("requests_per_connection").Uint(opt.requests);
  w.Key("connections").Uint(opt.connections);
  w.Key("pipeline").Uint(opt.pipeline);
  w.Key("rate").Double(opt.rate);
  w.Key("zipf_theta").Double(opt.zipf_theta);
  w.Key("warm_sweep").BeginArray();
  for (const WarmRow& r : warm) {
    w.BeginObject();
    w.Key("workers").Uint(r.workers);
    w.Key("qps").Double(r.qps);
    w.Key("completed").Uint(r.completed);
    w.Key("latency_p50_us").Uint(r.latency.p50);
    w.Key("latency_p95_us").Uint(r.latency.p95);
    w.Key("latency_p99_us").Uint(r.latency.p99);
    w.Key("latency_max_us").Uint(r.latency.max);
    w.EndObject();
  }
  w.EndArray();
  w.Key("overload").BeginObject();
  w.Key("burst").Uint(overload.burst);
  w.Key("retry_after").Uint(overload.retry_after);
  w.Key("retries").Uint(overload.retries);
  w.Key("connections_closed").Uint(overload.connections_closed);
  w.EndObject();
  if (shard != nullptr) {
    w.Key("sharded").BeginObject();
    w.Key("shards").Uint(shard->shards);
    w.Key("qps").Double(shard->qps);
    w.Key("completed").Uint(shard->completed);
    w.Key("latency_p50_us").Uint(shard->latency.p50);
    w.Key("latency_p95_us").Uint(shard->latency.p95);
    w.Key("latency_p99_us").Uint(shard->latency.p99);
    w.Key("latency_max_us").Uint(shard->latency.max);
    w.Key("tenant_quiet_completed").Uint(shard->quiet_completed);
    w.Key("tenant_starved_bounced").Uint(shard->starved_bounced);
    w.EndObject();
  }
  w.EndObject();
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", opt.json_path.c_str());
}

int Main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);
  Store s;
  BuildStore(opt, &s);
  const std::vector<Request> candidates = MakeCandidates();

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf(
      "connections=%u  pipeline=%u  requests/conn=%llu  rate=%s  zipf=%.2f\n",
      opt.connections, opt.pipeline,
      static_cast<unsigned long long>(opt.requests),
      opt.rate > 0.0 ? std::to_string(opt.rate).c_str() : "unpaced",
      opt.zipf_theta);

  std::vector<WarmRow> warm;
  for (uint32_t workers : kWorkerCounts) {
    WarmRow row = RunWarm(s, opt, candidates, workers);
    warm.push_back(row);
    std::printf(
        "warm workers=%u  qps=%9.0f  p50=%lluus  p95=%lluus  p99=%lluus  "
        "max=%lluus\n",
        row.workers, row.qps,
        static_cast<unsigned long long>(row.latency.p50),
        static_cast<unsigned long long>(row.latency.p95),
        static_cast<unsigned long long>(row.latency.p99),
        static_cast<unsigned long long>(row.latency.max));
  }

  const OverloadRow overload = RunOverload(s, opt);
  std::printf(
      "overload burst=%llu  retry_after=%llu  retries=%llu  "
      "connections_closed=%llu (contract asserted)\n",
      static_cast<unsigned long long>(overload.burst),
      static_cast<unsigned long long>(overload.retry_after),
      static_cast<unsigned long long>(overload.retries),
      static_cast<unsigned long long>(overload.connections_closed));

  if (opt.check_qps > 0.0 && warm.back().qps < opt.check_qps) {
    std::fprintf(stderr, "FATAL %u-worker qps %.0f below required %.0f\n",
                 warm.back().workers, warm.back().qps, opt.check_qps);
    std::abort();
  }

  ShardedNetRow shard;
  if (opt.shards > 0) {
    shard = RunSharded(opt, candidates);
    std::printf(
        "sharded shards=%u  qps=%9.0f  p50=%lluus  p95=%lluus  p99=%lluus  "
        "max=%lluus\n",
        shard.shards, shard.qps,
        static_cast<unsigned long long>(shard.latency.p50),
        static_cast<unsigned long long>(shard.latency.p95),
        static_cast<unsigned long long>(shard.latency.p99),
        static_cast<unsigned long long>(shard.latency.max));
    std::printf(
        "sharded tenants: quiet %llu completed  starved %llu bounced "
        "RETRY_AFTER (contract asserted)\n",
        static_cast<unsigned long long>(shard.quiet_completed),
        static_cast<unsigned long long>(shard.starved_bounced));
  }

  if (!opt.json_path.empty()) {
    WriteJson(opt, warm, overload, opt.shards > 0 ? &shard : nullptr);
  }
  return 0;
}

}  // namespace
}  // namespace pathcache

int main(int argc, char** argv) { return pathcache::Main(argc, argv); }
