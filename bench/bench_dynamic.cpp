// Experiment E7 (Section 5, Theorem 5.1): the dynamic two-level structure.
// Measures amortized I/Os per insert/delete against the log_B n bound,
// query cost under a mixed workload with buffered updates, and the cost
// spikes of buffer-overflow cascades (reported via flush/rebuild counts).
//
// Expected shape: io_per_update flat-amortized near a small multiple of
// log_B n (inserts log in O(1) I/Os; flush and rebuild costs amortize);
// queries stay at log_B n + t/B despite pending updates.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "core/pst_dynamic.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

void BM_Dynamic_InsertOnly(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  BenchCheck(pst.Build(GenPointsUniform(o)), "build");
  const uint32_t B = RecordsPerPage<Point>(4096);

  Rng rng(7);
  uint64_t next_id = 100'000'000;
  dev.ResetStats();
  uint64_t ops = 0;
  for (auto _ : state) {
    BenchCheck(pst.Insert({rng.UniformRange(0, 1'000'000'000),
                           rng.UniformRange(0, 1'000'000'000), next_id++}),
               "insert");
    ++ops;
  }
  RegisterIoCounters(state, dev.stats(), ops, "io_per_update", /*count_writes=*/true);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
  state.counters["flushes"] = static_cast<double>(pst.flushes());
  state.counters["rebuilds"] = static_cast<double>(pst.rebuilds());
}
BENCHMARK(BM_Dynamic_InsertOnly)
    ->Arg(20'000)
    ->Arg(100'000)
    ->Arg(400'000)
    ->Iterations(3000);

void BM_Dynamic_MixedUpdates(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  MemPageDevice dev(4096);
  DynamicPst pst(&dev);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  auto pts = GenPointsUniform(o);
  BenchCheck(pst.Build(pts), "build");
  const uint32_t B = RecordsPerPage<Point>(4096);

  Rng rng(11);
  uint64_t next_id = 100'000'000;
  std::vector<Point> live = pts;
  dev.ResetStats();
  uint64_t ops = 0;
  for (auto _ : state) {
    if (rng.Bernoulli(0.5)) {
      Point p{rng.UniformRange(0, 1'000'000'000),
              rng.UniformRange(0, 1'000'000'000), next_id++};
      BenchCheck(pst.Insert(p), "insert");
      live.push_back(p);
    } else {
      size_t k = rng.Uniform(live.size());
      BenchCheck(pst.Erase(live[k]), "erase");
      live[k] = live.back();
      live.pop_back();
    }
    ++ops;
  }
  RegisterIoCounters(state, dev.stats(), ops, "io_per_update", /*count_writes=*/true);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
}
BENCHMARK(BM_Dynamic_MixedUpdates)->Arg(100'000)->Iterations(3000);

void BM_Dynamic_QueryUnderChurn(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  static std::map<uint64_t, std::unique_ptr<MemPageDevice>> devs;
  static std::map<uint64_t, std::unique_ptr<DynamicPst>> psts;
  if (psts.find(n) == psts.end()) {
    devs[n] = std::make_unique<MemPageDevice>(4096);
    psts[n] = std::make_unique<DynamicPst>(devs[n].get());
    PointGenOptions o;
    o.n = n;
    o.seed = 42;
    BenchCheck(psts[n]->Build(GenPointsUniform(o)), "build");
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
      BenchCheck(
          psts[n]->Insert({rng.UniformRange(0, 1'000'000'000),
                           rng.UniformRange(0, 1'000'000'000),
                           200'000'000ULL + i}),
          "churn insert");
    }
  }
  MemPageDevice* dev = devs[n].get();
  DynamicPst* pst = psts[n].get();
  const uint32_t B = RecordsPerPage<Point>(4096);

  Rng rng(17);
  dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    TwoSidedQuery q{rng.UniformRange(500'000'000, 1'000'000'000),
                    rng.UniformRange(900'000'000, 1'000'000'000)};
    std::vector<Point> out;
    BenchCheck(pst->QueryTwoSided(q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["bound_logB_n"] = static_cast<double>(CeilLogBase(n, B));
}
BENCHMARK(BM_Dynamic_QueryUnderChurn)->Arg(100'000)->Arg(400'000);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
