// Experiment E4 (Section 4.2, Theorem 4.4): the multilevel recursion.
// Space follows the iterated-log progression (log B, log log B, log* B ...)
// asymptotically; the query picks up +O(1) cache reads per extra level
// (the +log* B term).
//
// Honest expectation at laptop-scale B (~170): log log B ~ 3 and
// log log log B ~ 1.6, so the asymptotic savings of levels >= 3 are largely
// eaten by per-substructure constant overheads — the benchmark reports the
// actual storage so EXPERIMENTS.md can show where the theory's regime
// starts.  The query-time penalty per level IS visible.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/pst_two_level.h"
#include "io/mem_page_device.h"
#include "util/mathutil.h"
#include "workload/generators.h"

namespace pathcache {
namespace {

struct Env {
  std::unique_ptr<MemPageDevice> dev;
  std::unique_ptr<TwoLevelPst> pst;
  std::vector<int64_t> xs_desc, ys_desc;
};

Env* GetEnv(uint64_t n, uint32_t levels) {
  static std::map<std::pair<uint64_t, uint32_t>, std::unique_ptr<Env>> cache;
  auto key = std::make_pair(n, levels);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  auto env = std::make_unique<Env>();
  env->dev = std::make_unique<MemPageDevice>(4096);
  PointGenOptions o;
  o.n = n;
  o.seed = 42;
  auto pts = GenPointsUniform(o);
  TwoLevelPstOptions opts;
  opts.levels = levels;
  env->pst = std::make_unique<TwoLevelPst>(env->dev.get(), opts);
  BenchCheck(env->pst->Build(pts), "build");
  for (const auto& p : pts) {
    env->xs_desc.push_back(p.x);
    env->ys_desc.push_back(p.y);
  }
  std::sort(env->xs_desc.begin(), env->xs_desc.end(), std::greater<>());
  std::sort(env->ys_desc.begin(), env->ys_desc.end(), std::greater<>());
  Env* raw = env.get();
  cache[key] = std::move(env);
  return raw;
}

void BM_Multilevel(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint32_t levels = static_cast<uint32_t>(state.range(1));
  Env* env = GetEnv(n, levels);
  const uint32_t B = RecordsPerPage<Point>(4096);

  Rng rng(19);
  env->dev->ResetStats();
  uint64_t ops = 0, total_t = 0;
  for (auto _ : state) {
    uint64_t k = std::min<uint64_t>(512 + rng.Uniform(128), n - 1);
    TwoSidedQuery q{env->xs_desc[k], env->ys_desc[n / 2]};
    std::vector<Point> out;
    BenchCheck(env->pst->QueryTwoSided(q, &out), "query");
    total_t += out.size();
    ++ops;
  }
  RegisterIoCounters(state, env->dev->stats(), ops, "io_per_query");
  state.counters["t_mean"] =
      static_cast<double>(total_t) / static_cast<double>(ops);
  state.counters["storage_blocks"] =
      static_cast<double>(env->pst->storage().total());
  state.counters["n_over_B"] = static_cast<double>(CeilDiv(n, B));
  state.counters["logstarB"] = static_cast<double>(LogStar(B));
}

static void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {200'000, 1'000'000}) {
    for (int64_t levels : {2, 3, 4}) b->Args({n, levels});
  }
}
BENCHMARK(BM_Multilevel)->Apply(Args);

}  // namespace
}  // namespace pathcache

BENCHMARK_MAIN();
