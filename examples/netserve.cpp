// Serving over TCP: the same structures examples/serve.cpp registers with a
// QueryEngine, this time reachable from another process through the binary
// wire protocol (src/net).
//
//   $ ./netserve            # ephemeral port, in-process client demo
//   $ ./netserve 7470       # fixed port; press Enter to shut down
//
// The server speaks length-prefixed frames with a CRC32C trailer; requests
// pipeline freely and responses come back in request order.  NetClient is
// the matching client library — everything below (point queries, interval
// stabbing, pipelining, the RETRY_AFTER overload answer) works identically
// from a remote machine.

#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/query_engine.h"
#include "workload/generators.h"

using namespace pathcache;
using namespace pathcache::net;

int main(int argc, char** argv) {
  // 1. Build and save two structures on a simulated disk.
  MemPageDevice disk(4096);
  SharedBufferPool pool(&disk, /*capacity_pages=*/1 << 16);
  PageId pst_manifest, seg_manifest;
  {
    PointGenOptions gen;
    gen.n = 200'000;
    gen.seed = 1;
    ExternalPst pst(&pool);
    if (!pst.Build(GenPointsUniform(gen)).ok()) return 1;
    auto saved = pst.Save();
    if (!saved.ok()) return 1;
    pst_manifest = saved.value();
  }
  {
    IntervalGenOptions gen;
    gen.n = 150'000;
    gen.seed = 2;
    auto ivs = GenIntervalsUniform(gen);
    MakeEndpointsDistinct(&ivs);
    ExtSegmentTree st(&pool);
    if (!st.Build(ivs).ok()) return 1;
    auto saved = st.Save();
    if (!saved.ok()) return 1;
    seg_manifest = saved.value();
  }

  // 2. An engine with worker threads, fronted by the TCP server.
  QueryEngineOptions eopts;
  eopts.num_workers = 4;
  eopts.queue_capacity = 1024;
  QueryEngine engine(&pool, eopts);
  auto pst_id = engine.AddStructure(pst_manifest);
  auto seg_id = engine.AddStructure(seg_manifest);
  if (!pst_id.ok() || !seg_id.ok() || !engine.Start().ok()) return 1;

  NetServerOptions sopts;
  if (argc > 1) sopts.port = static_cast<uint16_t>(std::atoi(argv[1]));
  NetServer server(&engine, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u  (structures: %u = 2-sided points, "
              "%u = stabbing intervals)\n",
              server.port(), pst_id.value(), seg_id.value());

  if (argc > 1) {
    // Fixed-port mode: stay up for external clients until Enter.
    std::printf("press Enter to stop\n");
    std::getchar();
  } else {
    // Demo mode: talk to ourselves through a real socket.
    NetClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return 1;

    std::vector<Point> pts;
    if (!client.QueryTwoSided(pst_id.value(),
                              TwoSidedQuery{700'000'000, 900'000'000}, &pts)
             .ok()) {
      return 1;
    }
    std::printf("2-sided dominance query: %zu points\n", pts.size());

    // MakeEndpointsDistinct re-spaced the 2n endpoints onto even ranks, so
    // the interval domain is [0, 4n]; stab the middle of it.
    std::vector<Interval> ivs;
    if (!client.QueryStab(seg_id.value(), 300'000, &ivs).ok()) return 1;
    std::printf("stabbing query: %zu intervals\n", ivs.size());

    // Pipelining: fire a burst without waiting, then collect in order.
    Rng rng(3);
    constexpr int kBurst = 64;
    for (int i = 0; i < kBurst; ++i) {
      Request req;
      req.type = MsgType::kQueryTwoSided;
      req.structure_id = pst_id.value();
      req.two_sided =
          TwoSidedQuery{rng.UniformRange(600'000'000, 1'000'000'000),
                        rng.UniformRange(900'000'000, 1'000'000'000)};
      if (!client.Send(req).ok()) return 1;
    }
    uint64_t found = 0;
    for (int i = 0; i < kBurst; ++i) {
      Response resp;
      if (!client.Receive(&resp).ok() || resp.type != MsgType::kPoints) {
        return 1;
      }
      found += resp.points.size();
    }
    std::printf("pipelined burst of %d queries: %" PRIu64 " points total\n",
                kBurst, found);

    const NetServerStats st = server.stats();
    std::printf("server counters: frames_in=%" PRIu64 " frames_out=%" PRIu64
                " bytes_out=%" PRIu64 " protocol_errors=%" PRIu64 "\n",
                st.frames_in, st.frames_out, st.bytes_out, st.protocol_errors);
  }

  server.Stop();
  engine.Stop();
  return 0;
}
