// Serving queries concurrently: register saved structures with a
// QueryEngine, submit queries with deadlines, and read the engine's
// latency / I/O / admission statistics.
//
//   $ ./serve
//
// The engine owns a pool of worker threads; each worker opens its own
// handle onto the saved structures through a shared, thread-safe buffer
// pool, so concurrent queries return byte-identical results to a
// single-threaded run.  A bounded queue rejects work with kOverloaded when
// full, and per-request absolute deadlines drop stale requests before they
// cost any I/O.
//
// The tour ends with the observability layer: a slow-query log capturing
// full per-query I/O breakdowns, a Tracer whose dump loads in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing, and a MetricsRegistry
// exporting everything in Prometheus text format.

#include <cstdio>
#include <inttypes.h>

#include <atomic>
#include <mutex>
#include <string>

#include "core/ext_segment_tree.h"
#include "core/pst_external.h"
#include "io/mem_page_device.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_engine.h"
#include "serve/serve_metrics.h"
#include "workload/generators.h"

using namespace pathcache;

int main() {
  // 1. A simulated disk behind a thread-safe shared buffer pool.
  MemPageDevice disk(4096);
  SharedBufferPool pool(&disk, /*capacity_pages=*/1 << 16);

  // 2. Build and save two structures: a 2-sided PST and a segment tree.
  PageId pst_manifest, seg_manifest;
  {
    PointGenOptions gen;
    gen.n = 200'000;
    gen.seed = 1;
    ExternalPst pst(&pool);
    if (!pst.Build(GenPointsUniform(gen)).ok()) return 1;
    auto saved = pst.Save();
    if (!saved.ok()) return 1;
    pst_manifest = saved.value();
  }
  {
    IntervalGenOptions gen;
    gen.n = 150'000;
    gen.seed = 2;
    auto ivs = GenIntervalsUniform(gen);
    MakeEndpointsDistinct(&ivs);
    ExtSegmentTree st(&pool);
    if (!st.Build(ivs).ok()) return 1;
    auto saved = st.Save();
    if (!saved.ok()) return 1;
    seg_manifest = saved.value();
  }

  // 3. Register both with an engine and start its workers.  The engine
  //    sniffs each manifest's magic to learn what kind of structure it is.
  //    Observability is configured here too: a tracer (off until Enable())
  //    and a slow-query log that captures any request reading 40+ blocks.
  Tracer tracer(1 << 14);
  std::mutex slow_mu;
  std::string first_slow;
  uint64_t slow_count = 0;
  QueryEngineOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 1024;
  opts.tracer = &tracer;
  opts.slow_query_log.reads_threshold = 40;
  opts.slow_query_log.sink = [&](const SlowQueryLogEntry& e) {
    std::lock_guard<std::mutex> lk(slow_mu);
    ++slow_count;
    if (first_slow.empty()) first_slow = e.ToString();
  };
  QueryEngine engine(&pool, opts);
  auto pst_id = engine.AddStructure(pst_manifest);
  auto seg_id = engine.AddStructure(seg_manifest);
  if (!pst_id.ok() || !seg_id.ok()) return 1;
  if (!engine.Start().ok()) return 1;

  // 4. Submit a mix of queries.  Callbacks run on worker threads.  The
  //    tracer is on for this burst, so every serve.query span and the io.*
  //    device operations underneath land in the ring buffer.
  tracer.Enable();
  std::atomic<uint64_t> points_found{0};
  std::atomic<uint64_t> intervals_found{0};
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    if (i % 2 == 0) {
      TwoSidedQuery q{rng.UniformRange(600'000'000, 1'000'000'000),
                      rng.UniformRange(900'000'000, 1'000'000'000)};
      engine.Submit(pst_id.value(), ServeQuery::TwoSided(q), [&](QueryResult r) {
        if (r.status.ok()) points_found += r.points.size();
      });
    } else {
      engine.Submit(seg_id.value(),
                    ServeQuery::Stab(rng.UniformRange(0, 1'000'000'000)),
                    [&](QueryResult r) {
                      if (r.status.ok()) intervals_found += r.intervals.size();
                    });
    }
  }

  // 5. A deadline already in the past is dropped before costing any I/O.
  const uint64_t now = SystemClock::Default()->NowMicros();
  engine.Submit(
      seg_id.value(), ServeQuery::Stab(5),
      [](QueryResult r) {
        std::printf("expired request status: %s (reads=%" PRIu64 ")\n",
                    r.status.ToString().c_str(), r.io.reads);
      },
      /*deadline_micros=*/now > 1 ? now - 1 : 1);

  engine.Drain();

  // 6. Engine-wide statistics.
  const ServeStats st = engine.stats();
  std::printf("points found:     %" PRIu64 "\n", points_found.load());
  std::printf("intervals found:  %" PRIu64 "\n", intervals_found.load());
  std::printf("completed=%" PRIu64 " expired=%" PRIu64 " rejected=%" PRIu64
              "\n",
              st.completed, st.expired, st.rejected_overload);
  std::printf("latency p50=%" PRIu64 "us p95=%" PRIu64 "us p99=%" PRIu64
              "us (over %" PRIu64 " served)\n",
              st.latency.p50, st.latency.p95, st.latency.p99,
              st.latency.count);
  std::printf("pool reads across all workers: %" PRIu64 "\n", st.io.reads);

  // 7. The observability layer.  The slow-query log already captured every
  //    40+-block request as it completed, with the same per-role breakdown
  //    the paper's accounting uses.
  tracer.Disable();
  std::printf("\nslow queries captured (>= 40 block reads): %" PRIu64 "\n",
              slow_count);
  if (!first_slow.empty()) std::printf("first entry:\n%s\n", first_slow.c_str());

  //    Metrics: register the engine and pool, then export Prometheus text.
  //    (Point a scraper at this string, or diff two exports by hand.)
  //    Both registrations publish pathcache_io_* series under their label,
  //    so the engine and the pool need distinct labels.
  MetricsRegistry registry;
  if (!RegisterServeMetrics(&registry, "engine", &engine).ok()) return 1;
  if (!RegisterSharedBufferPoolMetrics(&registry, "pool", &pool).ok()) {
    return 1;
  }
  std::string prom;
  registry.WritePrometheus(&prom);
  const char* metrics_path = "/tmp/pathcache_serve_metrics.prom";
  if (std::FILE* f = std::fopen(metrics_path, "w")) {
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu metric series; lint with examples/promlint)\n",
                metrics_path, registry.num_series());
  }

  //    Tracing: the ring's newest events dump as Chrome trace JSON.  Load
  //    the file at https://ui.perfetto.dev to see each query's spans with
  //    its device reads nested underneath.
  const char* trace_path = "/tmp/pathcache_serve_trace.json";
  if (std::FILE* f = std::fopen(trace_path, "w")) {
    if (tracer.WriteChromeTrace(f).ok()) {
      std::printf("wrote %s (%" PRIu64 " events recorded, %" PRIu64
                  " dropped by the ring) - load it in Perfetto\n",
                  trace_path, tracer.recorded(), tracer.dropped());
    }
    std::fclose(f);
  }

  engine.Stop();
  return 0;
}
