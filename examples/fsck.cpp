// Offline store checker: walks the manifests of a pathcache store file,
// verifies page ownership (no leaks, no double-owned pages), scrubs every
// owned page, and runs each structure's deep CheckStructure() validation.
//
//   $ ./fsck [--page-size N] [--checksums] [--no-scrub] [--no-structs]
//            [--no-coverage] <store-file> <manifest-id>...
//
// --checksums reads the store through a ChecksumPageDevice, so the scrub
// pass verifies every page's CRC trailer (stores written through the same
// stack).  Exit status: 0 clean, 1 corrupt, 2 usage/open errors.

#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pathcache.h"
#include "io/checksum_page_device.h"

using namespace pathcache;

int main(int argc, char** argv) {
  uint32_t page_size = 4096;
  bool checksums = false;
  VerifyStoreOptions opts;
  std::string path;
  std::vector<PageId> manifests;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--page-size" && i + 1 < argc) {
      page_size = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--checksums") {
      checksums = true;
    } else if (arg == "--no-scrub") {
      opts.scrub_pages = false;
    } else if (arg == "--no-structs") {
      opts.check_structures = false;
    } else if (arg == "--no-coverage") {
      opts.expect_full_coverage = false;
    } else if (path.empty()) {
      path = arg;
    } else {
      manifests.push_back(std::strtoull(arg.c_str(), nullptr, 10));
    }
  }
  if (path.empty() || manifests.empty()) {
    std::fprintf(stderr,
                 "usage: fsck [--page-size N] [--checksums] [--no-scrub] "
                 "[--no-structs] [--no-coverage] <store-file> "
                 "<manifest-id>...\n");
    return 2;
  }

  auto file = FilePageDevice::Open(path, page_size);
  if (!file.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                 file.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<ChecksumPageDevice> sum;
  PageDevice* dev = file.value().get();
  if (checksums) {
    sum = std::make_unique<ChecksumPageDevice>(dev);
    dev = sum.get();
  }

  VerifyStoreReport report;
  Status s = VerifyStore(dev, std::span<const PageId>(manifests), opts,
                         &report);
  std::printf("manifests walked:   %" PRIu64 "\n", report.manifests);
  std::printf("structures checked: %" PRIu64 "\n", report.structures_checked);
  std::printf("owned pages:        %" PRIu64 "\n", report.owned_pages);
  std::printf("scrubbed pages:     %" PRIu64 "\n", report.scrubbed_pages);
  std::printf("leaked pages:       %" PRIu64 "\n", report.leaked_pages);
  if (sum != nullptr) {
    std::printf("checksum failures:  %" PRIu64 " of %" PRIu64 " verified\n",
                sum->checksum_failures(), sum->pages_verified());
  }
  if (!s.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("clean\n");
  return 0;
}
