// Offline store checker: walks the manifests of a pathcache store file,
// verifies page ownership (no leaks, no double-owned pages), scrubs every
// owned page, and runs each structure's deep CheckStructure() validation.
//
//   $ ./fsck [--page-size N] [--checksums] [--no-scrub] [--no-structs]
//            [--no-coverage] [--gc] <store-file> <id>...
//
// Each <id> may be a plain structure manifest OR a dynamic-store root page
// (the tool sniffs the page header).  When any dynamic root is present the
// multi-generation checker runs: the winning generation of every store gets
// the full deep checks, crash debris (orphaned generations, dangling WAL
// pages, unreachable pages) is classified distinctly from corruption, and
// --gc frees that debris so a re-run reports full coverage.  Static
// manifests listed alongside dynamic roots are verified too and their pages
// count as owned.
//
// Caveat on file stores: FilePageDevice keeps its free map in memory (the
// format has no persistent allocator), so --gc makes debris pages reusable
// within the opening process and proves the reachable set intact, but a
// fresh open sees every page of the file as live again and re-classifies
// the same bytes as debris.  Debris is never corruption — the verdict
// stays `clean` either way.
//
// --checksums reads the store through a ChecksumPageDevice, so the scrub
// pass verifies every page's CRC trailer (stores written through the same
// stack).  Exit status: 0 clean, 1 corrupt, 2 usage/open errors.

#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include <memory>
#include <string>
#include <vector>

#include "core/pathcache.h"
#include "dynamic/dynamic_fsck.h"
#include "io/checksum_page_device.h"

using namespace pathcache;

int main(int argc, char** argv) {
  uint32_t page_size = 4096;
  bool checksums = false;
  bool gc = false;
  VerifyStoreOptions opts;
  std::string path;
  std::vector<PageId> ids;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--page-size" && i + 1 < argc) {
      page_size = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--checksums") {
      checksums = true;
    } else if (arg == "--no-scrub") {
      opts.scrub_pages = false;
    } else if (arg == "--no-structs") {
      opts.check_structures = false;
    } else if (arg == "--no-coverage") {
      opts.expect_full_coverage = false;
    } else if (arg == "--gc") {
      gc = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      ids.push_back(std::strtoull(arg.c_str(), nullptr, 10));
    }
  }
  if (path.empty() || ids.empty()) {
    std::fprintf(stderr,
                 "usage: fsck [--page-size N] [--checksums] [--no-scrub] "
                 "[--no-structs] [--no-coverage] [--gc] <store-file> "
                 "<id>...\n");
    return 2;
  }

  auto file = FilePageDevice::Open(path, page_size);
  if (!file.ok()) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                 file.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<ChecksumPageDevice> sum;
  PageDevice* dev = file.value().get();
  if (checksums) {
    sum = std::make_unique<ChecksumPageDevice>(dev);
    dev = sum.get();
  }

  // Sniff each id: dynamic-store roots get the multi-generation checker,
  // plain manifests the classic walk.
  std::vector<PageId> roots, manifests;
  for (PageId id : ids) {
    (IsDynamicRoot(dev, id) ? roots : manifests).push_back(id);
  }

  int rc = 0;
  if (!roots.empty()) {
    DynamicFsckOptions dopts;
    dopts.scrub_pages = opts.scrub_pages;
    dopts.check_structures = opts.check_structures;
    dopts.gc = gc;
    dopts.static_manifests = manifests;
    DynamicFsckReport report;
    Status s = VerifyDynamicStores(dev, std::span<const PageId>(roots), dopts,
                                   &report);
    std::printf("%s\n", report.ToString().c_str());
    if (!s.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", s.ToString().c_str());
      rc = 1;
    }
  } else {
    if (gc) {
      std::fprintf(stderr, "--gc needs a dynamic store root\n");
      return 2;
    }
    VerifyStoreReport report;
    Status s = VerifyStore(dev, std::span<const PageId>(manifests), opts,
                           &report);
    std::printf("manifests walked:   %" PRIu64 "\n", report.manifests);
    std::printf("structures checked: %" PRIu64 "\n",
                report.structures_checked);
    std::printf("owned pages:        %" PRIu64 "\n", report.owned_pages);
    std::printf("scrubbed pages:     %" PRIu64 "\n", report.scrubbed_pages);
    std::printf("leaked pages:       %" PRIu64 "\n", report.leaked_pages);
    if (!s.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", s.ToString().c_str());
      rc = 1;
    }
  }
  if (sum != nullptr) {
    std::printf("checksum failures:  %" PRIu64 " of %" PRIu64 " verified\n",
                sum->checksum_failures(), sum->pages_verified());
  }
  if (rc == 0) std::printf("clean\n");
  return rc;
}
