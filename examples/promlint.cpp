// promlint: validate a file (or stdin) against the Prometheus text
// exposition format, using the same strict checker the obs unit tests run
// over every export.  CI lints the bench-smoke metrics artifact with this.
//
//   $ ./promlint metrics.prom
//   $ some_exporter | ./promlint -
//
// Exit code 0 when the input is clean; 1 with the first offending line
// reported otherwise.

#include <cstdio>
#include <string>

#include "obs/promlint.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <metrics-file | ->\n", argv[0]);
    return 2;
  }
  std::FILE* in = nullptr;
  const bool use_stdin = std::string(argv[1]) == "-";
  if (use_stdin) {
    in = stdin;
  } else {
    in = std::fopen(argv[1], "r");
    if (in == nullptr) {
      std::fprintf(stderr, "promlint: cannot open %s\n", argv[1]);
      return 2;
    }
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
  if (!use_stdin) std::fclose(in);

  const pathcache::Status s = pathcache::PrometheusLint(text);
  if (!s.ok()) {
    std::fprintf(stderr, "promlint: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("promlint: OK (%zu bytes)\n", text.size());
  return 0;
}
