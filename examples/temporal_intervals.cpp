// Temporal-database demo: dynamic interval management (the paper's Section 1
// motivation and the open problem of [KRV] it addresses).
//
// A table of employee contracts, each valid over [start_day, end_day].
// "AS OF day D" queries = stabbing queries; contracts are added and
// terminated over time = dynamic updates.  The DynamicStabbingIndex runs
// stabbing queries in O(log_B n + t/B) I/Os and updates in O(log_B n)
// amortized, via the [KRV] reduction onto the dynamic 2-sided structure.

#include <cstdio>
#include <inttypes.h>

#include "core/pathcache.h"
#include "util/random.h"

using namespace pathcache;

namespace {

struct Contract {
  uint64_t employee_id;
  int64_t start_day;
  int64_t end_day;
};

}  // namespace

int main() {
  MemPageDevice disk(4096);
  DynamicStabbingIndex index(&disk);

  // Seed the database with 200k historical contracts over ~30 years.
  Rng rng(7);
  const int64_t kHorizon = 365 * 30;
  std::vector<Interval> history;
  for (uint64_t id = 0; id < 200'000; ++id) {
    int64_t start = rng.UniformRange(0, kHorizon - 30);
    int64_t len = rng.UniformRange(30, 365 * 3);
    history.push_back(Interval{start, std::min(start + len, kHorizon), id});
  }
  Status s = index.Build(history);
  if (!s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %" PRIu64 " contracts\n", index.size());

  // Live operation: hires, terminations, and AS-OF queries interleave.
  uint64_t next_id = 1'000'000;
  disk.ResetStats();
  uint64_t updates = 0;
  for (int day = 0; day < 2000; ++day) {
    // A few hires per day.
    for (int h = 0; h < 3; ++h) {
      int64_t start = kHorizon - 2000 + day;
      index.Insert(Interval{start, start + rng.UniformRange(90, 900),
                            next_id++});
      ++updates;
    }
    // Occasionally terminate (delete + re-insert with a shorter end).
    if (day % 7 == 0 && !history.empty()) {
      const Interval& victim = history[rng.Uniform(history.size())];
      if (index.Erase(victim).ok()) {
        Interval shortened{victim.lo, (victim.lo + victim.hi) / 2 + 1,
                           victim.id};
        index.Insert(shortened);
        updates += 2;
      }
    }
  }
  double io_per_update = static_cast<double>(disk.stats().total()) /
                         static_cast<double>(updates);
  std::printf("%" PRIu64 " updates at %.2f amortized I/Os each\n", updates,
              io_per_update);

  // AS-OF queries across the timeline.
  for (int64_t day : {100L, 3650L, 7300L, kHorizon - 1000}) {
    std::vector<Interval> active;
    disk.ResetStats();
    s = index.Stab(day, &active);
    if (!s.ok()) {
      std::fprintf(stderr, "stab: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("AS OF day %5" PRId64 ": %6zu active contracts, %4" PRIu64
                " page reads\n",
                day, active.size(), disk.stats().reads);
  }
  return 0;
}
