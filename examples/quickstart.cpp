// Quickstart: build a path-cached 2-sided index, query it, and look at the
// I/O counters that the paper's bounds are about.
//
//   $ ./quickstart
//
// Everything runs on an in-memory simulated disk (MemPageDevice); swap in
// FilePageDevice to persist to a real file.

#include <cstdio>
#include <inttypes.h>

#include "core/pathcache.h"
#include "util/mathutil.h"
#include "workload/generators.h"

using namespace pathcache;

int main() {
  // 1. A simulated disk with 4 KiB pages.  With 24-byte point records this
  //    gives B = 170 records per page.
  MemPageDevice disk(4096);
  const uint32_t B = RecordsPerPage<Point>(disk.page_size());

  // 2. One million random points.
  PointGenOptions gen;
  gen.n = 1'000'000;
  gen.seed = 42;
  std::vector<Point> points = GenPointsUniform(gen);

  // 3. Build the two-level path-cached priority search tree (Theorem 4.3).
  TwoLevelPst index(&disk);
  Status s = index.Build(points);
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto storage = index.storage();
  std::printf("built index over n=%" PRIu64 " points (B=%u)\n", index.size(),
              B);
  std::printf("storage: %" PRIu64 " blocks (%.2fx the raw data's %" PRIu64
              ")\n",
              storage.total(), static_cast<double>(storage.total()) /
                                   static_cast<double>(CeilDiv(gen.n, B)),
              CeilDiv(gen.n, B));

  // 4. A 2-sided query: everything with x >= 900M and y >= 900M.
  TwoSidedQuery q{900'000'000, 900'000'000};
  std::vector<Point> result;
  QueryStats qs;
  disk.ResetStats();
  s = index.QueryTwoSided(q, &result, &qs);
  if (!s.ok()) {
    std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 5. The headline: I/Os ~ log_B n + t/B, not log_2 n + t.
  const uint64_t logB_n = CeilLogBase(gen.n, B);
  std::printf("query returned t=%zu points using %" PRIu64 " page reads\n",
              result.size(), disk.stats().reads);
  std::printf("paper bound shape: log_B n + t/B = %" PRIu64 " + %" PRIu64
              " = %" PRIu64 " page reads\n",
              logB_n, CeilDiv(result.size(), B),
              logB_n + CeilDiv(result.size(), B));
  std::printf("per-role breakdown: %s\n", qs.ToString().c_str());
  return 0;
}
