// Side-by-side comparison of every structure in the library on one dataset:
// for each query shape of Figure 1, which structures answer it and at what
// I/O cost.  A compact tour of the whole public API.

#include <cstdio>
#include <inttypes.h>

#include "core/pathcache.h"
#include "util/mathutil.h"
#include "workload/generators.h"

using namespace pathcache;

namespace {

struct Row {
  const char* name;
  uint64_t reads;
  size_t t;
};

void PrintRows(const char* title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title);
  std::printf("  %-34s %10s %10s\n", "structure", "page reads", "t");
  for (const auto& r : rows) {
    std::printf("  %-34s %10" PRIu64 " %10zu\n", r.name, r.reads, r.t);
  }
}

}  // namespace

int main() {
  const uint64_t n = 500'000;
  MemPageDevice disk(4096);
  const uint32_t B = RecordsPerPage<Point>(disk.page_size());

  PointGenOptions gen;
  gen.n = n;
  gen.seed = 99;
  auto points = GenPointsUniform(gen);

  // Build one of everything that answers point queries.
  ExternalPstOptions iko_opts;
  iko_opts.enable_path_caching = false;
  ExternalPst iko(&disk, iko_opts);
  ExternalPst basic(&disk);
  TwoLevelPst two_level(&disk);
  TwoLevelPstOptions ml_opts;
  ml_opts.levels = 3;
  TwoLevelPst multilevel(&disk, ml_opts);
  ThreeSidedPst three_sided(&disk);
  XSortedBaseline btree_scan(&disk);
  for (Status s : {iko.Build(points), basic.Build(points),
                   two_level.Build(points), multilevel.Build(points),
                   three_sided.Build(points), btree_scan.Build(points)}) {
    if (!s.ok()) {
      std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  std::printf("n=%" PRIu64 ", B=%u, log_B n=%u, log_2 n=%u\n", n, B,
              CeilLogBase(n, B), CeilLog2(n));
  std::printf("storage (blocks): iko=%" PRIu64 " basic=%" PRIu64
              " two-level=%" PRIu64 " multilevel=%" PRIu64
              " 3-sided=%" PRIu64 "\n",
              iko.storage().total(), basic.storage().total(),
              two_level.storage().total(), multilevel.storage().total(),
              three_sided.storage().total());

  auto measure = [&](auto&& fn) -> Row {
    std::vector<Point> out;
    disk.ResetStats();
    Status s = fn(&out);
    if (!s.ok()) {
      std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    return Row{"", disk.stats().reads, out.size()};
  };

  // --- Diagonal-corner query (Figure 1, leftmost): x >= c, y >= c. ---
  {
    int64_t c = 750'000'000;
    std::vector<Row> rows;
    Row r;
    r = measure([&](auto* out) {
      return two_level.QueryTwoSided({c, c}, out);
    });
    r.name = "TwoLevelPst (Thm 4.3)";
    rows.push_back(r);
    r = measure([&](auto* out) {
      return btree_scan.QueryTwoSided({c, c}, out);
    });
    r.name = "B+-tree x-scan baseline";
    rows.push_back(r);
    PrintRows("diagonal-corner query (x >= c && y >= c)", rows);
  }

  // --- General 2-sided query. ---
  {
    TwoSidedQuery q{600'000'000, 870'000'000};
    std::vector<Row> rows;
    Row r;
    r = measure([&](auto* out) { return iko.QueryTwoSided(q, out); });
    r.name = "ExternalPst, caches OFF ([IKO])";
    rows.push_back(r);
    r = measure([&](auto* out) { return basic.QueryTwoSided(q, out); });
    r.name = "ExternalPst, caches ON (Thm 3.2)";
    rows.push_back(r);
    r = measure([&](auto* out) { return two_level.QueryTwoSided(q, out); });
    r.name = "TwoLevelPst (Thm 4.3)";
    rows.push_back(r);
    r = measure([&](auto* out) { return multilevel.QueryTwoSided(q, out); });
    r.name = "TwoLevelPst levels=3 (Thm 4.4)";
    rows.push_back(r);
    r = measure([&](auto* out) { return btree_scan.QueryTwoSided(q, out); });
    r.name = "B+-tree x-scan baseline";
    rows.push_back(r);
    PrintRows("2-sided query (x >= x0 && y >= y0)", rows);
  }

  // --- 3-sided query. ---
  {
    ThreeSidedQuery q{400'000'000, 460'000'000, 950'000'000};
    std::vector<Row> rows;
    Row r;
    r = measure([&](auto* out) {
      return three_sided.QueryThreeSided(q, out);
    });
    r.name = "ThreeSidedPst (Thm 3.3)";
    rows.push_back(r);
    r = measure([&](auto* out) {
      return btree_scan.QueryThreeSided(q, out);
    });
    r.name = "B+-tree x-scan baseline";
    rows.push_back(r);
    PrintRows("3-sided query (x0 <= x <= x1 && y >= y0)", rows);
  }

  // --- General 2-D range via two 3-sided-ish passes (composition demo). ---
  {
    RangeQuery q{400'000'000, 460'000'000, 700'000'000, 900'000'000};
    std::vector<Point> out;
    disk.ResetStats();
    ThreeSidedQuery open{q.x_min, q.x_max, q.y_min};
    std::vector<Point> tmp;
    Status s = three_sided.QueryThreeSided(open, &tmp);
    if (!s.ok()) return 1;
    for (const auto& p : tmp) {
      if (p.y <= q.y_max) out.push_back(p);
    }
    std::printf(
        "\ngeneral 2-D range via 3-sided + filter: %zu hits, %" PRIu64
        " page reads\n(output-sensitive only in the 3-sided part; the paper "
        "leaves optimal general 4-sided search open)\n",
        out.size(), disk.stats().reads);
  }
  return 0;
}
