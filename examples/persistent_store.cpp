// Persistence demo: build an index on a real file, save its manifest, "exit
// the process" (close the device), then reopen and query — nothing is
// rebuilt.
//
//   $ ./persistent_store [path]

#include <cstdio>
#include <inttypes.h>

#include <string>

#include "core/pathcache.h"
#include "util/mathutil.h"
#include "workload/generators.h"

using namespace pathcache;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/pathcache_store.db";
  PageId manifest;

  {
    // ---- first "process": build and save ----
    auto r = FilePageDevice::Create(path, 4096);
    if (!r.ok()) {
      std::fprintf(stderr, "create: %s\n", r.status().ToString().c_str());
      return 1;
    }
    auto dev = std::move(r).value();

    PointGenOptions gen;
    gen.n = 250'000;
    gen.seed = 2026;
    TwoLevelPst index(dev.get());
    Status s = index.Build(GenPointsUniform(gen));
    if (!s.ok()) {
      std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
      return 1;
    }
    // SaveDurable = Save() + fdatasync: without the barrier a crash right
    // after this block can lose pages of a store whose manifest id we
    // already printed (Create() fsync'd the directory entry, so the FILE
    // survives — its CONTENTS need this sync).
    auto m = SaveDurable(&index, dev.get());
    if (!m.ok()) {
      std::fprintf(stderr, "save: %s\n", m.status().ToString().c_str());
      return 1;
    }
    manifest = m.value();
    std::printf("built and saved %" PRIu64 " points to %s\n", index.size(),
                path.c_str());
    std::printf("store: %" PRIu64 " pages (%.1f MiB), manifest at page %"
                PRIu64 "\n",
                dev->live_pages(), dev->live_pages() * 4096.0 / (1 << 20),
                manifest);
  }  // device closes — "process exits"

  {
    // ---- second "process": reopen and query ----
    auto r = FilePageDevice::Open(path, 4096);
    if (!r.ok()) {
      std::fprintf(stderr, "open: %s\n", r.status().ToString().c_str());
      return 1;
    }
    auto dev = std::move(r).value();

    auto idx = OpenTwoSidedIndex(dev.get(), manifest);
    if (!idx.ok()) {
      std::fprintf(stderr, "open index: %s\n",
                   idx.status().ToString().c_str());
      return 1;
    }
    std::printf("reopened index over %" PRIu64 " points without rebuilding\n",
                idx.value()->size());

    dev->ResetStats();
    std::vector<Point> out;
    Status s = idx.value()->QueryTwoSided({950'000'000, 950'000'000}, &out,
                                          nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("query returned %zu points in %" PRIu64
                " page reads from the file\n",
                out.size(), dev->stats().reads);
  }
  std::remove(path.c_str());
  return 0;
}
