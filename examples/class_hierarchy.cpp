// Object-oriented database demo: indexing class hierarchies with 3-sided
// queries (the paper's second Section 1 motivation, after [KRV]).
//
// Classes form an inheritance tree; an instance of class C is also an
// instance of every ancestor of C.  Number the classes by preorder so each
// class's subtree is a contiguous id range [pre_lo(C), pre_hi(C)].  Then
//
//   "instances of C (or any subclass) with salary >= v"
//
// is exactly the 3-sided query [pre_lo(C), pre_hi(C)] x [v, inf) over
// points (preorder id of the object's class, salary) — answered in
// O(log_B n + t/B) I/Os by the ThreeSidedPst (Theorem 3.3), where a
// B+-tree per class or a full scan would degrade.

#include <cstdio>
#include <inttypes.h>

#include <string>
#include <vector>

#include "core/pathcache.h"
#include "util/random.h"

using namespace pathcache;

namespace {

struct ClassDef {
  std::string name;
  int parent;  // -1 for the root
  int64_t pre_lo = 0, pre_hi = 0;
};

}  // namespace

int main() {
  // A small class hierarchy, preorder-numbered.
  std::vector<ClassDef> classes = {
      {"Person", -1},      {"Employee", 0},  {"Engineer", 1},
      {"SWEngineer", 2},   {"EEEngineer", 2}, {"Manager", 1},
      {"Director", 5},     {"Contractor", 0}, {"Customer", 0},
      {"VIPCustomer", 8},
  };
  // Assign preorder ranges with a DFS.
  {
    std::vector<std::vector<int>> kids(classes.size());
    for (size_t i = 1; i < classes.size(); ++i) {
      kids[classes[i].parent].push_back(static_cast<int>(i));
    }
    int64_t counter = 0;
    struct Frame {
      int c;
      size_t next_kid;
    };
    std::vector<Frame> stack{{0, 0}};
    classes[0].pre_lo = counter++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_kid < kids[f.c].size()) {
        int k = kids[f.c][f.next_kid++];
        classes[k].pre_lo = counter++;
        stack.push_back({k, 0});
      } else {
        classes[f.c].pre_hi = counter - 1;
        stack.pop_back();
      }
    }
  }

  // 500k objects, each a direct instance of a random class, with a salary.
  Rng rng(13);
  std::vector<Point> objects;
  for (uint64_t id = 0; id < 500'000; ++id) {
    int c = static_cast<int>(rng.Uniform(classes.size()));
    int64_t salary = 30'000 + rng.UniformRange(0, 270'000);
    objects.push_back(Point{classes[c].pre_lo, salary, id});
  }

  MemPageDevice disk(4096);
  ThreeSidedPst index(&disk);
  Status s = index.Build(objects);
  if (!s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("indexed %" PRIu64 " objects over %zu classes\n", index.size(),
              classes.size());

  // Class-scoped attribute queries.
  for (const char* cname : {"Person", "Engineer", "Manager", "Customer"}) {
    const ClassDef* cd = nullptr;
    for (const auto& c : classes) {
      if (c.name == cname) cd = &c;
    }
    ThreeSidedQuery q{cd->pre_lo, cd->pre_hi, 280'000};
    std::vector<Point> result;
    disk.ResetStats();
    s = index.QueryThreeSided(q, &result);
    if (!s.ok()) {
      std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf(
        "instances of %-10s (subtree [%2" PRId64 ",%2" PRId64
        "]) with salary >= 280k: %6zu hits, %3" PRIu64 " page reads\n",
        cname, cd->pre_lo, cd->pre_hi, result.size(), disk.stats().reads);
  }
  return 0;
}
